"""Execution traces: the runtime-facing export of a traversal.

A scheduler that plans ``(sigma, tau)`` hands the runtime an *event
stream*: execute this task, write that much of this output, read it back
before its consumer.  This module defines that stream, serialises it as
JSON-lines (one event per line, the format long-running jobs can append
to and resume from), and — crucially — provides an independent
:func:`replay` that re-derives memory usage and I/O volume from the
events alone, cross-checking the planner.

Event order for a traversal: for each scheduled task, first the ``read``
events restoring evicted parts of its inputs, then ``execute``, then the
``write`` event spilling :math:`\\tau(v)` of the fresh output (the paper
fixes exactly this placement: writes right after production, reads right
before consumption — any other scheme uses more memory for the same
volume).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .traversal import Traversal
from .tree import TaskTree

__all__ = [
    "ReplayResult",
    "TraceError",
    "TraceEvent",
    "from_jsonl",
    "replay",
    "to_jsonl",
    "traversal_trace",
]

_KINDS = ("read", "execute", "write")


@dataclass(frozen=True)
class TraceEvent:
    """One runtime step.

    ``amount`` is the transferred volume for read/write events; for
    ``execute`` it is the execution footprint :math:`\\bar w_v` the
    runtime must provision.
    """

    kind: str  # "read" | "execute" | "write"
    node: int
    amount: int

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.amount < 0:
            raise ValueError(f"negative amount in {self!r}")


def traversal_trace(tree: TaskTree, traversal: Traversal) -> list[TraceEvent]:
    """The canonical event stream of a traversal (reads, execute, write)."""
    events: list[TraceEvent] = []
    io = traversal.io
    for v in traversal.schedule:
        for c in tree.children[v]:
            if io[c]:
                events.append(TraceEvent("read", c, io[c]))
        events.append(TraceEvent("execute", v, tree.wbar[v]))
        if io[v]:
            events.append(TraceEvent("write", v, io[v]))
    return events


def to_jsonl(events: Iterable[TraceEvent]) -> str:
    """One compact JSON object per line: ``{"k":..,"n":..,"a":..}``."""
    return "\n".join(
        json.dumps({"k": e.kind, "n": e.node, "a": e.amount}, separators=(",", ":"))
        for e in events
    )


def from_jsonl(text: str) -> list[TraceEvent]:
    """Inverse of :func:`to_jsonl`; skips blank lines, validates kinds."""
    events: list[TraceEvent] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
            events.append(TraceEvent(obj["k"], int(obj["n"]), int(obj["a"])))
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"bad trace line {lineno}: {line!r}") from exc
    return events


class TraceError(ValueError):
    """An event stream inconsistent with the tree or the memory bound."""


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of an independent replay of an event stream."""

    io_volume: int
    peak_memory: int
    schedule: tuple[int, ...]


def replay(
    tree: TaskTree,
    events: Sequence[TraceEvent],
    memory: int | None = None,
) -> ReplayResult:
    """Re-execute an event stream, checking every model rule.

    Verifies: every task executes exactly once after its children; reads
    restore previously written data of a still-active output, before its
    consumer; writes spill fresh output, at most once, within ``w_v``;
    and (with ``memory`` given) the resident total never exceeds ``M``.

    This is deliberately written against the *events*, not against the
    traversal that produced them, so it catches export bugs.

    Raises
    ------
    TraceError
        on the first violated rule.
    """
    n = tree.n
    executed = [False] * n
    written = [0] * n  # on-disk amount per output
    resident = [0] * n  # in-memory amount per active output
    resident_total = 0
    io_volume = 0
    peak = 0
    schedule: list[int] = []

    def check_capacity(need: int, context: str) -> None:
        nonlocal peak
        peak = max(peak, need)
        if memory is not None and need > memory:
            raise TraceError(f"{context}: {need} > M={memory}")

    for i, ev in enumerate(events):
        where = f"event {i} ({ev.kind} node {ev.node})"
        if ev.kind == "execute":
            v = ev.node
            if executed[v]:
                raise TraceError(f"{where}: executed twice")
            inputs = 0
            for c in tree.children[v]:
                if not executed[c]:
                    raise TraceError(f"{where}: child {c} not executed")
                if written[c] != 0:
                    raise TraceError(
                        f"{where}: child {c} still has {written[c]} on disk"
                    )
                inputs += tree.weights[c]
                resident_total -= resident[c]
                resident[c] = 0
            wbar = max(tree.weights[v], inputs)
            check_capacity(wbar + resident_total, where)
            executed[v] = True
            schedule.append(v)
            resident[v] = tree.weights[v]
            resident_total += tree.weights[v]
            check_capacity(resident_total, where)
        elif ev.kind == "write":
            v = ev.node
            if not executed[v]:
                raise TraceError(f"{where}: output does not exist yet")
            if ev.amount > resident[v]:
                raise TraceError(
                    f"{where}: writes {ev.amount} but only {resident[v]} resident"
                )
            resident[v] -= ev.amount
            resident_total -= ev.amount
            written[v] += ev.amount
            io_volume += ev.amount
        else:  # read
            v = ev.node
            if ev.amount > written[v]:
                raise TraceError(
                    f"{where}: reads {ev.amount} but only {written[v]} on disk"
                )
            p = tree.parents[v]
            if p == -1 or executed[p]:
                raise TraceError(f"{where}: consumer already executed (or root)")
            written[v] -= ev.amount
            resident[v] += ev.amount
            resident_total += ev.amount
            check_capacity(resident_total, where)

    if not all(executed):
        missing = [v for v in range(n) if not executed[v]]
        raise TraceError(f"tasks never executed: {missing[:10]}")
    return ReplayResult(
        io_volume=io_volume, peak_memory=peak, schedule=tuple(schedule)
    )
