"""Task-tree data structure for out-of-core tree scheduling.

The model follows Section 3.1 of Marchal, McCauley, Simon & Vivien,
*Minimizing I/Os in Out-of-Core Task Tree Scheduling* (RR-9025, 2017):

* a workload is a rooted **in-tree**: every task ``i`` produces a single
  output of integer size ``w_i`` which is consumed by its unique parent;
* executing task ``i`` requires
  ``wbar_i = max(w_i, sum of the children outputs)`` units of main memory,
  on top of every other *active* output resident in memory.

Nodes are dense integer identifiers ``0 .. n-1``.  The structure is
immutable once built; all derived quantities (children lists, ``wbar``,
subtree sizes, a canonical topological order) are computed once and cached.
Every algorithm in :mod:`repro.algorithms` is written against the small
"tree protocol" exposed here (``n``, ``root``, ``parent``, ``weights``,
``children``) so that the mutable expansion trees used by the RecExpand
heuristic (:mod:`repro.core.expansion`) can be substituted transparently.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

__all__ = ["TaskTree", "TreeError", "chain_tree", "star_tree", "balanced_binary_tree"]


class TreeError(ValueError):
    """Raised when a parent/weight description does not define a valid tree."""


class TaskTree:
    """An immutable rooted in-tree of tasks with integer output sizes.

    Parameters
    ----------
    parents:
        ``parents[i]`` is the node consuming the output of node ``i``;
        the root (exactly one node) uses ``-1``.
    weights:
        ``weights[i]`` is the size :math:`w_i` of node *i*'s output data.
        Sizes must be non-negative integers (the paper assumes an integer
        memory unit, e.g. pages); zero is allowed because node expansion
        (Theorem 2) can produce zero-size residual nodes.

    Raises
    ------
    TreeError
        if the description is not a single rooted tree or a weight is
        negative / non-integral.
    """

    __slots__ = (
        "_parents",
        "_weights",
        "_children",
        "_root",
        "_wbar",
        "_topo",
        "_subtree_size",
    )

    def __init__(self, parents: Sequence[int], weights: Sequence[int]):
        n = len(parents)
        if len(weights) != n:
            raise TreeError(
                f"parents and weights disagree on size: {n} != {len(weights)}"
            )
        if n == 0:
            raise TreeError("a task tree needs at least one node")

        parents = [int(p) for p in parents]
        checked_weights = []
        for i, w in enumerate(weights):
            if isinstance(w, bool) or int(w) != w:
                raise TreeError(f"weight of node {i} is not an integer: {w!r}")
            w = int(w)
            if w < 0:
                raise TreeError(f"weight of node {i} is negative: {w}")
            checked_weights.append(w)

        children: list[list[int]] = [[] for _ in range(n)]
        root = -1
        for i, p in enumerate(parents):
            if p == -1:
                if root != -1:
                    raise TreeError(f"two roots: {root} and {i}")
                root = i
            elif 0 <= p < n:
                children[p].append(i)
            else:
                raise TreeError(f"node {i} has out-of-range parent {p}")
        if root == -1:
            raise TreeError("no root (node with parent -1) found")

        self._parents = tuple(parents)
        self._weights = tuple(checked_weights)
        self._children = tuple(tuple(c) for c in children)
        self._root = root

        # A canonical topological order (root first), which doubles as the
        # reachability check: every node must be visited exactly once.
        topo: list[int] = [root]
        for v in topo:
            topo.extend(self._children[v])
        if len(topo) != n:
            raise TreeError("graph is not connected / contains a cycle")
        self._topo = tuple(topo)

        wbar = [0] * n
        size = [1] * n
        for v in reversed(topo):  # children before parents
            inputs = 0
            for c in self._children[v]:
                inputs += self._weights[c]
                size[v] += size[c]
            wbar[v] = max(self._weights[v], inputs)
        self._wbar = tuple(wbar)
        self._subtree_size = tuple(size)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int]],
        weights: Sequence[int],
    ) -> "TaskTree":
        """Build from dependency edges ``(child, parent)`` (data flows child → parent)."""
        parents = [-1] * n
        for child, parent in edges:
            if parents[child] != -1:
                raise TreeError(f"node {child} has two parents")
            parents[child] = parent
        return cls(parents, weights)

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[int]]) -> "TaskTree":
        """Inverse of :meth:`to_dict`."""
        return cls(data["parents"], data["weights"])

    def to_dict(self) -> dict[str, list[int]]:
        """A plain-JSON representation (``parents`` and ``weights`` lists)."""
        return {"parents": list(self._parents), "weights": list(self._weights)}

    def with_weights(self, weights: Sequence[int]) -> "TaskTree":
        """Same shape, new output sizes."""
        return TaskTree(self._parents, weights)

    def relabeled(self, order: Sequence[int]) -> "TaskTree":
        """Return an isomorphic tree whose node ``i`` is old node ``order[i]``."""
        if sorted(order) != list(range(self.n)):
            raise TreeError("relabeling is not a permutation of the nodes")
        new_id = [0] * self.n
        for new, old in enumerate(order):
            new_id[old] = new
        parents = [
            -1 if self._parents[old] == -1 else new_id[self._parents[old]]
            for old in order
        ]
        weights = [self._weights[old] for old in order]
        return TaskTree(parents, weights)

    # ------------------------------------------------------------------
    # the tree protocol
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of tasks."""
        return len(self._parents)

    @property
    def root(self) -> int:
        """The unique sink task."""
        return self._root

    @property
    def parents(self) -> tuple[int, ...]:
        """``parents[i]`` consumes node *i*'s output (``-1`` for the root)."""
        return self._parents

    @property
    def weights(self) -> tuple[int, ...]:
        """Output data sizes :math:`w_i`."""
        return self._weights

    @property
    def children(self) -> tuple[tuple[int, ...], ...]:
        """``children[i]`` lists the tasks whose output node *i* consumes."""
        return self._children

    @property
    def wbar(self) -> tuple[int, ...]:
        """Execution footprints :math:`\\bar w_i = \\max(w_i, \\sum_{j \\to i} w_j)`."""
        return self._wbar

    def parent(self, v: int) -> int:
        return self._parents[v]

    def weight(self, v: int) -> int:
        return self._weights[v]

    def subtree_size(self, v: int) -> int:
        """Number of nodes in the subtree rooted at ``v`` (including ``v``)."""
        return self._subtree_size[v]

    # ------------------------------------------------------------------
    # traversal helpers (all iterative: trees can be deep chains)
    # ------------------------------------------------------------------
    def topological_order(self) -> tuple[int, ...]:
        """A canonical root-first order (parents before children)."""
        return self._topo

    def bottom_up(self) -> Iterator[int]:
        """Iterate children before parents (reverse of the canonical order)."""
        return reversed(self._topo)

    def subtree_nodes(self, v: int) -> list[int]:
        """All nodes of the subtree rooted at ``v``, parent-first."""
        out = [v]
        for u in out:
            out.extend(self._children[u])
        return out

    def leaves(self) -> list[int]:
        """Tasks with no inputs."""
        return [v for v in range(self.n) if not self._children[v]]

    def depth(self) -> int:
        """Number of edges on the longest root-to-leaf path."""
        depth = [0] * self.n
        best = 0
        for v in self._topo:
            p = self._parents[v]
            if p != -1:
                depth[v] = depth[p] + 1
                if depth[v] > best:
                    best = depth[v]
        return best

    def path_to_root(self, v: int) -> list[int]:
        """``v`` and all its ancestors, ending at the root."""
        path = [v]
        while self._parents[path[-1]] != -1:
            path.append(self._parents[path[-1]])
        return path

    def postorder(
        self, child_order: Callable[[int], Sequence[int]] | None = None
    ) -> list[int]:
        """A postorder listing of the nodes.

        ``child_order(v)`` may supply the visit order of ``v``'s children
        (the lever that all postorder heuristics of the paper pull);
        it defaults to the construction order.
        """
        order = child_order if child_order is not None else (lambda v: self._children[v])
        out: list[int] = []
        # Stack of (node, emitted?) pairs, iterative to support deep chains.
        stack: list[tuple[int, bool]] = [(self._root, False)]
        while stack:
            v, emitted = stack.pop()
            if emitted:
                out.append(v)
            else:
                stack.append((v, True))
                kids = order(v)
                for c in reversed(list(kids)):
                    stack.append((c, False))
        return out

    # ------------------------------------------------------------------
    # model-level quantities
    # ------------------------------------------------------------------
    def min_feasible_memory(self) -> int:
        """``LB = max_i wbar_i``: below this no traversal exists at all."""
        return max(self._wbar)

    def total_weight(self) -> int:
        return sum(self._weights)

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskTree):
            return NotImplemented
        return self._parents == other._parents and self._weights == other._weights

    def __hash__(self) -> int:
        return hash((self._parents, self._weights))

    def __repr__(self) -> str:
        return f"TaskTree(n={self.n}, root={self._root}, total_weight={self.total_weight()})"


# ----------------------------------------------------------------------
# small named constructors used across tests, examples and benchmarks
# ----------------------------------------------------------------------
def chain_tree(weights: Sequence[int]) -> TaskTree:
    """A chain ``leaf → ... → root``; ``weights[0]`` is the **root**."""
    n = len(weights)
    parents = [i - 1 for i in range(n)]
    return TaskTree(parents, weights)


def star_tree(root_weight: int, leaf_weights: Sequence[int]) -> TaskTree:
    """One root consuming ``len(leaf_weights)`` independent leaves."""
    parents = [-1] + [0] * len(leaf_weights)
    return TaskTree(parents, [root_weight, *leaf_weights])


def balanced_binary_tree(depth: int, weight: int | Callable[[int], int] = 1) -> TaskTree:
    """A complete binary tree with ``2**(depth+1) - 1`` nodes.

    ``weight`` may be a constant or a function of the node id.
    """
    n = 2 ** (depth + 1) - 1
    parents = [-1] + [(i - 1) // 2 for i in range(1, n)]
    if callable(weight):
        weights = [weight(i) for i in range(n)]
    else:
        weights = [weight] * n
    return TaskTree(parents, weights)
