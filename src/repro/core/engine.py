"""Kernel-engine selection: object trees vs flat-array kernels.

Two interchangeable engines compute every core quantity of the
reproduction:

``object``
    the original implementations over :class:`~repro.core.tree.TaskTree`
    (and the mutable expansion trees) — per-node Python structures,
    arbitrary-precision integers;
``array``
    the flat CSR kernels of :mod:`repro.core.kernels` over
    :class:`~repro.core.arraytree.ArrayTree` — int64 arrays, no
    recursion, several times faster and leaner on big trees.

Results are **exactly equal** (schedules, ``S_i``/``V_i``, I/O
functions, peaks) — the randomized cross-validation harness enforces
this — so engine choice is purely a performance knob.  The default mode
``auto`` uses the array kernels once a tree is large enough to amortise
the conversion (:data:`AUTO_THRESHOLD` nodes) and whenever the caller
already holds an ``ArrayTree``.

Selection surface, in precedence order:

1. an explicit ``engine=`` argument on the public APIs;
2. the innermost :func:`engine_scope` context (thread-local — the
   service's inline worker threads do not leak into each other);
3. the process default, settable with :func:`set_default_engine` and
   seeded from the ``REPRO_ENGINE`` environment variable.

Because results are identical across engines, the batch engine's and
the service's content-addressed cache keys deliberately *exclude* the
engine: a result computed by either engine serves requests for both.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

from .arraytree import ArrayTree, as_array_tree
from .tree import TaskTree, TreeError

__all__ = [
    "ENGINES",
    "AUTO_THRESHOLD",
    "default_engine",
    "set_default_engine",
    "engine_scope",
    "resolve_engine",
    "array_tree_or_none",
]

#: the accepted engine names.
ENGINES = ("auto", "object", "array")

#: in ``auto`` mode, trees with at least this many nodes take the array
#: kernels; below it the conversion overhead outweighs the win.
AUTO_THRESHOLD = 512

_local = threading.local()


def _checked(name: str) -> str:
    if name not in ENGINES:
        raise ValueError(f"unknown engine {name!r}; available: {ENGINES}")
    return name


def _default_from_env() -> str:
    """Seed the process default from ``REPRO_ENGINE``.

    Runs at import time, so an invalid value must not raise (it would
    take down every ``import repro``, including ``--version``); warn and
    fall back to ``auto`` instead.
    """
    name = os.environ.get("REPRO_ENGINE", "auto")
    if name not in ENGINES:
        import warnings

        warnings.warn(
            f"ignoring invalid REPRO_ENGINE={name!r}; available: {ENGINES}",
            RuntimeWarning,
            stacklevel=2,
        )
        return "auto"
    return name


_default = _default_from_env()


def default_engine() -> str:
    """The engine in effect when no explicit argument/scope overrides it."""
    return getattr(_local, "engine", None) or _default


def set_default_engine(name: str) -> str:
    """Set the process-wide default; returns the previous value."""
    global _default
    previous = _default
    _default = _checked(name)
    return previous


@contextmanager
def engine_scope(name: str | None):
    """Thread-locally pin the engine for the duration of the block.

    ``None`` and ``"auto"`` are no-op scopes: ``auto`` means "no
    preference", so it must *not* shadow a process default set with
    :func:`set_default_engine` or ``REPRO_ENGINE`` (e.g. the
    ``serve --engine`` server-wide setting, which requests that do not
    pin an engine are supposed to inherit).
    """
    if name is None or _checked(name) == "auto":
        yield
        return
    previous = getattr(_local, "engine", None)
    _local.engine = name
    try:
        yield
    finally:
        _local.engine = previous


def resolve_engine(engine: str | None, tree) -> str:
    """Resolve an optional override + a tree into ``"object"``/``"array"``."""
    name = _checked(engine) if engine is not None else default_engine()
    if name != "auto":
        return name
    if isinstance(tree, ArrayTree):
        return "array"
    return "array" if getattr(tree, "n", 0) >= AUTO_THRESHOLD else "object"


def array_tree_or_none(tree, engine: str | None = None) -> ArrayTree | None:
    """The dispatch helper used by every public API.

    Returns an :class:`ArrayTree` when the resolved engine is ``array``
    and the input is convertible, else ``None`` (meaning: stay on the
    object path).  Inputs the flat layout cannot hold — mutable
    expansion trees, weights beyond int64 — quietly fall back, keeping
    ``engine="array"`` a performance request rather than a new failure
    mode.
    """
    if not isinstance(tree, (TaskTree, ArrayTree)):
        return None
    if resolve_engine(engine, tree) != "array":
        return None
    try:
        return as_array_tree(tree)
    except TreeError:
        return None
