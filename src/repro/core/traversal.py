"""Traversals: the solution object of the MinIO problem.

A *traversal* (Section 3.1 of the paper) is a pair ``(sigma, tau)``:

* ``sigma`` — a permutation of the tasks, topological with respect to the
  tree (every child before its parent);
* ``tau``   — the I/O function: ``tau[i]`` units of node *i*'s output are
  written to disk right after *i* completes and read back right before
  *i*'s parent executes.

Validity (the paper's three conditions) is checked by :func:`validate`,
which is deliberately independent from the FiF simulator so the two can
cross-check each other in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .tree import TaskTree

__all__ = ["Traversal", "InvalidTraversal", "validate", "is_postorder"]


class InvalidTraversal(ValueError):
    """A traversal violating one of the three validity conditions."""


@dataclass(frozen=True)
class Traversal:
    """An execution order plus its per-node I/O amounts.

    Attributes
    ----------
    schedule:
        node ids in execution order (``schedule[t]`` runs at step ``t``).
    io:
        ``io[i]`` = amount of node *i*'s output written to disk
        (:math:`\\tau(i)`); index-aligned with the tree nodes.
    """

    schedule: tuple[int, ...]
    io: tuple[int, ...]

    @property
    def io_volume(self) -> int:
        """Total write volume :math:`\\sum_i \\tau(i)` (reads are symmetric)."""
        return sum(self.io)

    def performance(self, memory: int) -> float:
        """The paper's Section 6 metric ``(M + io) / M``.

        1.0 means no I/O at all; 2.0 means a full memory's worth of writes.
        """
        return (memory + self.io_volume) / memory

    def position(self) -> dict[int, int]:
        """Map node id → execution step."""
        return {v: t for t, v in enumerate(self.schedule)}

    @staticmethod
    def from_schedule(schedule: Sequence[int], io: Sequence[int]) -> "Traversal":
        return Traversal(tuple(schedule), tuple(io))


def validate(tree: TaskTree, traversal: Traversal, memory: int) -> None:
    """Check the three validity conditions; raise :class:`InvalidTraversal` otherwise.

    1. ``schedule`` is a topological permutation of all nodes;
    2. ``0 <= tau(i) <= w_i`` for all ``i``;
    3. at every step ``t`` executing node ``i``, the resident parts of the
       active outputs leave ``wbar_i`` units free:
       ``sum_{k active at t} (w_k - tau(k)) <= M - wbar_i``.
    """
    n = tree.n
    sched = traversal.schedule
    if len(sched) != n or sorted(sched) != list(range(n)):
        raise InvalidTraversal("schedule is not a permutation of the nodes")

    pos = [0] * n
    for t, v in enumerate(sched):
        pos[v] = t
    for v in range(n):
        p = tree.parents[v]
        if p != -1 and pos[v] >= pos[p]:
            raise InvalidTraversal(
                f"node {v} scheduled at {pos[v]}, not before its parent "
                f"{p} at {pos[p]}"
            )

    if len(traversal.io) != n:
        raise InvalidTraversal("io function is not index-aligned with the tree")
    for v, amount in enumerate(traversal.io):
        if not 0 <= amount <= tree.weights[v]:
            raise InvalidTraversal(
                f"io amount of node {v} out of range: {amount} not in "
                f"[0, {tree.weights[v]}]"
            )

    # Memory condition.  Walk the schedule maintaining the resident total of
    # active outputs; children of the current step are *not* active at it
    # (their memory is accounted inside wbar).
    resident = 0
    for t, v in enumerate(sched):
        for c in tree.children[v]:
            resident -= tree.weights[c] - traversal.io[c]
        need = tree.wbar[v] + resident
        if need > memory:
            raise InvalidTraversal(
                f"step {t} (node {v}) needs {need} > M={memory} "
                f"(wbar={tree.wbar[v]}, resident={resident})"
            )
        if tree.parents[v] != -1:
            resident += tree.weights[v] - traversal.io[v]
    # (the root's output simply remains in memory; no condition on it)


def is_postorder(tree: TaskTree, schedule: Sequence[int]) -> bool:
    """True iff ``schedule`` never interleaves two sibling subtrees.

    Formal definition (Section 3.1): for any node ``i`` and any node ``k``
    outside the subtree of ``i``, ``k`` is scheduled either before or after
    the *whole* subtree of ``i``.  Equivalently: the steps of every subtree
    form a contiguous block ending at its root.
    """
    n = tree.n
    pos = [0] * n
    for t, v in enumerate(schedule):
        pos[v] = t
    # Bottom-up: the block of v is [min over subtree, pos[v]]; contiguity
    # holds iff the block size equals the subtree size and v comes last.
    low = [0] * n
    size = [0] * n
    for v in tree.bottom_up():
        lo, sz = pos[v], 1
        for c in tree.children[v]:
            if pos[c] > pos[v]:
                return False
            lo = min(lo, low[c])
            sz += size[c]
        if pos[v] - lo + 1 != sz:
            return False
        low[v], size[v] = lo, sz
    return True
