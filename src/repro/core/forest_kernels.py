"""Whole-forest sweeps of the hot algorithms over :class:`ArrayForest`.

Each function runs one kernel across every member of a forest in a
tight loop: the concatenated columns are converted to plain lists once
(cached on the forest), each tree's slice is cut out with C-level list
slicing, and the **same list-based cores** that power the per-tree
array engine (:mod:`repro.core.kernels`) do the actual work.  Per-tree
results are therefore byte-identical to ``kernels.best_postorder`` /
``liu_peak`` / ``liu_schedule`` / ``simulate_fif`` on the member trees —
one implementation, enforced by the forest property test
(``tests/test_forest.py``) on top of the engine cross-validation
harness.

What the batching buys (vs. dispatching the per-tree engine once per
tree): no per-tree ``TaskTree``/``ArrayTree`` construction, no per-tree
numpy fixed costs, no per-call buffer materialisation — only the
irreducible algorithm loops remain.  And every forest strategy now has
a loop-free twin: besides the single-reduction passes
(:func:`forest_lower_bounds`) and the level-synchronous best-postorder
DP, Liu's hill–valley solver runs as a segmented-array merge over all
trees at once (:func:`_liu_vector`) and FiF as an event-driven sweep
(:func:`_simulate_fif_vector`) — each byte-identical to its list core,
with the exact ``(valley − hill, rank)`` / heap tie-breaks preserved,
enforced by ``tests/test_forest.py``.  The loop cores stay reachable
(``vectorize=False``, small batches, degenerate shapes) and are the
single source of truth.

``memories`` arguments accept ``None`` (unbounded), one int for the
whole forest, or one value per tree.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from .forest import ArrayForest
from .kernels import (
    best_postorder_core,
    fif_overflow_message,
    fif_stuck_message,
    flatten_rope,
    liu_peak_core,
    liu_segments_core,
    simulate_fif_core,
)
from .traversal import Traversal

__all__ = [
    "FOREST_STRATEGIES",
    "forest_lower_bounds",
    "forest_min_peaks",
    "forest_memory_bounds",
    "forest_best_postorders",
    "forest_opt_min_mem",
    "forest_simulate_fif",
    "forest_traversals",
]

#: registry strategies with a whole-forest implementation (the kernel
#: trio; RecExpand-style expansion heuristics stay per-tree).
FOREST_STRATEGIES = ("OptMinMem", "PostOrderMinIO", "PostOrderMinMem")


def _memory_list(memories, n_trees: int) -> list:
    if isinstance(memories, bool):
        raise TypeError(
            f"memory bound must be an int or None, got bool ({memories})"
        )
    if memories is None or isinstance(memories, (int, np.integer)):
        return [memories] * n_trees
    memories = list(memories)
    if len(memories) != n_trees:
        raise ValueError(
            f"{len(memories)} memory bounds for {n_trees} trees"
        )
    for k, m in enumerate(memories):
        if isinstance(m, bool):
            raise TypeError(
                f"tree {k}: memory bound must be an int or None, "
                f"got bool ({m})"
            )
    return memories


def forest_lower_bounds(forest: ArrayForest) -> list[int]:
    """``LB = max_i wbar_i`` of every tree — one numpy reduction."""
    if forest.n_trees == 0:
        return []
    off = forest.offsets
    return np.maximum.reduceat(forest._wbar, off[:-1]).tolist()


#: vectorised-path guards: below this many trees the batch cannot
#: amortise the fixed numpy costs, and beyond this depth the one-pass-
#:per-level schedule would degenerate on chain-shaped forests.
_VECTOR_MIN_TREES = 4
_VECTOR_MAX_DEPTH = 4096
#: FiF's event sweep still walks overflow candidates in Python, and a
#: single huge tight-memory member can contribute a candidate per step,
#: so the auto path keeps very large members on the per-tree core.
_VECTOR_MAX_FIF_STEPS = 4096


def _liu_vectorizable(forest: ArrayForest) -> bool:
    return (
        forest.n_trees >= _VECTOR_MIN_TREES
        and forest.max_depth() <= _VECTOR_MAX_DEPTH
    )


def forest_min_peaks(
    forest: ArrayForest, *, vectorize: bool | None = None
) -> list[int]:
    """``Peak_incore`` (Liu's optimum) of every tree.

    ``vectorize=None`` auto-selects between the per-tree
    :func:`~repro.core.kernels.liu_peak_core` loop and the
    level-synchronous segmented solver (:func:`_liu_vector`); both
    produce identical peaks.
    """
    if forest.n_trees == 0:
        return []
    if vectorize is None:
        vectorize = _liu_vectorizable(forest)
    if vectorize:
        return _liu_vector(forest, schedules=False)[0].tolist()
    off, _p, w, _wb, topo, cs, ci = forest._as_lists()
    out = []
    push = out.append
    for k in range(forest.n_trees):
        a = off[k]
        b = off[k + 1]
        push(
            liu_peak_core(
                b - a,
                w[a:b],
                cs[a + k : b + k + 1],
                ci[a - k : b - (k + 1)],
                topo[a:b],
            )
        )
    return out


def forest_memory_bounds(forest: ArrayForest) -> list[tuple[int, int]]:
    """``(LB, Peak_incore)`` per tree — the experiment-framing interval."""
    return list(zip(forest_lower_bounds(forest), forest_min_peaks(forest)))


def forest_best_postorders(
    forest: ArrayForest, memories=None, *, vectorize: bool | None = None
) -> list[tuple[list[int], list[int], list[int]]]:
    """:func:`~repro.core.kernels.best_postorder` across the forest.

    ``memories=None`` is the MinMem variant everywhere; otherwise MinIO
    under the given bound(s).  Returns per-tree ``(schedule, storage,
    vio)`` with node ids local to each tree.

    Two exactly-equivalent implementations back this: the per-tree list
    cores, and a **level-synchronous vectorised engine** that runs
    Liu's DP over all trees at once — one numpy pass per depth level,
    child orderings realised by a single ``lexsort`` whose
    ``(-key, id)`` keys reproduce the scalar tie-break bit for bit.
    ``vectorize=None`` picks automatically (vectorised for batches of
    shallow-enough trees); forcing either value is for tests and
    benchmarks only.
    """
    n_trees = forest.n_trees
    if n_trees == 0:
        return []
    mems = _memory_list(memories, n_trees)
    mixed_none = memories is not None and any(m is None for m in mems)
    if vectorize is None:
        vectorize = (
            not mixed_none
            and n_trees >= _VECTOR_MIN_TREES
            and forest.max_depth() <= _VECTOR_MAX_DEPTH
        )
    elif vectorize and mixed_none:
        raise ValueError(
            "the vectorised engine needs one mode for the whole forest; "
            "mixed per-tree None/int memories run on the loop path"
        )
    if vectorize:
        schedule, storage, vio = _best_postorders_vector(
            forest, None if memories is None else mems
        )
        off_l = forest._offsets.tolist()
        sched_l = schedule.tolist()
        storage_l = storage.tolist()
        vio_l = vio.tolist()
        return [
            (sched_l[a:b], storage_l[a:b], vio_l[a:b])
            for a, b in zip(off_l, off_l[1:])
        ]
    off, _p, w, _wb, topo, cs, ci = forest._as_lists()
    out = []
    push = out.append
    for k in range(n_trees):
        a = off[k]
        b = off[k + 1]
        push(
            best_postorder_core(
                b - a,
                w[a:b],
                cs[a + k : b + k + 1],
                ci[a - k : b - (k + 1)],  # fresh slice: core reorders it
                topo[a:b],
                mems[k],
            )
        )
    return out


def forest_best_postorders_flat(
    forest: ArrayForest,
    memories=None,
    *,
    vectorize: bool | None = None,
    schedules: bool = True,
):
    """:func:`forest_best_postorders` in the forest's native flat form.

    Returns ``(schedule, storage, vio)`` as int64 numpy columns over
    the concatenated node space (slice with ``forest.offsets``) —
    element-wise equal to the per-tree lists, without materialising one
    Python list per tree.  ``schedules=False`` skips the emission sweep
    entirely (``schedule`` comes back ``None``): the cheapest way to
    batch-compute peaks (``storage``) and I/O volumes (``vio``).
    """
    n_trees = forest.n_trees
    mems = _memory_list(memories, n_trees)
    mixed_none = memories is not None and any(m is None for m in mems)
    if vectorize is None:
        vectorize = (
            not mixed_none
            and n_trees >= _VECTOR_MIN_TREES
            and forest.max_depth() <= _VECTOR_MAX_DEPTH
        )
    if n_trees and vectorize and not mixed_none:
        return _best_postorders_vector(
            forest, None if memories is None else mems, schedules=schedules
        )
    per_tree = forest_best_postorders(forest, memories, vectorize=False)
    schedule = np.array(
        [v for s, _st, _v in per_tree for v in s], dtype=np.int64
    )
    storage = np.array(
        [v for _s, st, _v in per_tree for v in st], dtype=np.int64
    )
    vio = np.array(
        [v for _s, _st, vi in per_tree for v in vi], dtype=np.int64
    )
    return (schedule if schedules else None), storage, vio


def _order_level(ch, key, starts, grp, counts, max_arity, multi):
    """Sort a level's child groups by ``(-key, id)``, exactly.

    ``max_arity == 1`` needs no work; all-binary levels resolve with one
    vectorised conditional swap (the scalar core's two-child rule, which
    equals the full sort); anything wider sorts only the edges of
    multi-child groups (``multi``, precomputed on the level cache —
    singleton groups are already ordered) with one stable ``lexsort``.
    The ascending-id tie-break costs nothing: ``ch`` arrives in CSR
    order (ascending ids within each group) and the stable sort keeps
    that order on equal keys — bit for bit the scalar core's
    ``(-key, id)`` rule.
    """
    if max_arity == 1:
        return ch
    if max_arity == 2:
        kc = key[ch]
        firsts = starts[counts == 2]
        swap = firsts[kc[firsts + 1] > kc[firsts]]
        if swap.size:
            ch = ch.copy()
            ch[swap], ch[swap + 1] = ch[swap + 1], ch[swap]
        return ch
    sub = ch[multi]
    order = np.lexsort((-key[sub], grp[multi]))
    ch = ch.copy()
    ch[multi] = sub[order]
    return ch


def _best_postorders_vector(forest: ArrayForest, mems, *, schedules=True):
    """The level-synchronous engine behind :func:`forest_best_postorders`.

    Processes depth levels bottom-up: within a level, every node's
    children are ordered by :func:`_order_level` and the ``S_i``/``A_i``
    prefix recursions become segmented cumulative sums plus ``reduceat``
    maxima — integer-exact, same tie-breaking as the scalar core.  The
    schedule then falls out of one *global* pass: a node's block start
    is the path-sum of its earlier-siblings' subtree sizes, accumulated
    root-to-node by pointer doubling — the same contiguous-block
    emission rule the scalar core applies one node at a time.
    """
    off = forest._offsets
    total = forest.total_nodes
    gcs, gci, gpar, base, tree_of = forest._globals()
    levels = forest._levels()
    w = forest._weights
    minmem = mems is None
    if not minmem:
        M = np.asarray(mems, dtype=np.int64)[tree_of]

    storage = np.zeros(total, dtype=np.int64)
    key = np.zeros(total, dtype=np.int64)
    vio = np.zeros(total, dtype=np.int64)
    if schedules:
        ordered = np.array(gci)  # reordered level by level, like the core

    cnt_all = gcs[1:] - gcs[:total]
    leaves = cnt_all == 0
    storage[leaves] = w[leaves]
    if not minmem:
        key[leaves] = np.minimum(w[leaves], M[leaves]) - w[leaves]

    for level in reversed(levels):
        if level is None:
            continue
        idx, eidx, starts, grp, counts, max_arity, multi = level
        chs = _order_level(gci[eidx], key, starts, grp, counts, max_arity, multi)
        if schedules:
            ordered[eidx] = chs

        sc = storage[chs]
        if max_arity == 1:
            peak = np.maximum(w[idx], sc)
            storage[idx] = peak
            if minmem:
                key[idx] = peak - w[idx]
            else:
                m_idx = M[idx]
                vio[idx] = vio[chs]  # min(M, S_c) <= M: no new I/O at idx
                key[idx] = np.minimum(peak, m_idx) - w[idx]
            continue
        wc = w[chs]
        excl = np.cumsum(wc) - wc
        prefix = excl - np.repeat(excl[starts], counts)
        peak = np.maximum(
            w[idx], np.maximum.reduceat(sc + prefix, starts)
        )
        storage[idx] = peak
        if minmem:
            key[idx] = peak - w[idx]
        else:
            m_idx = M[idx]
            worst = np.maximum.reduceat(
                np.minimum(sc, np.repeat(m_idx, counts)) + prefix, starts
            )
            over = np.maximum(worst - m_idx, 0)
            vio[idx] = over + np.add.reduceat(vio[chs], starts)
            key[idx] = np.minimum(peak, m_idx) - w[idx]

    if not schedules:
        return None, storage, vio

    # Emission, globally: with subtree blocks contiguous and every node
    # closing its own block, a node's block *start* is the sum of its
    # earlier (sorted) siblings' sizes accumulated along the root path.
    # Per-edge sibling prefixes are one segmented cumsum over the sorted
    # CSR; the root-path accumulation is pointer doubling — log₂ rounds,
    # no per-level work at all.
    size = forest._subtree_sizes()
    internal = np.flatnonzero(~leaves)
    szs = size[ordered]
    excl = np.cumsum(szs) - szs
    contrib = np.zeros(total, dtype=np.int64)
    contrib[ordered] = excl - np.repeat(excl[gcs[internal]], cnt_all[internal])
    ids = np.arange(total, dtype=np.int64)
    jump = np.where(gpar < 0, ids, gpar)
    block_start = contrib
    for _ in range(max(1, len(levels) - 1).bit_length()):
        block_start = block_start + block_start[jump]
        jump = jump[jump]

    schedule = np.empty(total, dtype=np.int64)
    schedule[base + block_start + size - 1] = ids - base
    return schedule, storage, vio


def _seg_suffix_records(vals: np.ndarray, grp: np.ndarray) -> np.ndarray:
    """Strict suffix-max records within contiguous groups.

    ``records[i]`` is True iff ``vals[i] > vals[j]`` for every later
    ``j`` of the same group.  Runs a segmented Hillis–Steele scan on
    the reversed arrays — groups are contiguous, so "same group at
    distance ``2^k``" is the whole guard — in log rounds, no offset
    tricks (the values may use the full int64 weight budget).
    """
    m = len(vals)
    if m == 0:
        return np.zeros(0, dtype=bool)
    lo = np.iinfo(np.int64).min
    rv = vals[::-1]
    rg = grp[::-1]
    # rounds only need to span the longest group, not the whole array
    cuts = np.flatnonzero(grp[1:] != grp[:-1])
    if len(cuts):
        runs = np.empty(len(cuts) + 1, dtype=np.int64)
        runs[0] = cuts[0] + 1
        np.subtract(cuts[1:], cuts[:-1], out=runs[1:-1])
        runs[-1] = m - 1 - cuts[-1]
        max_run = int(runs.max())
    else:
        max_run = m
    incl = rv.copy()
    buf = np.empty(m, dtype=np.int64)
    shift = 1
    while shift < max_run:
        buf[:shift] = incl[:shift]
        buf[shift:] = incl[shift:]
        np.maximum(
            incl[shift:],
            incl[:-shift],
            out=buf[shift:],
            where=rg[shift:] == rg[:-shift],
        )
        incl, buf = buf, incl
        shift <<= 1
    excl = np.full(m, lo, dtype=np.int64)
    excl[1:] = np.where(rg[1:] == rg[:-1], incl[:-1], lo)
    return (rv > excl)[::-1].copy()


def _liu_vector(forest: ArrayForest, *, schedules: bool = True):
    """Liu's segment solver, level-synchronously over the whole forest.

    One numpy pass per depth level, bottom-up.  The *store* holds the
    canonical hill–valley segment lists of every node at the current
    depth as flat rows.  A level transition replays each internal
    node's merged child deltas exactly like the scalar core — items
    sorted by ``(valley − hill, CSR rank)`` via one stable ``lexsort``,
    the running base a segmented cumsum — and then canonicalises the
    replayed sequence in two closed-form stages instead of a stack:

    1. a position ends a canonical segment iff its valley is a strict
       suffix-minimum of the merged sequence (the replayed valleys are
       nondecreasing, so one local comparison decides it);
    2. of the candidate segments (sub-segment hill maxima via
       ``maximum.reduceat``), the survivors are the strict suffix-max
       records of the hills per node (:func:`_seg_suffix_records`);
       merged-away neighbours fold into the record that absorbs them.

    This is the same fixed point the scalar stack reaches (its pops on
    ``hill >= top.hill or valley <= top.valley`` are exactly the
    non-records / non-suffix-minima), so hills, valleys *and* rope
    order match bit for bit.

    With ``schedules=True`` every segment also carries its size and
    start offset, and absorption edges record ``(child segment, owner
    segment, delta)``; since canonicalisation never reorders content,
    a node's final position is its last segment's chain of deltas up
    to the root — resolved by pointer doubling, like the vectorised
    best-postorder emission.  Returns ``(peaks, schedule)`` with
    ``peaks`` int64 per tree and ``schedule`` a flat local-id column
    (or ``None``).
    """
    total = forest.total_nodes
    gcs, gci, _gpar, base, _tree_of = forest._globals()
    levels = forest._levels()
    depth = forest._depths()
    w = forest._weights
    n_levels = len(levels)

    cnt_all = gcs[1:] - gcs[:total]
    if n_levels <= 32767:  # int16 keys ride numpy's stable radix sort
        dorder = np.argsort(depth.astype(np.int16), kind="stable")
    else:
        dorder = np.argsort(depth, kind="stable")  # ascending ids per depth
    dbounds = np.searchsorted(
        depth[dorder], np.arange(n_levels + 1, dtype=np.int64)
    )
    ar = np.arange(total + 1, dtype=np.int64)  # sliced, never mutated
    row_of = np.empty(total, dtype=np.int64)  # node -> store row

    # current-depth store (all empty before the deepest level)
    soff = scnt = shill = svalley = None
    if schedules:
        ssize = sstart = sid = None
        seg_base = 0
        seg_sizes: list[np.ndarray] = []  # per level, concatenates by id
        absorbed: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        last_seg = np.full(total, -1, dtype=np.int64)

    for d in range(n_levels - 1, -1, -1):
        level = levels[d]
        if level is not None:
            idx, eidx, _st, grp_e, _cts, max_arity, _multi = level
            n_par = len(idx)
            w_idx = w[idx]
            chs = gci[eidx]
            rows = row_of[chs]
            cnt = scnt[rows]
            m = int(cnt.sum())
            istarts = np.cumsum(cnt) - cnt
            igrp = np.repeat(ar[: len(chs)], cnt)
            flat = soff[rows][igrp] + (ar[:m] - istarts[igrp])
            sh = shill[flat]
            sv = svalley[flat]
            pv = np.empty(m, dtype=np.int64)  # previous valley in child
            pv[1:] = sv[:-1]
            pv[istarts] = 0
            pg = grp_e[igrp]
            if max_arity == 1:
                # one child per parent: (valley − hill) already strictly
                # increasing along its list — the sort is the identity
                x = sh - pv
                y = sv - pv
                if schedules:
                    iid = sid[flat]
                    isz = ssize[flat]
            else:
                # lexsort is stable and ``flat`` is already in CSR-rank
                # (igrp) order, so (valley − hill, parent) alone gives
                # the exact ``(valley − hill, rank)`` tie-break
                order = np.lexsort((sv - sh, pg))
                x = (sh - pv)[order]
                y = (sv - pv)[order]
                pg = pg[order]
                if schedules:
                    iid = sid[flat][order]
                    isz = ssize[flat][order]

            # replay the merged deltas on per-parent running bases and
            # interleave each parent's own final item (base_total, w_v)
            mcounts = np.bincount(pg, minlength=n_par)
            tcnt = mcounts + 1
            toff = np.cumsum(tcnt) - tcnt
            T = m + n_par
            tgrp = np.repeat(ar[:n_par], tcnt)
            gstarts = np.cumsum(mcounts) - mcounts
            cpos = ar[:m] + pg  # item → combined slot
            spos = toff + mcounts  # self item → combined slot
            ycum = np.empty(m + 1, dtype=np.int64)
            ycum[0] = 0
            np.cumsum(y, out=ycum[1:])
            base_before = ycum[:m] - ycum[gstarts][pg]
            base_total = ycum[gstarts + mcounts] - ycum[gstarts]
            habs = np.empty(T, dtype=np.int64)
            vabs = np.empty(T, dtype=np.int64)
            habs[cpos] = base_before + x
            vabs[cpos] = base_before + y
            habs[spos] = np.maximum(base_total, w_idx)
            vabs[spos] = w_idx

            # stage 1: strict suffix-min valleys close segments.  The
            # replayed valleys are nondecreasing within a parent (the
            # deltas' y >= 0), so "less than the next slot and less
            # than the final w_v" is the whole test; the final item
            # always closes one.
            nxt = np.empty(T, dtype=np.int64)
            nxt[:-1] = vabs[1:]
            nxt[-1] = 0
            smask = (vabs < nxt) & (vabs < w_idx[tgrp])
            smask[spos] = True
            closers = np.flatnonzero(smask)
            bmask = np.zeros(T, dtype=bool)
            bmask[toff] = True
            bmask[1:] |= smask[:-1]
            bstarts = np.flatnonzero(bmask)
            hseg = np.maximum.reduceat(habs, bstarts)
            cgrp = tgrp[closers]

            # stage 2: strict suffix-max hills survive, the rest merge
            # into the record that dominates them
            rec = _seg_suffix_records(hseg, cgrp)
            surv = closers[rec]
            sgrp = cgrp[rec]
            newh = hseg[rec]
            newv = vabs[surv]
            newcnt = np.bincount(sgrp, minlength=n_par)

            if schedules:
                sizes2 = np.empty(T, dtype=np.int64)
                sizes2[cpos] = isz
                sizes2[spos] = 1
                szcum = np.empty(T + 1, dtype=np.int64)
                szcum[0] = 0
                np.cumsum(sizes2, out=szcum[1:])
                item_off = szcum[:T] - szcum[toff][tgrp]
                ns = len(surv)
                sfirst = np.empty(ns, dtype=bool)
                sfirst[0] = True
                np.not_equal(sgrp[1:], sgrp[:-1], out=sfirst[1:])
                spanstart = np.empty(ns, dtype=np.int64)
                spanstart[sfirst] = toff[sgrp[sfirst]]
                nf = np.flatnonzero(~sfirst)
                spanstart[nf] = surv[nf - 1] + 1
                newsize = szcum[surv + 1] - szcum[spanstart]
                newstart = item_off[spanstart]
                cover = np.searchsorted(surv, cpos)

        # merge the level's survivors with its leaves into the new store
        nodes_d = dorder[dbounds[d] : dbounds[d + 1]]
        nd = len(nodes_d)
        leaf_rows = np.flatnonzero(cnt_all[nodes_d] == 0)
        ncnt = np.empty(nd, dtype=np.int64)
        ncnt[leaf_rows] = 1
        if level is not None:
            int_rows = np.flatnonzero(cnt_all[nodes_d] != 0)
            ncnt[int_rows] = newcnt
        noff = np.cumsum(ncnt) - ncnt
        tot = int(ncnt.sum())
        hill_new = np.empty(tot, dtype=np.int64)
        valley_new = np.empty(tot, dtype=np.int64)
        wl = w[nodes_d[leaf_rows]]
        tgt_leaf = noff[leaf_rows]
        hill_new[tgt_leaf] = wl
        valley_new[tgt_leaf] = wl
        if level is not None:
            srank = ar[: len(surv)] - (np.cumsum(newcnt) - newcnt)[sgrp]
            tgt_int = noff[int_rows][sgrp] + srank
            hill_new[tgt_int] = newh
            valley_new[tgt_int] = newv
        if schedules:
            size_new = np.empty(tot, dtype=np.int64)
            start_new = np.zeros(tot, dtype=np.int64)
            size_new[tgt_leaf] = 1
            ids_new = seg_base + ar[:tot]
            if level is not None:
                size_new[tgt_int] = newsize
                start_new[tgt_int] = newstart
                surv_ids = ids_new[tgt_int]
                absorbed.append(
                    (iid, surv_ids[cover], item_off[cpos] - newstart[cover])
                )
                last_seg[idx] = surv_ids[np.cumsum(newcnt) - 1]
            last_seg[nodes_d[leaf_rows]] = ids_new[tgt_leaf]
            seg_sizes.append(size_new)
            seg_base += tot
            ssize = size_new
            sstart = start_new
            sid = ids_new
        row_of[nodes_d] = ar[:nd]
        scnt = ncnt
        soff = noff
        shill = hill_new
        svalley = valley_new

    peaks = shill[soff]  # store == roots in tree order; hills lead
    if not schedules:
        return peaks, None

    # Resolve positions: every segment's start is its chain of deltas
    # through the owners that absorbed it, anchored at a root-level
    # segment's offset inside the root schedule.  Pointer doubling sums
    # the chains; a node sits ``size − 1`` into its last segment.
    nseg = seg_base
    par = np.arange(nseg, dtype=np.int64)
    delta = np.zeros(nseg, dtype=np.int64)
    for cid, pid, dlt in absorbed:
        par[cid] = pid
        delta[cid] = dlt
    rootpos = np.zeros(nseg, dtype=np.int64)
    rootpos[sid] = sstart
    for _ in range(max(1, n_levels).bit_length()):
        delta = delta + delta[par]
        par = par[par]
    size_by_id = np.concatenate(seg_sizes)
    ls = last_seg
    posn = delta[ls] + rootpos[par[ls]] + size_by_id[ls] - 1
    schedule = np.empty(total, dtype=np.int64)
    schedule[base + posn] = ar[:total] - base
    return peaks, schedule


def forest_opt_min_mem(
    forest: ArrayForest, *, vectorize: bool | None = None
) -> list[tuple[list[int], int]]:
    """``OPTMINMEM`` (schedule, peak) of every tree (Liu's segment solver).

    ``vectorize=None`` auto-selects between the per-tree
    :func:`~repro.core.kernels.liu_segments_core` loop and the
    level-synchronous segmented solver (:func:`_liu_vector`); the two
    paths emit identical schedules and peaks.
    """
    if forest.n_trees == 0:
        return []
    if vectorize is None:
        vectorize = _liu_vectorizable(forest)
    if vectorize:
        peaks, schedule = _liu_vector(forest, schedules=True)
        off_l = forest._offsets.tolist()
        sched_l = schedule.tolist()
        peaks_l = peaks.tolist()
        return [
            (sched_l[a:b], pk)
            for a, b, pk in zip(off_l, off_l[1:], peaks_l)
        ]
    off, _p, w, _wb, topo, cs, ci = forest._as_lists()
    out = []
    push = out.append
    for k in range(forest.n_trees):
        a = off[k]
        b = off[k + 1]
        segs = liu_segments_core(
            b - a,
            w[a:b],
            cs[a + k : b + k + 1],
            ci[a - k : b - (k + 1)],
            topo[a:b],
        )
        schedule: list[int] = []
        for _hill, _valley, nodes in segs:
            flatten_rope(nodes, schedule)
        push((schedule, segs[0][0]))
    return out


#: memory sentinel for unbounded trees in the event sweep — only ever
#: compared against needs, never added to, so the max int64 is safe
_FIF_UNBOUNDED = np.int64(2**63 - 1)


def _simulate_fif_vector(
    forest: ArrayForest, schedules, mems
) -> list[tuple[dict[int, int], int, int]]:
    """FiF over all trees at once — event-driven on a static replay.

    The *uncapped* replay (children consumed at full weight, nothing
    evicted) is one segmented cumsum over the schedule slots, and
    evictions only ever shrink the true resident total below it — so
    ``uncapped_need > M`` marks a superset of the real overflow steps.
    Only those candidate events run in Python: each keeps the scalar
    core's exact eviction semantics — a lazily-folded min-heap per
    tree over static packed keys (``(-parent position, node)``, the
    core's ``(priority, node)`` tuples, packed into one int whose low
    bits recover the node) — while a per-tree correction ``D`` (evicted
    volume whose consumption step has not passed yet) turns the static
    need into the true one.  Exact peaks come back vectorised: ``D`` is
    piecewise constant between events, so per interval
    ``min(max(static need) - D, M)`` is the capped maximum.

    Infeasibility is decided up front: with a full-tree schedule the
    heap can never run dry (everything resident is evictable), so the
    only reachable raise is ``wbar_v > M`` — checked as one
    comparison, reported for the same tree, step and node the
    per-tree loop would pick.
    """
    from .simulator import InfeasibleSchedule  # circular-safe: lazy

    total = forest.total_nodes
    off = forest._offsets
    off_l = off.tolist()
    n_trees = forest.n_trees
    gcs, gci, gpar, base, tree_of = forest._globals()
    w = forest._weights
    wbar = forest._wbar
    sizes = np.diff(off)

    sched_local = np.concatenate(
        [np.asarray(s, dtype=np.int64) for s in schedules]
    )
    gsched = sched_local + base  # slot blocks mirror the node blocks
    ids = np.arange(total, dtype=np.int64)
    step_of = np.empty(total, dtype=np.int64)
    step_of[gsched] = ids - base

    M = np.empty(n_trees, dtype=np.int64)
    for k, mk in enumerate(mems):
        M[k] = _FIF_UNBOUNDED if mk is None else mk

    # feasibility, whole-forest at once: first offender in (tree, step)
    # order is exactly where the per-tree loop raises
    bad = wbar[gsched] > M[tree_of]
    if bad.any():
        j = int(np.flatnonzero(bad)[0])
        k = int(tree_of[j])
        raise InfeasibleSchedule(
            fif_overflow_message(
                int(sched_local[j]), int(wbar[gsched[j]]), mems[k]
            )
        )

    # static per-node consume step (the root is never consumed: n) —
    # its negation is the scalar heap priority, and both parts pack
    # into one int key whose low bits map a popped key back to its node
    sp = np.where(gpar >= 0, step_of[np.where(gpar >= 0, gpar, 0)], sizes[tree_of])
    max_n = int(sizes.max())
    kshift = max_n.bit_length()  # local ids < max_n < 2**kshift
    kmask = (1 << kshift) - 1
    ekey = ((max_n - sp) << np.int64(kshift)) + (ids - base)

    # uncapped replay: resident total after step t is the within-tree
    # prefix sum of (w_v - sum of children's weights); the need at t
    # adds wbar_v - cons_v on top of the previous total
    cw = np.empty(len(gci) + 1, dtype=np.int64)
    cw[0] = 0
    np.cumsum(w[gci], out=cw[1:])
    node_cons = cw[gcs[1:]] - cw[gcs[:total]]
    cons_slot = node_cons[gsched]
    cpad = np.empty(total + 1, dtype=np.int64)
    cpad[0] = 0
    np.cumsum(w[gsched] - cons_slot, out=cpad[1:])
    s_need = wbar[gsched] - cons_slot + cpad[ids] - cpad[base]
    cand = np.flatnonzero(s_need > M[tree_of])

    heaps: list[list[int]] = [[] for _ in range(n_trees)]
    fold_mark = [0] * n_trees  # schedule prefix already offered to heap
    corr: list[list[tuple[int, int]]] = [[] for _ in range(n_trees)]
    dshift = [0] * n_trees  # evicted volume not yet consumed
    chg: list[list[tuple[int, int]]] = [[] for _ in range(n_trees)]
    evicted = np.zeros(total, dtype=np.int64)
    io_maps: list[dict[int, int]] = [{} for _ in range(n_trees)]
    io_total = [0] * n_trees
    heappush = heapq.heappush
    heappop = heapq.heappop
    heapify = heapq.heapify

    for i, k, sn in zip(
        cand.tolist(), tree_of[cand].tolist(), s_need[cand].tolist()
    ):
        bk = off_l[k]
        t = i - bk
        D = dshift[k]
        ch = corr[k]
        while ch and ch[0][0] <= t:  # evicted outputs now consumed
            D -= heappop(ch)[1]
        excess = sn - D - mems[k]
        if excess <= 0:  # static overshoot already paid for by evictions
            dshift[k] = D
            continue
        heap = heaps[k]
        mark = fold_mark[k]
        if mark < t:
            if t - mark <= 8:
                # short backlog (usually one step): scalar pushes
                # beat the fancy-index round trip
                for s in range(bk + mark, bk + t):
                    u = int(gsched[s])
                    if sp[u] > t and w[u] > evicted[u]:
                        heappush(heap, int(ekey[u]))
            else:
                cf = gsched[bk + mark : bk + t]
                cf = cf[(sp[cf] > t) & (w[cf] > evicted[cf])]
                if cf.size:
                    fresh = ekey[cf].tolist()
                    if len(fresh) * 8 < len(heap):
                        for r in fresh:
                            heappush(heap, r)
                    else:
                        heap.extend(fresh)
                        heapify(heap)
            fold_mark[k] = t
        gained = 0
        iok = io_maps[k]
        log = chg[k]
        while excess > 0:
            if not heap:  # unreachable for full-tree schedules
                raise InfeasibleSchedule(
                    fif_stuck_message(
                        t, int(sched_local[i]), excess, mems[k]
                    )
                )
            u = bk + (heap[0] & kmask)
            su = int(sp[u])
            ru = 0 if su <= t else int(w[u]) - int(evicted[u])
            if ru <= 0:
                heappop(heap)
                continue
            take = ru if ru < excess else excess
            evicted[u] += take
            lu = u - bk
            iok[lu] = iok.get(lu, 0) + take
            if take == ru:
                heappop(heap)
            heappush(ch, (su, take))
            log.append((su, -take))
            gained += take
            excess -= take
        io_total[k] += gained
        dshift[k] = D + gained
        log.append((t + 1, gained))

    # peaks, vectorised: D is piecewise constant between change points,
    # so each interval contributes min(max(static need) - D, M)
    sizes_l = sizes.tolist()
    starts: list[int] = []
    dvals: list[int] = []
    n_int = [1] * n_trees
    for k in range(n_trees):
        bk = off_l[k]
        starts.append(bk)
        dvals.append(0)
        log = chg[k]
        if not log:
            continue
        log.sort()
        n = sizes_l[k]
        D = 0
        for s, dd in log:
            D += dd
            if s >= n:  # past the last step — never observed
                continue
            gs = bk + s
            if gs == starts[-1]:
                dvals[-1] = D
            else:
                starts.append(gs)
                dvals.append(D)
                n_int[k] += 1
    iv_starts = np.asarray(starts, dtype=np.int64)
    iv_d = np.asarray(dvals, dtype=np.int64)
    n_int_arr = np.asarray(n_int, dtype=np.int64)
    iv_tree = np.repeat(np.arange(n_trees, dtype=np.int64), n_int_arr)
    iv_max = np.maximum.reduceat(s_need, iv_starts)
    clamped = np.minimum(iv_max - iv_d, M[iv_tree])
    tstarts = np.cumsum(n_int_arr) - n_int_arr
    peak_l = np.maximum.reduceat(clamped, tstarts).tolist()
    return [
        (io_maps[k], io_total[k], peak_l[k]) for k in range(n_trees)
    ]


def forest_simulate_fif(
    forest: ArrayForest,
    schedules: Sequence[Sequence[int]],
    memories=None,
    *,
    vectorize: bool | None = None,
) -> list[tuple[dict[int, int], int, int]]:
    """FiF-simulate one full-tree schedule per member.

    Returns per-tree ``(io, io_volume, peak_memory)`` exactly like the
    flat :func:`~repro.core.kernels.simulate_fif` kernel (and raises
    :class:`~repro.core.simulator.InfeasibleSchedule` where it would).
    ``vectorize=None`` auto-selects between the per-tree loop and the
    event sweep (:func:`_simulate_fif_vector`); both are exact.
    """
    n_trees = forest.n_trees
    if len(schedules) != n_trees:
        raise ValueError(
            f"{len(schedules)} schedules for {n_trees} trees"
        )
    mems = _memory_list(memories, n_trees)
    sizes = forest.sizes().tolist()
    for k, n in enumerate(sizes):
        if len(schedules[k]) != n:
            raise ValueError(
                f"tree {k}: flat FiF kernel needs a full-tree schedule "
                f"(expected {n} nodes, got {len(schedules[k])})"
            )
    if n_trees == 0:
        return []
    if vectorize is None:
        vectorize = (
            n_trees >= _VECTOR_MIN_TREES
            and max(sizes) <= _VECTOR_MAX_FIF_STEPS
        )
    if vectorize:
        return _simulate_fif_vector(forest, schedules, mems)
    off, p, w, wb, _topo, cs, ci = forest._as_lists()
    out = []
    push = out.append
    for k in range(n_trees):
        a = off[k]
        b = off[k + 1]
        push(
            simulate_fif_core(
                b - a,
                w[a:b],
                p[a:b],
                cs[a + k : b + k + 1],
                ci[a - k : b - (k + 1)],
                wb[a:b],
                schedules[k],
                mems[k],
            )
        )
    return out


def forest_traversals(
    forest: ArrayForest, algorithm: str, memories
) -> list[Traversal]:
    """One registry strategy + its FiF I/O function across the forest.

    Mirrors :mod:`repro.experiments.registry` exactly for the strategies
    in :data:`FOREST_STRATEGIES`: the named scheduler produces each
    tree's order, FiF under the tree's memory bound derives the I/O
    function, and the pair is packaged as a dense
    :class:`~repro.core.traversal.Traversal` — byte-identical to
    ``get_algorithm(algorithm)(tree, memory)``.
    """
    mems = _memory_list(memories, forest.n_trees)
    if algorithm == "OptMinMem":
        schedules = [s for s, _peak in forest_opt_min_mem(forest)]
    elif algorithm == "PostOrderMinIO":
        schedules = [s for s, _st, _v in forest_best_postorders(forest, mems)]
    elif algorithm == "PostOrderMinMem":
        schedules = [s for s, _st, _v in forest_best_postorders(forest, None)]
    else:
        raise KeyError(
            f"no forest kernel for {algorithm!r}; available: "
            f"{FOREST_STRATEGIES}"
        )
    sims = forest_simulate_fif(forest, schedules, mems)
    sizes = forest.sizes().tolist()
    return [
        Traversal(
            tuple(schedule),
            tuple(io.get(v, 0) for v in range(n)),
        )
        for schedule, (io, _vol, _peak), n in zip(schedules, sims, sizes)
    ]
