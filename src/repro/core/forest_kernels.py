"""Whole-forest sweeps of the hot algorithms over :class:`ArrayForest`.

Each function runs one kernel across every member of a forest in a
tight loop: the concatenated columns are converted to plain lists once
(cached on the forest), each tree's slice is cut out with C-level list
slicing, and the **same list-based cores** that power the per-tree
array engine (:mod:`repro.core.kernels`) do the actual work.  Per-tree
results are therefore byte-identical to ``kernels.best_postorder`` /
``liu_peak`` / ``liu_schedule`` / ``simulate_fif`` on the member trees —
one implementation, enforced by the forest property test
(``tests/test_forest.py``) on top of the engine cross-validation
harness.

What the batching buys (vs. dispatching the per-tree engine once per
tree): no per-tree ``TaskTree``/``ArrayTree`` construction, no per-tree
numpy fixed costs, no per-call buffer materialisation — only the
irreducible algorithm loops remain.  Truly vectorisable passes run as
single numpy reductions over the whole forest
(:func:`forest_lower_bounds`); the DP kernels keep their exact
tie-breaking semantics, which rules out cross-node vectorisation.

``memories`` arguments accept ``None`` (unbounded), one int for the
whole forest, or one value per tree.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .forest import ArrayForest
from .kernels import (
    best_postorder_core,
    flatten_rope,
    liu_peak_core,
    liu_segments_core,
    simulate_fif_core,
)
from .traversal import Traversal

__all__ = [
    "FOREST_STRATEGIES",
    "forest_lower_bounds",
    "forest_min_peaks",
    "forest_memory_bounds",
    "forest_best_postorders",
    "forest_opt_min_mem",
    "forest_simulate_fif",
    "forest_traversals",
]

#: registry strategies with a whole-forest implementation (the kernel
#: trio; RecExpand-style expansion heuristics stay per-tree).
FOREST_STRATEGIES = ("OptMinMem", "PostOrderMinIO", "PostOrderMinMem")


def _memory_list(memories, n_trees: int) -> list:
    if memories is None or isinstance(memories, (int, np.integer)):
        return [memories] * n_trees
    memories = list(memories)
    if len(memories) != n_trees:
        raise ValueError(
            f"{len(memories)} memory bounds for {n_trees} trees"
        )
    return memories


def forest_lower_bounds(forest: ArrayForest) -> list[int]:
    """``LB = max_i wbar_i`` of every tree — one numpy reduction."""
    if forest.n_trees == 0:
        return []
    off = forest.offsets
    return np.maximum.reduceat(forest._wbar, off[:-1]).tolist()


def forest_min_peaks(forest: ArrayForest) -> list[int]:
    """``Peak_incore`` (Liu's optimum) of every tree."""
    off, _p, w, _wb, topo, cs, ci = forest._as_lists()
    out = []
    push = out.append
    for k in range(forest.n_trees):
        a = off[k]
        b = off[k + 1]
        push(
            liu_peak_core(
                b - a,
                w[a:b],
                cs[a + k : b + k + 1],
                ci[a - k : b - (k + 1)],
                topo[a:b],
            )
        )
    return out


def forest_memory_bounds(forest: ArrayForest) -> list[tuple[int, int]]:
    """``(LB, Peak_incore)`` per tree — the experiment-framing interval."""
    return list(zip(forest_lower_bounds(forest), forest_min_peaks(forest)))


#: vectorised-path guards: below this many trees the batch cannot
#: amortise the fixed numpy costs, and beyond this depth the one-pass-
#:per-level schedule would degenerate on chain-shaped forests.
_VECTOR_MIN_TREES = 4
_VECTOR_MAX_DEPTH = 4096


def forest_best_postorders(
    forest: ArrayForest, memories=None, *, vectorize: bool | None = None
) -> list[tuple[list[int], list[int], list[int]]]:
    """:func:`~repro.core.kernels.best_postorder` across the forest.

    ``memories=None`` is the MinMem variant everywhere; otherwise MinIO
    under the given bound(s).  Returns per-tree ``(schedule, storage,
    vio)`` with node ids local to each tree.

    Two exactly-equivalent implementations back this: the per-tree list
    cores, and a **level-synchronous vectorised engine** that runs
    Liu's DP over all trees at once — one numpy pass per depth level,
    child orderings realised by a single ``lexsort`` whose
    ``(-key, id)`` keys reproduce the scalar tie-break bit for bit.
    ``vectorize=None`` picks automatically (vectorised for batches of
    shallow-enough trees); forcing either value is for tests and
    benchmarks only.
    """
    n_trees = forest.n_trees
    if n_trees == 0:
        return []
    mems = _memory_list(memories, n_trees)
    mixed_none = memories is not None and any(m is None for m in mems)
    if vectorize is None:
        vectorize = (
            not mixed_none
            and n_trees >= _VECTOR_MIN_TREES
            and forest.max_depth() <= _VECTOR_MAX_DEPTH
        )
    elif vectorize and mixed_none:
        raise ValueError(
            "the vectorised engine needs one mode for the whole forest; "
            "mixed per-tree None/int memories run on the loop path"
        )
    if vectorize:
        schedule, storage, vio = _best_postorders_vector(
            forest, None if memories is None else mems
        )
        off_l = forest._offsets.tolist()
        sched_l = schedule.tolist()
        storage_l = storage.tolist()
        vio_l = vio.tolist()
        return [
            (sched_l[a:b], storage_l[a:b], vio_l[a:b])
            for a, b in zip(off_l, off_l[1:])
        ]
    off, _p, w, _wb, topo, cs, ci = forest._as_lists()
    out = []
    push = out.append
    for k in range(n_trees):
        a = off[k]
        b = off[k + 1]
        push(
            best_postorder_core(
                b - a,
                w[a:b],
                cs[a + k : b + k + 1],
                ci[a - k : b - (k + 1)],  # fresh slice: core reorders it
                topo[a:b],
                mems[k],
            )
        )
    return out


def forest_best_postorders_flat(
    forest: ArrayForest,
    memories=None,
    *,
    vectorize: bool | None = None,
    schedules: bool = True,
):
    """:func:`forest_best_postorders` in the forest's native flat form.

    Returns ``(schedule, storage, vio)`` as int64 numpy columns over
    the concatenated node space (slice with ``forest.offsets``) —
    element-wise equal to the per-tree lists, without materialising one
    Python list per tree.  ``schedules=False`` skips the emission sweep
    entirely (``schedule`` comes back ``None``): the cheapest way to
    batch-compute peaks (``storage``) and I/O volumes (``vio``).
    """
    n_trees = forest.n_trees
    mems = _memory_list(memories, n_trees)
    mixed_none = memories is not None and any(m is None for m in mems)
    if vectorize is None:
        vectorize = (
            not mixed_none
            and n_trees >= _VECTOR_MIN_TREES
            and forest.max_depth() <= _VECTOR_MAX_DEPTH
        )
    if n_trees and vectorize and not mixed_none:
        return _best_postorders_vector(
            forest, None if memories is None else mems, schedules=schedules
        )
    per_tree = forest_best_postorders(forest, memories, vectorize=False)
    schedule = np.array(
        [v for s, _st, _v in per_tree for v in s], dtype=np.int64
    )
    storage = np.array(
        [v for _s, st, _v in per_tree for v in st], dtype=np.int64
    )
    vio = np.array(
        [v for _s, _st, vi in per_tree for v in vi], dtype=np.int64
    )
    return (schedule if schedules else None), storage, vio


def _order_level(ch, key, starts, grp, counts, max_arity, multi):
    """Sort a level's child groups by ``(-key, id)``, exactly.

    ``max_arity == 1`` needs no work; all-binary levels resolve with one
    vectorised conditional swap (the scalar core's two-child rule, which
    equals the full sort); anything wider sorts only the edges of
    multi-child groups (``multi``, precomputed on the level cache —
    singleton groups are already ordered) with one stable ``lexsort``.
    The ascending-id tie-break costs nothing: ``ch`` arrives in CSR
    order (ascending ids within each group) and the stable sort keeps
    that order on equal keys — bit for bit the scalar core's
    ``(-key, id)`` rule.
    """
    if max_arity == 1:
        return ch
    if max_arity == 2:
        kc = key[ch]
        firsts = starts[counts == 2]
        swap = firsts[kc[firsts + 1] > kc[firsts]]
        if swap.size:
            ch = ch.copy()
            ch[swap], ch[swap + 1] = ch[swap + 1], ch[swap]
        return ch
    sub = ch[multi]
    order = np.lexsort((-key[sub], grp[multi]))
    ch = ch.copy()
    ch[multi] = sub[order]
    return ch


def _best_postorders_vector(forest: ArrayForest, mems, *, schedules=True):
    """The level-synchronous engine behind :func:`forest_best_postorders`.

    Processes depth levels bottom-up: within a level, every node's
    children are ordered by :func:`_order_level` and the ``S_i``/``A_i``
    prefix recursions become segmented cumulative sums plus ``reduceat``
    maxima — integer-exact, same tie-breaking as the scalar core.  The
    schedule then falls out of one *global* pass: a node's block start
    is the path-sum of its earlier-siblings' subtree sizes, accumulated
    root-to-node by pointer doubling — the same contiguous-block
    emission rule the scalar core applies one node at a time.
    """
    off = forest._offsets
    total = forest.total_nodes
    gcs, gci, gpar, base, tree_of = forest._globals()
    levels = forest._levels()
    w = forest._weights
    minmem = mems is None
    if not minmem:
        M = np.asarray(mems, dtype=np.int64)[tree_of]

    storage = np.zeros(total, dtype=np.int64)
    key = np.zeros(total, dtype=np.int64)
    vio = np.zeros(total, dtype=np.int64)
    if schedules:
        ordered = np.array(gci)  # reordered level by level, like the core

    cnt_all = gcs[1:] - gcs[:total]
    leaves = cnt_all == 0
    storage[leaves] = w[leaves]
    if not minmem:
        key[leaves] = np.minimum(w[leaves], M[leaves]) - w[leaves]

    for level in reversed(levels):
        if level is None:
            continue
        idx, eidx, starts, grp, counts, max_arity, multi = level
        chs = _order_level(gci[eidx], key, starts, grp, counts, max_arity, multi)
        if schedules:
            ordered[eidx] = chs

        sc = storage[chs]
        if max_arity == 1:
            peak = np.maximum(w[idx], sc)
            storage[idx] = peak
            if minmem:
                key[idx] = peak - w[idx]
            else:
                m_idx = M[idx]
                vio[idx] = vio[chs]  # min(M, S_c) <= M: no new I/O at idx
                key[idx] = np.minimum(peak, m_idx) - w[idx]
            continue
        wc = w[chs]
        excl = np.cumsum(wc) - wc
        prefix = excl - np.repeat(excl[starts], counts)
        peak = np.maximum(
            w[idx], np.maximum.reduceat(sc + prefix, starts)
        )
        storage[idx] = peak
        if minmem:
            key[idx] = peak - w[idx]
        else:
            m_idx = M[idx]
            worst = np.maximum.reduceat(
                np.minimum(sc, np.repeat(m_idx, counts)) + prefix, starts
            )
            over = np.maximum(worst - m_idx, 0)
            vio[idx] = over + np.add.reduceat(vio[chs], starts)
            key[idx] = np.minimum(peak, m_idx) - w[idx]

    if not schedules:
        return None, storage, vio

    # Emission, globally: with subtree blocks contiguous and every node
    # closing its own block, a node's block *start* is the sum of its
    # earlier (sorted) siblings' sizes accumulated along the root path.
    # Per-edge sibling prefixes are one segmented cumsum over the sorted
    # CSR; the root-path accumulation is pointer doubling — log₂ rounds,
    # no per-level work at all.
    size = forest._subtree_sizes()
    internal = np.flatnonzero(~leaves)
    szs = size[ordered]
    excl = np.cumsum(szs) - szs
    contrib = np.zeros(total, dtype=np.int64)
    contrib[ordered] = excl - np.repeat(excl[gcs[internal]], cnt_all[internal])
    ids = np.arange(total, dtype=np.int64)
    jump = np.where(gpar < 0, ids, gpar)
    block_start = contrib
    for _ in range(max(1, len(levels) - 1).bit_length()):
        block_start = block_start + block_start[jump]
        jump = jump[jump]

    schedule = np.empty(total, dtype=np.int64)
    schedule[base + block_start + size - 1] = ids - base
    return schedule, storage, vio


def forest_opt_min_mem(
    forest: ArrayForest,
) -> list[tuple[list[int], int]]:
    """``OPTMINMEM`` (schedule, peak) of every tree (Liu's segment solver)."""
    off, _p, w, _wb, topo, cs, ci = forest._as_lists()
    out = []
    push = out.append
    for k in range(forest.n_trees):
        a = off[k]
        b = off[k + 1]
        segs = liu_segments_core(
            b - a,
            w[a:b],
            cs[a + k : b + k + 1],
            ci[a - k : b - (k + 1)],
            topo[a:b],
        )
        schedule: list[int] = []
        for _hill, _valley, nodes in segs:
            flatten_rope(nodes, schedule)
        push((schedule, segs[0][0]))
    return out


def forest_simulate_fif(
    forest: ArrayForest,
    schedules: Sequence[Sequence[int]],
    memories=None,
) -> list[tuple[dict[int, int], int, int]]:
    """FiF-simulate one full-tree schedule per member.

    Returns per-tree ``(io, io_volume, peak_memory)`` exactly like the
    flat :func:`~repro.core.kernels.simulate_fif` kernel (and raises
    :class:`~repro.core.simulator.InfeasibleSchedule` where it would).
    """
    if len(schedules) != forest.n_trees:
        raise ValueError(
            f"{len(schedules)} schedules for {forest.n_trees} trees"
        )
    mems = _memory_list(memories, forest.n_trees)
    off, p, w, wb, _topo, cs, ci = forest._as_lists()
    out = []
    push = out.append
    for k in range(forest.n_trees):
        a = off[k]
        b = off[k + 1]
        n = b - a
        if len(schedules[k]) != n:
            raise ValueError("flat FiF kernel needs a full-tree schedule")
        push(
            simulate_fif_core(
                n,
                w[a:b],
                p[a:b],
                cs[a + k : b + k + 1],
                ci[a - k : b - (k + 1)],
                wb[a:b],
                schedules[k],
                mems[k],
            )
        )
    return out


def forest_traversals(
    forest: ArrayForest, algorithm: str, memories
) -> list[Traversal]:
    """One registry strategy + its FiF I/O function across the forest.

    Mirrors :mod:`repro.experiments.registry` exactly for the strategies
    in :data:`FOREST_STRATEGIES`: the named scheduler produces each
    tree's order, FiF under the tree's memory bound derives the I/O
    function, and the pair is packaged as a dense
    :class:`~repro.core.traversal.Traversal` — byte-identical to
    ``get_algorithm(algorithm)(tree, memory)``.
    """
    mems = _memory_list(memories, forest.n_trees)
    if algorithm == "OptMinMem":
        schedules = [s for s, _peak in forest_opt_min_mem(forest)]
    elif algorithm == "PostOrderMinIO":
        schedules = [s for s, _st, _v in forest_best_postorders(forest, mems)]
    elif algorithm == "PostOrderMinMem":
        schedules = [s for s, _st, _v in forest_best_postorders(forest, None)]
    else:
        raise KeyError(
            f"no forest kernel for {algorithm!r}; available: "
            f"{FOREST_STRATEGIES}"
        )
    sims = forest_simulate_fif(forest, schedules, mems)
    sizes = forest.sizes().tolist()
    return [
        Traversal(
            tuple(schedule),
            tuple(io.get(v, 0) for v in range(n)),
        )
        for schedule, (io, _vol, _peak), n in zip(schedules, sims, sizes)
    ]
