"""Model substrate: trees, traversals, the FiF simulator and node expansion.

Two interchangeable kernel engines back the core computations: the
object engine (per-node Python structures) and the flat-array engine
(:class:`ArrayTree` + :mod:`repro.core.kernels`); see
:mod:`repro.core.engine` for how one is selected.
"""

from .arraytree import ArrayTree, as_array_tree
from .forest import ArrayForest
from .engine import (
    ENGINES,
    default_engine,
    engine_scope,
    resolve_engine,
    set_default_engine,
)
from .execution import ExecutionReport, MachineModel, execute_traversal
from .expansion import ExpansionTree, Role, expand_tree
from .simulator import (
    InfeasibleSchedule,
    SimulationResult,
    StepTrace,
    fif_io_volume,
    fif_traversal,
    schedule_peak_memory,
    simulate_fif,
)
from .traversal import InvalidTraversal, Traversal, is_postorder, validate
from .tree import TaskTree, TreeError, balanced_binary_tree, chain_tree, star_tree

__all__ = [
    "TaskTree",
    "TreeError",
    "ArrayTree",
    "as_array_tree",
    "ArrayForest",
    "ENGINES",
    "default_engine",
    "engine_scope",
    "resolve_engine",
    "set_default_engine",
    "chain_tree",
    "star_tree",
    "balanced_binary_tree",
    "Traversal",
    "InvalidTraversal",
    "validate",
    "is_postorder",
    "simulate_fif",
    "fif_io_volume",
    "fif_traversal",
    "schedule_peak_memory",
    "SimulationResult",
    "StepTrace",
    "InfeasibleSchedule",
    "ExpansionTree",
    "Role",
    "expand_tree",
    "MachineModel",
    "ExecutionReport",
    "execute_traversal",
]
