"""Out-of-core execution simulator with Furthest-in-the-Future eviction.

Theorem 1 of the paper: *given* a schedule ``sigma``, the I/O function
``tau`` obtained by evicting — whenever memory overflows — from the active
output whose parent executes furthest in the future is optimal for
``sigma``.  This is the offline analogue of Belady's MIN cache rule.

The simulator below implements exactly that policy.  It is the measuring
instrument of the whole reproduction: every scheduling algorithm produces
a schedule, and this module turns it into the minimal I/O volume that the
schedule can achieve, together with an optional step-by-step trace.

The implementation is generic over the small "tree protocol" (``weights``,
``parents``, ``children`` indexables) so it can simulate

* full :class:`~repro.core.tree.TaskTree` schedules,
* *subtree* schedules (the root of the subtree has its parent outside the
  schedule — its output simply stays resident, which is harmless because
  the subtree root is always scheduled last), and
* the mutable expansion trees used by the RecExpand heuristics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping, Protocol, Sequence

from . import kernels
from .engine import array_tree_or_none
from .traversal import Traversal

__all__ = [
    "InfeasibleSchedule",
    "SimulationResult",
    "StepTrace",
    "simulate_fif",
    "fif_io_volume",
    "fif_traversal",
    "schedule_peak_memory",
]


class TreeLike(Protocol):
    """The minimal structural interface the simulator needs."""

    weights: Sequence[int]
    parents: Sequence[int]
    children: Sequence[Sequence[int]]


class InfeasibleSchedule(ValueError):
    """Raised when a step needs more memory than ``M`` even with everything evicted."""


@dataclass(frozen=True)
class StepTrace:
    """What happened while executing one task."""

    node: int
    need_before: int  # memory needed before any eviction at this step
    resident_after: int  # total memory in use right after the execution
    evictions: tuple[tuple[int, int], ...]  # (victim node, evicted amount)
    reads: int  # volume read back for this step's inputs


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a FiF simulation.

    ``io`` maps node → :math:`\\tau(\\text{node})` for nodes that were
    evicted (missing nodes have zero I/O).
    """

    io: Mapping[int, int]
    io_volume: int
    peak_memory: int
    steps: tuple[StepTrace, ...] = field(default=())

    def io_list(self, n: int) -> tuple[int, ...]:
        """The I/O function as a dense tuple over ``n`` nodes."""
        return tuple(self.io.get(v, 0) for v in range(n))


def simulate_fif(
    tree: TreeLike,
    schedule: Sequence[int],
    memory: int | None,
    *,
    trace: bool = False,
    engine: str | None = None,
) -> SimulationResult:
    """Run ``schedule`` under memory bound ``memory`` with FiF evictions.

    Parameters
    ----------
    tree:
        anything satisfying the tree protocol.
    schedule:
        the node ids to execute, in order.  Must be topological over the
        nodes it contains; every non-final node's parent must appear later
        in the schedule or not at all.
    memory:
        the memory bound ``M``; ``None`` simulates an unbounded memory
        (no evictions — useful to measure the peak of a schedule).
    trace:
        record a :class:`StepTrace` per step (costs memory; off by default).
    engine:
        kernel-engine override (see :mod:`repro.core.engine`).  Full-tree
        schedules on immutable trees run on the flat-array kernel when it
        resolves to ``array``; traced runs, subtree schedules and mutable
        expansion trees always use the object path.  Results are
        identical either way.

    Returns
    -------
    SimulationResult
        with the optimal-for-``schedule`` I/O function, its volume, and the
        peak memory footprint actually reached.

    Raises
    ------
    InfeasibleSchedule
        if some step needs more than ``memory`` with every other active
        output fully evicted, i.e. ``wbar > M``.
    """
    if not trace and len(schedule) == len(tree.weights):
        at = array_tree_or_none(tree, engine)
        if at is not None:
            io, io_total, peak = kernels.simulate_fif(at, schedule, memory)
            return SimulationResult(io=io, io_volume=io_total, peak_memory=peak)

    weights = tree.weights
    parents = tree.parents
    children = tree.children

    pos: dict[int, int] = {v: t for t, v in enumerate(schedule)}
    horizon = len(schedule)

    resident: dict[int, int] = {}  # active node -> resident share (w_k - tau_k)
    io: dict[int, int] = {}
    # Eviction candidates ordered by decreasing parent position (FiF):
    # a max-heap over sigma(parent(k)), lazily cleaned.
    heap: list[tuple[int, int]] = []
    resident_total = 0
    io_total = 0
    peak = 0
    steps: list[StepTrace] = []

    for t, v in enumerate(schedule):
        inputs = 0
        reads = 0
        for c in children[v]:
            inputs += weights[c]
            reads += io.get(c, 0)
            share = resident.pop(c, None)
            if share is not None:
                resident_total -= share
        wbar_v = max(weights[v], inputs)

        need = wbar_v + resident_total
        evictions: list[tuple[int, int]] = []
        if memory is not None and need > memory:
            if wbar_v > memory:
                raise InfeasibleSchedule(
                    f"node {v} alone needs wbar={wbar_v} > M={memory}"
                )
            excess = need - memory
            while excess > 0:
                # Find the valid top of the lazy heap.
                while heap:
                    _, k = heap[0]
                    if resident.get(k, 0) > 0:
                        break
                    heapq.heappop(heap)
                if not heap:
                    raise InfeasibleSchedule(
                        f"step {t} (node {v}): nothing left to evict "
                        f"but still {excess} over M={memory}"
                    )
                k = heap[0][1]
                take = min(resident[k], excess)
                resident[k] -= take
                io[k] = io.get(k, 0) + take
                if resident[k] == 0:
                    heapq.heappop(heap)
                resident_total -= take
                io_total += take
                excess -= take
                evictions.append((k, take))
            need = memory
        if need > peak:
            peak = need

        if trace:
            steps.append(
                StepTrace(
                    node=v,
                    need_before=wbar_v + resident_total + sum(a for _, a in evictions),
                    resident_after=weights[v] + resident_total,
                    evictions=tuple(evictions),
                    reads=reads,
                )
            )

        # The output of v becomes active (until its parent runs).  A parent
        # outside the schedule means "stays forever" — sorted last, which is
        # also the correct FiF priority.
        resident[v] = weights[v]
        resident_total += weights[v]
        parent_pos = pos.get(parents[v], horizon)
        heapq.heappush(heap, (-parent_pos, v))

    return SimulationResult(
        io=io, io_volume=io_total, peak_memory=peak, steps=tuple(steps)
    )


def fif_io_volume(tree: TreeLike, schedule: Sequence[int], memory: int) -> int:
    """Shortcut: the minimal I/O volume of ``schedule`` under ``memory``."""
    return simulate_fif(tree, schedule, memory).io_volume


def fif_traversal(tree, schedule: Sequence[int], memory: int) -> Traversal:
    """Package a full-tree schedule and its FiF I/O function as a traversal."""
    result = simulate_fif(tree, schedule, memory)
    n = len(tree.weights)
    return Traversal(tuple(schedule), result.io_list(n))


def schedule_peak_memory(tree: TreeLike, schedule: Sequence[int]) -> int:
    """Peak memory of ``schedule`` with no memory bound (MinMem objective)."""
    return simulate_fif(tree, schedule, None).peak_memory
