"""Flat-array task trees: the million-node representation.

:class:`~repro.core.tree.TaskTree` stores one Python tuple per node
(children lists, topo order, ...), which is comfortable for the paper's
3 000-node SYNTH trees but dominates time and memory once instances reach
the 10^5–10^6 nodes of real assembly trees (Liu's pebbling experiments,
Marchal–Sinnen–Vivien and follow-ups all assume linear-time traversals at
that scale).  :class:`ArrayTree` is the flat alternative:

* ``parents`` / ``weights`` / ``wbar`` / ``topo`` are ``array('q')``
  (64-bit signed) buffers — 8 bytes per node, no per-node objects;
* children are stored in **CSR form**: ``child_index`` concatenates every
  node's children (ascending ids, which is also the construction order
  of the equivalent ``TaskTree``), ``child_start[v] : child_start[v+1]``
  delimits node *v*'s slice;
* construction is numpy-assisted (bincount / stable argsort / vectorised
  validation) — no Python loop runs per *edge*, only one cheap loop per
  node for the canonical BFS order.

The class satisfies the same "tree protocol" (``n``, ``root``,
``parents``, ``weights``, ``children``, ``wbar``) as :class:`TaskTree`,
so every object-engine algorithm also runs on it unchanged; the
iterative kernels in :mod:`repro.core.kernels` additionally exploit the
flat layout directly.  ``TaskTree ↔ ArrayTree`` conversion is exact in
both directions, and invalid descriptions are rejected with the same
:class:`~repro.core.tree.TreeError` vocabulary as ``TaskTree``.

One deliberate restriction: all quantities must fit comfortably in
int64 (node weights *and* their tree-wide sums).  Inputs outside that
range raise :class:`TreeError` — the engine dispatch in
:mod:`repro.core.engine` treats that as "fall back to the object
engine", which supports arbitrary Python integers.
"""

from __future__ import annotations

from array import array
from itertools import accumulate, chain
from typing import Iterator, Sequence

import numpy as np

from .tree import TaskTree, TreeError

__all__ = ["ArrayTree", "as_array_tree"]

#: refuse weight totals above this (int64 headroom for sums of sums).
_MAX_TOTAL_WEIGHT = 2**62


class _CSRChildren:
    """Indexable view of the children lists backed by the CSR arrays.

    ``children[v]`` returns node *v*'s children as an ``array('q')``
    slice — iterable, indexable and len()-able, which is all the tree
    protocol demands.
    """

    __slots__ = ("_start", "_index", "_n")

    def __init__(self, start: array, index: array, n: int):
        self._start = start
        self._index = index
        self._n = n

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, v: int) -> array:
        if v < 0:
            v += self._n
        if not 0 <= v < self._n:
            raise IndexError(f"node {v} out of range")
        return self._index[self._start[v] : self._start[v + 1]]

    def __iter__(self) -> Iterator[array]:
        index, start = self._index, self._start
        for v in range(self._n):
            yield index[start[v] : start[v + 1]]


def _int64_column(values: Sequence[int], what: str, *, strict: bool) -> np.ndarray:
    """Validate a parents/weights column into an int64 numpy array.

    ``strict=True`` mirrors ``TaskTree``'s weight rules exactly: booleans
    and non-integral values are rejected, integral floats are accepted.
    ``strict=False`` mirrors its parent handling (plain ``int()``
    coercion, i.e. floats truncate and booleans count as 0/1).  Values
    outside int64 raise ``TreeError`` (the object engine handles those).
    """
    if isinstance(values, np.ndarray):
        arr = values
        if strict and arr.dtype == np.bool_:
            raise TreeError(
                f"{what} of node 0 is not an integer: {bool(arr.flat[0])!r}"
            )
    else:
        if strict and not isinstance(values, array):
            # A bool is a Python int, so numpy would silently coerce it;
            # TaskTree rejects bool weights — scan before converting.
            for i, v in enumerate(values):
                if type(v) is bool:
                    raise TreeError(f"{what} of node {i} is not an integer: {v!r}")
        try:
            arr = np.asarray(values)
        except (TypeError, ValueError, OverflowError) as exc:
            raise TreeError(f"invalid {what} column: {exc}") from None
    if arr.ndim != 1:
        raise TreeError(f"{what} must be a flat sequence")
    if arr.dtype == object or not (
        np.issubdtype(arr.dtype, np.integer)
        or np.issubdtype(arr.dtype, np.floating)
        or arr.dtype == np.bool_
    ):
        # Mixed / big-int / non-numeric content: fall back to exact
        # per-element validation so error messages match TaskTree.
        out = np.empty(len(arr), dtype=np.int64)
        for i, v in enumerate(arr.tolist() if isinstance(arr, np.ndarray) else arr):
            if strict and (isinstance(v, bool) or int(v) != v):
                raise TreeError(f"{what} of node {i} is not an integer: {v!r}")
            try:
                v = int(v)
            except (TypeError, ValueError) as exc:
                raise TreeError(f"{what} of node {i}: {exc}") from None
            if not -(2**63) <= v < 2**63:
                raise TreeError(f"{what} of node {i} does not fit int64: {v!r}")
            out[i] = v
        return out
    if np.issubdtype(arr.dtype, np.floating):
        if strict:
            bad = np.flatnonzero(arr != np.floor(arr))
            if len(bad):
                i = int(bad[0])
                raise TreeError(f"{what} of node {i} is not an integer: {arr[i]!r}")
        if np.any(~np.isfinite(arr)) or np.any(np.abs(arr) >= 2.0**63):
            raise TreeError(f"{what} column does not fit int64")
        # astype truncates toward zero, matching int() for the lenient path
        # (and being exact for the strict one, which proved integrality).
        return arr.astype(np.int64)
    return arr.astype(np.int64, copy=False)


def _from_numpy(arr: np.ndarray) -> array:
    out = array("q")
    out.frombytes(np.ascontiguousarray(arr, dtype=np.int64).tobytes())
    return out


class ArrayTree:
    """An immutable rooted in-tree stored as flat 64-bit arrays.

    Same model and validation rules as :class:`TaskTree` (single root at
    parent ``-1``, non-negative integer weights, connected and acyclic),
    but every derived structure is a flat buffer.  See the module
    docstring for the layout.
    """

    __slots__ = (
        "_parents",
        "_weights",
        "_child_start",
        "_child_index",
        "_wbar",
        "_topo",
        "_root",
        "_n",
        "_children_view",
        "_total_weight",
    )

    def __init__(self, parents: Sequence[int], weights: Sequence[int]):
        n = len(parents)
        if len(weights) != n:
            raise TreeError(
                f"parents and weights disagree on size: {n} != {len(weights)}"
            )
        if n == 0:
            raise TreeError("a task tree needs at least one node")

        p = _int64_column(parents, "parent", strict=False)
        w = _int64_column(weights, "weight", strict=True)

        neg = np.flatnonzero(w < 0)
        if len(neg):
            i = int(neg[0])
            raise TreeError(f"weight of node {i} is negative: {int(w[i])}")
        # Budget check on a float estimate first (overflow-safe), then the
        # exact int64 sum — which the passed check guarantees is exact.
        estimate = float(np.sum(w, dtype=np.float64))
        if estimate > _MAX_TOTAL_WEIGHT:
            raise TreeError(
                f"total weight ~{estimate:.3g} exceeds the array engine's int64 "
                f"budget ({_MAX_TOTAL_WEIGHT}); use TaskTree (object engine)"
            )
        total = int(np.sum(w))

        roots = np.flatnonzero(p == -1)
        if len(roots) == 0:
            raise TreeError("no root (node with parent -1) found")
        if len(roots) > 1:
            raise TreeError(f"two roots: {int(roots[0])} and {int(roots[1])}")
        bad = np.flatnonzero((p < -1) | (p >= n))
        if len(bad):
            i = int(bad[0])
            raise TreeError(f"node {i} has out-of-range parent {int(p[i])}")
        root = int(roots[0])

        self._n = n
        self._root = root
        self._parents = _from_numpy(p)
        self._weights = _from_numpy(w)

        # Children in CSR form.  np.flatnonzero is ascending, and a stable
        # argsort groups by parent while preserving that order — exactly
        # the construction order TaskTree uses for its children tuples.
        nonroot = np.flatnonzero(p >= 0)
        par_of = p[nonroot]
        counts = np.bincount(par_of, minlength=n)
        child_index = nonroot[np.argsort(par_of, kind="stable")]
        child_start = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=child_start[1:])
        self._child_start = _from_numpy(child_start)
        self._child_index = _from_numpy(child_index)
        self._children_view = _CSRChildren(self._child_start, self._child_index, n)

        # Canonical BFS order (identical to TaskTree's), which doubles as
        # the connectivity / acyclicity check.  The only per-node Python
        # loop of the construction; every step is a C-level slice extend.
        topo = [root]
        start = self._child_start
        index = self._child_index
        for v in topo:
            s = start[v]
            e = start[v + 1]
            if s != e:
                topo.extend(index[s:e])
        if len(topo) != n:
            raise TreeError("graph is not connected / contains a cycle")
        self._topo = array("q", topo)

        # wbar = max(w, sum of children weights) — exact int64 scatter-add
        # (np.bincount would go through float64 and lose precision).
        inputs = np.zeros(n, dtype=np.int64)
        np.add.at(inputs, par_of, w[nonroot])
        self._wbar = _from_numpy(np.maximum(w, inputs))
        self._total_weight = total

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_task_tree(cls, tree: TaskTree) -> "ArrayTree":
        """Exact conversion; reuses the TaskTree's cached derived data."""
        self = cls.__new__(cls)
        n = tree.n
        self._n = n
        self._root = tree.root
        self._parents = array("q", tree.parents)
        try:
            self._weights = array("q", tree.weights)
            self._wbar = array("q", tree.wbar)
        except OverflowError:
            raise TreeError(
                "weights exceed the array engine's int64 range; "
                "use TaskTree (object engine)"
            ) from None
        if tree.total_weight() > _MAX_TOTAL_WEIGHT:
            raise TreeError(
                f"total weight {tree.total_weight()} exceeds the array "
                f"engine's int64 budget ({_MAX_TOTAL_WEIGHT})"
            )
        children = tree.children
        self._child_start = array(
            "q", accumulate(chain((0,), map(len, children)))
        )
        self._child_index = array("q", chain.from_iterable(children))
        self._children_view = _CSRChildren(self._child_start, self._child_index, n)
        self._topo = array("q", tree.topological_order())
        self._total_weight = tree.total_weight()
        return self

    def to_task_tree(self) -> TaskTree:
        """Exact inverse of :meth:`from_task_tree` (re-validates)."""
        return TaskTree(self._parents.tolist(), self._weights.tolist())

    def to_dict(self) -> dict[str, list[int]]:
        """Plain-JSON form, interchangeable with :meth:`TaskTree.to_dict`."""
        return {"parents": self._parents.tolist(), "weights": self._weights.tolist()}

    @classmethod
    def from_dict(cls, data) -> "ArrayTree":
        return cls(data["parents"], data["weights"])

    # ------------------------------------------------------------------
    # the tree protocol
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    @property
    def root(self) -> int:
        return self._root

    @property
    def parents(self) -> array:
        return self._parents

    @property
    def weights(self) -> array:
        return self._weights

    @property
    def children(self) -> _CSRChildren:
        return self._children_view

    @property
    def wbar(self) -> array:
        return self._wbar

    def parent(self, v: int) -> int:
        return self._parents[v]

    def weight(self, v: int) -> int:
        return self._weights[v]

    def arity(self, v: int) -> int:
        return self._child_start[v + 1] - self._child_start[v]

    # ------------------------------------------------------------------
    # traversal helpers
    # ------------------------------------------------------------------
    def topological_order(self) -> array:
        """The canonical root-first BFS order (parents before children)."""
        return self._topo

    def bottom_up(self):
        """Iterate children before parents."""
        return reversed(self._topo)

    def leaves(self) -> list[int]:
        start = self._child_start
        return [v for v in range(self._n) if start[v] == start[v + 1]]

    def depth(self) -> int:
        """Number of edges on the longest root-to-leaf path."""
        depth = [0] * self._n
        parents = self._parents
        best = 0
        for v in self._topo:
            p = parents[v]
            if p != -1:
                d = depth[p] + 1
                depth[v] = d
                if d > best:
                    best = d
        return best

    def postorder(self, child_order=None) -> list[int]:
        """A postorder listing (same contract as :meth:`TaskTree.postorder`)."""
        start, index = self._child_start, self._child_index
        if child_order is None:
            child_order = lambda v: index[start[v] : start[v + 1]]
        out: list[int] = []
        node_stack = [self._root]
        iter_stack = [0]
        kid_stack = [child_order(self._root)]
        while node_stack:
            i = iter_stack[-1]
            kids = kid_stack[-1]
            if i < len(kids):
                iter_stack[-1] = i + 1
                c = kids[i]
                node_stack.append(c)
                iter_stack.append(0)
                kid_stack.append(child_order(c))
            else:
                out.append(node_stack.pop())
                iter_stack.pop()
                kid_stack.pop()
        return out

    # ------------------------------------------------------------------
    # model-level quantities
    # ------------------------------------------------------------------
    def min_feasible_memory(self) -> int:
        return max(self._wbar)

    def total_weight(self) -> int:
        return self._total_weight

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ArrayTree):
            return (
                self._parents == other._parents and self._weights == other._weights
            )
        if isinstance(other, TaskTree):
            return (
                tuple(self._parents) == other.parents
                and tuple(self._weights) == other.weights
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((tuple(self._parents), tuple(self._weights)))

    def __repr__(self) -> str:
        return (
            f"ArrayTree(n={self._n}, root={self._root}, "
            f"total_weight={self._total_weight})"
        )


def as_array_tree(tree) -> ArrayTree:
    """Coerce a protocol-compatible tree to :class:`ArrayTree`.

    ``ArrayTree`` passes through; ``TaskTree`` converts exactly; anything
    else (e.g. a mutable expansion tree) raises ``TypeError`` — mutable
    trees must stay on the object engine.
    """
    if isinstance(tree, ArrayTree):
        return tree
    if isinstance(tree, TaskTree):
        return ArrayTree.from_task_tree(tree)
    raise TypeError(f"cannot convert {type(tree).__name__} to ArrayTree")
