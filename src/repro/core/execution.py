"""Timed out-of-core execution: from I/O volumes to wall-clock estimates.

The paper minimises the I/O *volume* because transfers dominate run time
("several orders of magnitude larger than the cost of accessing the main
memory", Section 1).  This module closes the loop: it executes a
traversal against a simple machine model and reports where the time goes,
so the benefit of a better schedule can be stated in seconds, not units.

Machine model
-------------
* one compute unit; task ``i`` takes ``compute(i)`` seconds (default: a
  multifrontal-flavoured cost ``c · wbar_i^{3/2}``, the dense-kernel cost
  of a front whose contribution block has ``wbar_i`` entries);
* one disk with ``bandwidth`` units/second and a per-operation
  ``latency``; writes happen right after the producing task, reads right
  before the consuming task (the traversal's semantics);
* two disk disciplines:

  - ``"blocking"``   — every transfer stalls the compute unit;
  - ``"overlapped"`` — writes are asynchronous (queued on the disk and
    drained concurrently with compute), reads still block until both the
    queue and the read complete.  This is the classic double-buffering
    upper/lower pair: blocking is the pessimistic bound, overlapped the
    optimistic one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from .traversal import Traversal
from .tree import TaskTree

__all__ = ["MachineModel", "ExecutionEvent", "ExecutionReport", "execute_traversal"]


@dataclass(frozen=True)
class MachineModel:
    """Cost parameters for :func:`execute_traversal`."""

    #: disk throughput, memory units per second
    bandwidth: float = 100.0
    #: fixed cost per transfer operation, seconds
    latency: float = 0.001
    #: per-task compute time, seconds; default ~ dense-front kernel cost
    compute: Callable[[int, TaskTree], float] = field(
        default=lambda v, tree: 1e-4 * tree.wbar[v] ** 1.5
    )
    #: "blocking" or "overlapped"
    discipline: str = "blocking"

    def transfer_time(self, volume: int) -> float:
        if volume <= 0:
            return 0.0
        return volume / self.bandwidth + self.latency


@dataclass(frozen=True)
class ExecutionEvent:
    """One task execution on the timeline."""

    node: int
    start: float
    end: float
    read_wait: float  # time spent waiting for input read-back
    write_volume: int


@dataclass(frozen=True)
class ExecutionReport:
    """Where the time went."""

    makespan: float
    compute_time: float
    read_time: float
    write_time: float
    stall_time: float  # time the compute unit sat idle on I/O
    io_volume: int
    events: tuple[ExecutionEvent, ...]

    @property
    def compute_utilisation(self) -> float:
        return self.compute_time / self.makespan if self.makespan else 1.0


def execute_traversal(
    tree: TaskTree, traversal: Traversal, machine: MachineModel | None = None
) -> ExecutionReport:
    """Replay a traversal on the machine model and time it.

    The traversal is taken at face value (validate it separately); the
    engine only turns its schedule and I/O function into a timeline.
    """
    machine = machine or MachineModel()
    if machine.discipline not in ("blocking", "overlapped"):
        raise ValueError(f"unknown disk discipline {machine.discipline!r}")
    overlapped = machine.discipline == "overlapped"

    now = 0.0
    disk_free_at = 0.0  # when the (single) disk finishes its queued work
    compute_total = 0.0
    read_total = 0.0
    write_total = 0.0
    stall_total = 0.0
    events: list[ExecutionEvent] = []

    for v in traversal.schedule:
        # 1. Read back any evicted inputs (blocking in both disciplines).
        read_volume = sum(traversal.io[c] for c in tree.children[v])
        read_wait = 0.0
        if read_volume:
            read_time = machine.transfer_time(read_volume)
            start_read = max(now, disk_free_at) if overlapped else now
            end_read = start_read + read_time
            read_wait = end_read - now
            stall_total += read_wait
            read_total += read_time
            now = end_read
            disk_free_at = end_read

        # 2. Compute the task.
        duration = machine.compute(v, tree)
        start = now
        now += duration
        compute_total += duration

        # 3. Write out its share, if any.
        write_volume = traversal.io[v]
        if write_volume:
            write_time = machine.transfer_time(write_volume)
            write_total += write_time
            if overlapped:
                # The disk drains the write while compute continues.
                disk_free_at = max(disk_free_at, now) + write_time
            else:
                stall_total += write_time
                now += write_time
                disk_free_at = now

        events.append(
            ExecutionEvent(
                node=v,
                start=start,
                end=now,
                read_wait=read_wait,
                write_volume=write_volume,
            )
        )

    makespan = max(now, disk_free_at) if overlapped else now
    return ExecutionReport(
        makespan=makespan,
        compute_time=compute_total,
        read_time=read_total,
        write_time=write_total,
        stall_time=stall_total,
        io_volume=traversal.io_volume,
        events=tuple(events),
    )
