"""Many-tree batches as one structure of arrays: :class:`ArrayForest`.

The paper's experiments and the service's traffic are dominated by
*many small-to-medium trees*, not one giant tree.  Solving them one
:class:`~repro.core.arraytree.ArrayTree` at a time pays a fixed cost per
tree — a dozen numpy calls for construction and validation, a Python
object per tree, a pickle of two element lists per process hop.  At 64
to 512 nodes per tree that overhead rivals the actual solve.

``ArrayForest`` amortises all of it across a whole batch:

* ``offsets`` (length ``n_trees + 1``) delimits each tree's node block,
  CSR-style; all node columns are **concatenated int64 buffers** with
  node ids *local to their tree* (each tree's parent column has its own
  ``-1`` root), so a tree's slice is exactly the buffer the per-tree
  kernels consume;
* construction from raw ``(offsets, parents, weights)`` columns is a
  single vectorised pass over the whole forest — validation, CSR
  children, and ``wbar`` are O(total nodes) of numpy work, never one
  numpy call per tree; the only per-node Python loop is the canonical
  per-tree BFS (the same loop ``ArrayTree`` runs);
* ``pack()``/``from_packed()`` give a canonical raw-buffer wire form
  (one header + three int64 columns) used by the service's
  shared-memory transport and the buffer-digest cache keys — shipping a
  forest costs a memcpy, not a pickle of Python int lists.

Derived per-tree structures are **byte-identical** to what
``ArrayTree(parents, weights)`` builds for each member (the forest
property test asserts it), so :meth:`tree` can materialise any member
without re-validation and the forest sweeps in
:mod:`repro.core.forest_kernels` inherit the kernels' exactness
guarantees.

Layout bookkeeping (``k`` a tree, ``a = offsets[k]``, ``b = offsets[k+1]``,
``n_k = b - a``):

* node columns (``parents``/``weights``/``wbar``/``topo``): slice ``[a:b]``;
* ``child_start`` concatenates each tree's ``n_k + 1`` local CSR offsets,
  so tree ``k`` occupies ``[a + k : b + k + 1]``;
* ``child_index`` concatenates each tree's ``n_k - 1`` local child ids,
  so tree ``k`` occupies ``[a - k : b - (k + 1)]``.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .arraytree import (
    ArrayTree,
    _CSRChildren,
    _from_numpy,
    _int64_column,
    _MAX_TOTAL_WEIGHT,
    as_array_tree,
)
from .tree import TaskTree, TreeError

__all__ = ["ArrayForest"]

#: vectorised BFS rounds before construction falls back to the C-level
#: list BFS — bounds the numpy-call count on degenerate deep forests.
_BFS_VECTOR_LEVELS = 1024


class ArrayForest:
    """N rooted trees packed into concatenated flat int64 buffers.

    Construct from raw concatenated columns (``ArrayForest(offsets,
    parents, weights)``, fully validated in vectorised passes), from
    already-validated trees (:meth:`from_trees`, which concatenates
    their derived buffers directly), from per-tree ``(parents,
    weights)`` pairs (:meth:`from_pairs`), or from a packed wire buffer
    (:meth:`from_packed`).

    Error messages from the vectorised validation use *global* node
    indices (forest-wide positions) with the owning tree named where the
    check is per-tree.
    """

    __slots__ = (
        "_n_trees",
        "_total",
        "_offsets",
        "_parents",
        "_weights",
        "_wbar",
        "_roots_local",
        "_topo_cache",
        "_child_start",
        "_child_index",
        "_totals",
        "_lists",
        "_globals_cache",
        "_depth_cache",
        "_levels_cache",
        "_subtree_sizes_cache",
    )

    def __init__(
        self,
        offsets: Sequence[int],
        parents: Sequence[int],
        weights: Sequence[int],
    ):
        off = np.asarray(offsets, dtype=np.int64)
        if off.ndim != 1 or len(off) < 1 or off[0] != 0:
            raise TreeError("offsets must be a flat sequence starting at 0")
        if np.any(np.diff(off) < 1):
            raise TreeError("every tree in a forest needs at least one node")
        n_trees = len(off) - 1
        total = int(off[-1]) if n_trees else 0
        if len(parents) != total or len(weights) != total:
            raise TreeError(
                f"columns disagree with offsets: {len(parents)} parents, "
                f"{len(weights)} weights, {total} nodes expected"
            )

        self._n_trees = n_trees
        self._total = total
        self._offsets = off
        self._lists = None
        self._globals_cache = None
        self._depth_cache = None
        self._levels_cache = None
        self._subtree_sizes_cache = None
        self._topo_cache = None
        if n_trees == 0:
            empty = np.zeros(0, dtype=np.int64)
            self._parents = self._weights = self._wbar = empty
            self._roots_local = empty
            self._topo_cache = empty
            self._child_index = empty
            self._child_start = empty
            self._totals = empty
            return

        p = _int64_column(parents, "parent", strict=False)
        w = _int64_column(weights, "weight", strict=True)

        neg = np.flatnonzero(w < 0)
        if len(neg):
            i = int(neg[0])
            raise TreeError(f"weight of node {i} is negative: {int(w[i])}")
        # Per-tree weight budget: overflow-safe float estimate first, the
        # exact int64 sums after (guaranteed exact once the check passed).
        estimates = np.add.reduceat(w.astype(np.float64), off[:-1])
        if np.any(estimates > _MAX_TOTAL_WEIGHT):
            k = int(np.argmax(estimates > _MAX_TOTAL_WEIGHT))
            raise TreeError(
                f"tree {k}: total weight ~{estimates[k]:.3g} exceeds the "
                f"array engine's int64 budget ({_MAX_TOTAL_WEIGHT})"
            )
        if float(np.sum(estimates)) > _MAX_TOTAL_WEIGHT:
            # The vectorised forest kernels run prefix sums over whole
            # node levels, so the *forest-wide* weight total must keep
            # the same int64 headroom a single tree does.
            raise TreeError(
                f"forest-wide total weight exceeds the int64 budget "
                f"({_MAX_TOTAL_WEIGHT}); solve these trees one at a time"
            )
        totals = np.add.reduceat(w, off[:-1])

        sizes = np.diff(off)
        tree_of = np.repeat(np.arange(n_trees, dtype=np.int64), sizes)
        base = off[tree_of]

        roots = np.flatnonzero(p == -1)
        root_counts = np.bincount(tree_of[roots], minlength=n_trees)
        if np.any(root_counts != 1):
            k = int(np.argmax(root_counts != 1))
            raise TreeError(
                f"tree {k}: {'no root (node with parent -1) found' if root_counts[k] == 0 else 'more than one root'}"
            )
        bad = np.flatnonzero((p < -1) | (p >= sizes[tree_of]))
        if len(bad):
            i = int(bad[0])
            raise TreeError(f"node {i} has out-of-range parent {int(p[i])}")

        self._parents = np.ascontiguousarray(p)
        self._weights = np.ascontiguousarray(w)
        self._totals = totals

        # Children in CSR form, one global pass: grouping the non-root
        # nodes by *global* parent id with a stable argsort reproduces,
        # tree by tree, exactly the per-tree construction of ArrayTree
        # (parents of tree k occupy one contiguous id block, and within
        # it children keep ascending ids).
        nonroot = np.flatnonzero(p >= 0)
        gpar = p[nonroot] + base[nonroot]
        counts = np.bincount(gpar, minlength=total)
        child_index = nonroot[np.argsort(gpar, kind="stable")]
        gcs = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(counts, out=gcs[1:])
        # The tree-local CSR (child ids relative to their tree,
        # child_start slices rebased to 0) is derived lazily from these
        # global arrays — only per-tree consumers ever need it; the
        # vectorised sweeps work on the global form directly.
        self._child_index = None
        self._child_start = None
        self._roots_local = roots - off[:-1]

        # Connectivity / acyclicity, by pointer doubling on the parent
        # links: an acyclic forest converges (every jump pointer reaches
        # its root) within log2 rounds; a cycle never does.  Depth per
        # node falls out of the same pass and seeds the level caches the
        # vectorised kernels use — the canonical BFS topo is derived
        # lazily (:meth:`_topo_column`) only when a per-tree consumer
        # asks for it.
        ids = np.arange(total, dtype=np.int64)
        gpar_all = np.where(p < 0, -1, p + base)
        jump = np.where(gpar_all < 0, ids, gpar_all)
        depth = (gpar_all >= 0).astype(np.int64)
        for _ in range(66):  # > log2(int64 depths); only cycles exhaust it
            nxt = jump[jump]
            if np.array_equal(nxt, jump):
                break
            depth += depth[jump]
            jump = nxt
        else:
            k = int(tree_of[int(np.argmax(jump[jump] != jump))])
            raise TreeError(
                f"tree {k}: graph is not connected / contains a cycle"
            )
        # Power-of-two cycles converge to identity; every honest chain
        # converges onto its root — anything else is a cycle.
        stray = np.flatnonzero(gpar_all[jump] >= 0)
        if len(stray):
            k = int(tree_of[int(stray[0])])
            raise TreeError(
                f"tree {k}: graph is not connected / contains a cycle"
            )
        self._depth_cache = depth
        self._globals_cache = (gcs, child_index, gpar_all, base, tree_of)

        # wbar = max(w, sum of children weights) — the CSR grouping above
        # makes this an exact int64 segmented sum.
        inputs = np.zeros(total, dtype=np.int64)
        internal = np.flatnonzero(counts)
        if len(internal):
            inputs[internal] = np.add.reduceat(
                w[child_index], gcs[internal]
            )
        self._wbar = np.maximum(w, inputs)

    # ------------------------------------------------------------------
    # alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_trees(cls, trees: Sequence) -> "ArrayForest":
        """Concatenate already-validated ``TaskTree``/``ArrayTree`` members.

        Reuses every tree's derived buffers directly (no re-derivation,
        no re-validation) — O(total nodes) of memcpy.
        """
        ats = [as_array_tree(t) for t in trees]
        self = cls.__new__(cls)
        n_trees = len(ats)
        self._n_trees = n_trees
        self._lists = None
        self._globals_cache = None
        self._depth_cache = None
        self._levels_cache = None
        self._subtree_sizes_cache = None
        self._topo_cache = None
        if sum(float(at.total_weight()) for at in ats) > _MAX_TOTAL_WEIGHT:
            raise TreeError(
                f"forest-wide total weight exceeds the int64 budget "
                f"({_MAX_TOTAL_WEIGHT}); solve these trees one at a time"
            )
        sizes = np.array([at.n for at in ats], dtype=np.int64)
        off = np.zeros(n_trees + 1, dtype=np.int64)
        np.cumsum(sizes, out=off[1:])
        self._offsets = off
        self._total = int(off[-1]) if n_trees else 0

        def _concat(buffers) -> np.ndarray:
            if not buffers:
                return np.zeros(0, dtype=np.int64)
            return np.concatenate(
                [np.frombuffer(b, dtype=np.int64) for b in buffers]
            )

        self._parents = _concat([at._parents for at in ats])
        self._weights = _concat([at._weights for at in ats])
        self._wbar = _concat([at._wbar for at in ats])
        self._topo_cache = _concat([at._topo for at in ats])
        self._roots_local = np.array(
            [at._root for at in ats], dtype=np.int64
        )
        self._child_start = _concat([at._child_start for at in ats])
        self._child_index = _concat([at._child_index for at in ats])
        self._totals = np.array(
            [at.total_weight() for at in ats], dtype=np.int64
        )
        return self

    @classmethod
    def from_pairs(cls, pairs: Sequence) -> "ArrayForest":
        """Build from per-tree ``(parents, weights)`` pairs (one validation).

        Columns are converted per tree and concatenated once — no
        million-element Python list is ever materialised.
        """
        pairs = list(pairs)
        if not pairs:
            return cls([0], [], [])
        offsets = np.zeros(len(pairs) + 1, dtype=np.int64)
        pcols = []
        wcols = []
        for i, (p, w) in enumerate(pairs):
            if len(p) != len(w):
                raise TreeError(
                    f"parents and weights disagree on size: "
                    f"{len(p)} != {len(w)}"
                )
            offsets[i + 1] = offsets[i] + len(p)
            pcols.append(np.asarray(p))
            wcols.append(np.asarray(w))
            if wcols[-1].dtype == np.bool_:
                # concatenation would silently promote bools; reject with
                # the shared validator's vocabulary instead.
                raise TreeError(
                    f"weight of node {int(offsets[i])} is not an integer: "
                    f"{bool(wcols[-1].flat[0]) if wcols[-1].size else False!r}"
                )
        return cls(offsets, np.concatenate(pcols), np.concatenate(wcols))

    # ------------------------------------------------------------------
    # the wire form (shared-memory transport, buffer-digest cache keys)
    # ------------------------------------------------------------------
    def pack(self) -> bytes:
        """Canonical raw form: ``[n_trees, total] + offsets + parents + weights``.

        All native-endian int64; :meth:`from_packed` is the exact inverse
        on the same machine (the shared-memory transport never crosses
        hosts).  For host-portable digests use :meth:`column_buffers`
        with :func:`repro.datasets.store.cache_key_buffers`, which
        canonicalises to little-endian.
        """
        head = np.array([self._n_trees, self._total], dtype=np.int64)
        return b"".join(
            np.ascontiguousarray(col).tobytes()
            for col in (head, self._offsets, self._parents, self._weights)
        )

    @classmethod
    def from_packed(cls, buffer) -> "ArrayForest":
        """Rebuild (and re-validate) a forest from :meth:`pack` output.

        ``buffer`` may be ``bytes`` or any buffer-protocol object; the
        columns are read zero-copy, so keep the buffer alive for the
        forest's lifetime (or pass ``bytes`` for an owning copy).
        """
        words = np.frombuffer(buffer, dtype=np.int64)
        if len(words) < 2:
            raise TreeError("packed forest too short for its header")
        n_trees = int(words[0])
        total = int(words[1])
        expected = 2 + (n_trees + 1) + 2 * total
        if n_trees < 0 or total < 0 or len(words) != expected:
            raise TreeError(
                f"packed forest of {len(words)} words does not match its "
                f"header (n_trees={n_trees}, total={total})"
            )
        offsets = words[2 : 2 + n_trees + 1]
        parents = words[2 + n_trees + 1 : 2 + n_trees + 1 + total]
        weights = words[2 + n_trees + 1 + total :]
        return cls(offsets, parents, weights)

    def column_buffers(self) -> dict[str, np.ndarray]:
        """The identity columns, named for buffer-digest cache keys."""
        return {
            "offsets": self._offsets,
            "parents": self._parents,
            "weights": self._weights,
        }

    # ------------------------------------------------------------------
    # member access
    # ------------------------------------------------------------------
    @property
    def n_trees(self) -> int:
        return self._n_trees

    @property
    def total_nodes(self) -> int:
        return self._total

    @property
    def offsets(self) -> np.ndarray:
        return self._offsets

    def sizes(self) -> np.ndarray:
        """Node count of every tree."""
        return np.diff(self._offsets)

    def tree(self, k: int) -> ArrayTree:
        """Materialise member ``k`` as a standalone :class:`ArrayTree`.

        Copies the (already canonical) buffer slices — no re-validation,
        no re-derivation; the result is indistinguishable from
        ``ArrayTree(parents_k, weights_k)``.
        """
        if not 0 <= k < self._n_trees:
            raise IndexError(f"tree {k} out of range [0, {self._n_trees})")
        off = self._offsets
        a = int(off[k])
        b = int(off[k + 1])
        n = b - a
        at = ArrayTree.__new__(ArrayTree)
        at._n = n
        at._root = int(self._roots_local[k])
        at._parents = _from_numpy(self._parents[a:b])
        at._weights = _from_numpy(self._weights[a:b])
        at._wbar = _from_numpy(self._wbar[a:b])
        at._topo = _from_numpy(self._topo_column()[a:b])
        at._child_start = _from_numpy(self._child_start_col()[a + k : b + k + 1])
        at._child_index = _from_numpy(self._child_index_col()[a - k : b - (k + 1)])
        at._children_view = _CSRChildren(at._child_start, at._child_index, n)
        at._total_weight = int(self._totals[k])
        return at

    def trees(self) -> Iterator[ArrayTree]:
        """Iterate the members as standalone :class:`ArrayTree` objects."""
        for k in range(self._n_trees):
            yield self.tree(k)

    def task_tree(self, k: int) -> TaskTree:
        """Member ``k`` as a :class:`TaskTree` (re-validates, object engine)."""
        off = self._offsets
        a, b = int(off[k]), int(off[k + 1])
        return TaskTree(
            self._parents[a:b].tolist(), self._weights[a:b].tolist()
        )

    def _child_start_col(self) -> np.ndarray:
        """The concatenated tree-local ``child_start`` slots, lazily.

        Tree ``k`` occupies ``[offsets[k] + k : offsets[k+1] + k + 1]``
        with values rebased to start at 0 (``edges before tree k`` is
        ``offsets[k] - k``, each earlier tree having ``n_j - 1`` edges).
        """
        cached = self._child_start
        if cached is None:
            gcs, _gci, _gpar, _base, _tree_of = self._globals()
            off = self._offsets
            n_trees = self._n_trees
            sizes = np.diff(off)
            slot_tree = np.repeat(
                np.arange(n_trees, dtype=np.int64), sizes + 1
            )
            sel = np.arange(self._total + n_trees, dtype=np.int64) - slot_tree
            cached = gcs[sel] - (off[slot_tree] - slot_tree)
            self._child_start = cached
        return cached

    def _child_index_col(self) -> np.ndarray:
        """The concatenated tree-local child ids, lazily.

        Tree ``k`` occupies ``[offsets[k] - k : offsets[k+1] - (k+1)]``.
        """
        cached = self._child_index
        if cached is None:
            _gcs, gci, _gpar, base, _tree_of = self._globals()
            cached = gci - base[gci]
            self._child_index = cached
        return cached

    def _globals(self):
        """Global-id views of the CSR structure, for the vectorised kernels.

        Returns ``(gcs, gci, gpar, base, tree_of)``: the child CSR with
        forest-wide node ids (``gcs`` of length ``total + 1``), global
        parent ids (roots stay ``-1``), each node's tree base offset and
        owning tree.  Construction caches these eagerly; the
        ``from_trees`` path (which concatenates local columns instead)
        derives them here on first use.
        """
        cached = self._globals_cache
        if cached is not None:
            return cached
        off = self._offsets
        n_trees = self._n_trees
        total = self._total
        sizes = np.diff(off)
        tree_of = np.repeat(np.arange(n_trees, dtype=np.int64), sizes)
        base = off[tree_of]
        gpar = np.where(self._parents < 0, -1, self._parents + base)
        edge_tree = np.repeat(np.arange(n_trees, dtype=np.int64), sizes - 1)
        gci = self._child_index + off[edge_tree]
        # Rebase the concatenated local child_start (n_k + 1 slots per
        # tree) into one global array: drop every tree's final slot and
        # add its edges-before count, then close with the edge total.
        slot_tree = np.repeat(np.arange(n_trees, dtype=np.int64), sizes + 1)
        keep = np.ones(total + n_trees, dtype=bool)
        keep[off[1:] + np.arange(n_trees)] = False
        gcs = np.empty(total + 1, dtype=np.int64)
        gcs[:total] = (self._child_start + (off[slot_tree] - slot_tree))[keep]
        gcs[total] = total - n_trees
        cached = (gcs, gci, gpar, base, tree_of)
        self._globals_cache = cached
        return cached

    def _depths(self) -> np.ndarray:
        """Depth of every node (root = 0), by vectorised pointer doubling.

        ``O(total · log(max_depth))`` numpy work and robust to
        degenerate chains (log₂ rounds, not one round per level).
        Cached; used by the vectorised kernels to slice depth levels.
        """
        cached = self._depth_cache
        if cached is not None:
            return cached
        _gcs, _gci, gpar, _base, _tree_of = self._globals()
        ids = np.arange(self._total, dtype=np.int64)
        jump = np.where(gpar < 0, ids, gpar)
        depth = (gpar >= 0).astype(np.int64)
        while True:
            nxt = jump[jump]
            if np.array_equal(nxt, jump):
                break
            depth += depth[jump]
            jump = nxt
        self._depth_cache = depth
        return depth

    def max_depth(self) -> int:
        """Deepest root-to-leaf edge count over the whole forest."""
        return int(self._depths().max()) if self._total else 0

    def _topo_column(self) -> np.ndarray:
        """The concatenated canonical BFS topo orders (local ids), lazily.

        Identical to what each member's ``ArrayTree`` stores.  The BFS
        runs level-synchronously over the whole forest — one ragged
        numpy gather per depth level — and the per-level order
        restricted to any one tree is exactly that tree's FIFO BFS
        order, so a stable sort by owning tree recovers every member's
        canonical block.  Forests deeper than the vectorised round
        budget (degenerate chains) finish on a C-level list BFS, which
        is also exact.  Only per-tree consumers (:meth:`tree`, the loop
        kernels, FiF) force this; the vectorised sweeps never do.
        """
        cached = self._topo_cache
        if cached is not None:
            return cached
        gcs, gci, _gpar, base, tree_of = self._globals()
        total = self._total
        roots = self._roots_local + self._offsets[:-1]
        order_parts = [roots]
        frontier = roots
        arange_cache = np.arange(total, dtype=np.int64)
        for _ in range(_BFS_VECTOR_LEVELS):
            s = gcs[frontier]
            cnt = gcs[frontier + 1] - s
            tot = int(cnt.sum())
            if tot == 0:
                frontier = frontier[:0]
                break
            starts = np.cumsum(cnt) - cnt
            grp = np.repeat(np.arange(len(frontier), dtype=np.int64), cnt)
            frontier = gci[s[grp] + (arange_cache[:tot] - starts[grp])]
            order_parts.append(frontier)
        if frontier.size:
            gcs_l = gcs.tolist()
            gci_l = gci.tolist()
            q = frontier.tolist()
            for v in q:
                s = gcs_l[v]
                e = gcs_l[v + 1]
                if s != e:
                    q.extend(gci_l[s:e])
            order_parts[-1] = np.asarray(q, dtype=np.int64)
        order = np.concatenate(order_parts)
        topo_global = order[np.argsort(tree_of[order], kind="stable")]
        self._topo_cache = topo_global - base[topo_global]
        return self._topo_cache

    def _levels(self):
        """Depth-level decomposition of the internal nodes' child edges.

        One list entry per depth level ``d`` (ascending), each a tuple
        ``(idx, eidx, starts, grp, max_arity)``: the internal nodes at
        depth ``d`` (ascending ids), the CSR edge positions of their
        children concatenated in (parent, CSR) order, group boundaries
        and the edge→group map.  Built with one global stable sort of
        the edges by parent depth and cached — the vectorised kernels'
        bottom-up and top-down sweeps both replay it.
        """
        cached = self._levels_cache
        if cached is not None:
            return cached
        if self._total == 0:
            self._levels_cache = []
            return self._levels_cache
        gcs, _gci, _gpar, _base, _tree_of = self._globals()
        depth = self._depths()
        total = self._total
        cnt_all = gcs[1:] - gcs[:total]
        e_par = np.repeat(np.arange(total, dtype=np.int64), cnt_all)
        ed = depth[e_par]
        edge_order = np.argsort(ed, kind="stable")
        ed_sorted = ed[edge_order]
        max_depth = int(depth.max()) if total else 0
        lvl_bounds = np.searchsorted(
            ed_sorted, np.arange(max_depth + 2, dtype=np.int64)
        )
        levels = []
        push = levels.append
        for d in range(max_depth + 1):
            eidx = edge_order[lvl_bounds[d] : lvl_bounds[d + 1]]
            if eidx.size == 0:
                push(None)
                continue
            parents_e = e_par[eidx]
            head = np.empty(len(parents_e), dtype=bool)
            head[0] = True
            np.not_equal(parents_e[1:], parents_e[:-1], out=head[1:])
            starts = np.flatnonzero(head)
            grp = np.cumsum(head) - 1
            counts = np.diff(np.append(starts, len(parents_e)))
            max_arity = int(counts.max())
            # edges belonging to multi-child groups: the only ones a
            # child-ordering sort can move (singletons are sorted already)
            multi = (
                np.flatnonzero(counts[grp] > 1) if max_arity > 2 else None
            )
            push(
                (
                    parents_e[starts],
                    eidx,
                    starts,
                    grp,
                    counts,
                    max_arity,
                    multi,
                )
            )
        self._levels_cache = levels
        return levels

    def _subtree_sizes(self) -> np.ndarray:
        """Node count of every subtree — ordering-independent, so cached.

        One bottom-up sweep of segmented sums over the level cache; the
        vectorised emission pass and repeated kernel calls reuse it.
        """
        cached = self._subtree_sizes_cache
        if cached is None:
            _gcs, gci, _gpar, _base, _tree_of = self._globals()
            cached = np.ones(self._total, dtype=np.int64)
            for level in reversed(self._levels()):
                if level is None:
                    continue
                idx, eidx, starts, _grp, _counts, max_arity, _multi = level
                if max_arity == 1:
                    cached[idx] = 1 + cached[gci[eidx]]
                else:
                    cached[idx] = 1 + np.add.reduceat(
                        cached[gci[eidx]], starts
                    )
            self._subtree_sizes_cache = cached
        return cached

    def _as_lists(self):
        """One-shot ``tolist`` of every column, cached (forests are immutable).

        The forest kernels run several sweeps (bounds, peaks, one per
        algorithm, FiF) over the same buffers; converting once keeps the
        per-sweep cost at pure list slicing.
        """
        lists = self._lists
        if lists is None:
            lists = (
                self._offsets.tolist(),
                self._parents.tolist(),
                self._weights.tolist(),
                self._wbar.tolist(),
                self._topo_column().tolist(),
                self._child_start_col().tolist(),
                self._child_index_col().tolist(),
            )
            self._lists = lists
        return lists

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_trees

    def __repr__(self) -> str:
        return (
            f"ArrayForest(n_trees={self._n_trees}, "
            f"total_nodes={self._total})"
        )
