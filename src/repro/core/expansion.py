"""Node expansion: making I/O decisions explicit in the tree structure.

Section 5 of the paper introduces *expansion* of a node ``i`` under an I/O
function ``tau``: the node is replaced by a chain

::

        i (w_i)   --->   i1 (w_i)  ->  i2 (w_i - tau(i))  ->  i3 (w_i)

whose three weights mimic the memory occupied by *i*'s output data

1. right after it is produced (``w_i``),
2. while part of it sits on disk (``w_i - tau(i)``), and
3. once it has been read back for the parent (``w_i``).

Expansion is the engine of both Theorem 2 (recovering a schedule from an
I/O function, see :func:`repro.algorithms.io_function.schedule_for_io_function`)
and the RecExpand heuristics (Algorithm 2), which repeatedly expand nodes
until the tree fits in memory.

This module provides :class:`ExpansionTree`, a mutable tree satisfying the
simulator/solver "tree protocol", with two extra properties:

* every node remembers which *original* node it stands for (``origin``),
  so schedules on the expanded tree can be transposed back;
* expanding a node that is already a *residual* (middle) node simply lowers
  its weight further — this matches the paper's Figure 6, where the second
  expansion of ``b`` turns the chain ``4, 2, 4`` into ``4, 1, 4`` rather
  than into ``4, 2, 1, 2, 4``.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Sequence

from .tree import TaskTree

__all__ = ["Role", "ExpansionTree", "expand_tree"]


class Role(IntEnum):
    """What an expansion-tree node represents."""

    ORIGINAL = 0  # the task itself (keeps the original children)
    RESIDUAL = 1  # the part of the output still in memory while written out
    READBACK = 2  # the output restored to full size before the parent runs


class ExpansionTree:
    """A mutable task tree supporting repeated node expansions.

    The structure grows monotonically: original nodes keep their ids
    (``0 .. base_n-1``), spliced nodes are appended.  All arrays are plain
    lists so the FiF simulator and the Liu solver can read them directly.
    """

    def __init__(self, tree: TaskTree):
        self.base = tree
        self.base_n = tree.n
        self.parents: list[int] = list(tree.parents)
        self.weights: list[int] = list(tree.weights)
        self.children: list[list[int]] = [list(c) for c in tree.children]
        self.root: int = tree.root
        self.origin: list[int] = list(range(tree.n))
        self.role: list[Role] = [Role.ORIGINAL] * tree.n
        #: total volume of I/O forced by expansions so far
        self.expanded_io: int = 0
        #: number of expansion operations applied
        self.num_expansions: int = 0

    @property
    def n(self) -> int:
        return len(self.parents)

    # ------------------------------------------------------------------
    def expand(self, v: int, amount: int) -> int:
        """Force ``amount`` more units of the data held by node ``v`` to disk.

        Returns the node from which cached per-subtree solutions become
        stale (the lowest modified node): the residual node itself for a
        weight reduction, or the new read-back node for a splice.
        """
        if amount <= 0:
            raise ValueError(f"expansion amount must be positive, got {amount}")
        if amount > self.weights[v]:
            raise ValueError(
                f"cannot expand node {v} by {amount}: only {self.weights[v]} resident"
            )

        self.expanded_io += amount
        self.num_expansions += 1

        if self.role[v] == Role.RESIDUAL:
            # The data this node stands for is already (partly) on disk;
            # writing more of it just shrinks the resident share.
            self.weights[v] -= amount
            return v

        # Splice  v -> residual -> readback -> old parent  above v.
        w = self.weights[v]
        residual = len(self.parents)
        readback = residual + 1
        parent = self.parents[v]

        self.parents.append(readback)  # residual's parent
        self.parents.append(parent)  # readback's parent
        self.weights.append(w - amount)
        self.weights.append(w)
        self.children.append([v])  # residual's children
        self.children.append([residual])  # readback's children
        self.origin.extend((self.origin[v], self.origin[v]))
        self.role.extend((Role.RESIDUAL, Role.READBACK))

        self.parents[v] = residual
        if parent == -1:
            self.root = readback
        else:
            kids = self.children[parent]
            kids[kids.index(v)] = readback
        return readback

    # ------------------------------------------------------------------
    def restrict_schedule(self, schedule: Sequence[int]) -> list[int]:
        """Drop helper nodes, mapping a schedule back to original node ids.

        Exactly one node per original task has role ``ORIGINAL`` (splices
        always add ``RESIDUAL``/``READBACK`` nodes), so the result is a
        permutation of the original nodes, in execution order.
        """
        return [self.origin[v] for v in schedule if self.role[v] == Role.ORIGINAL]

    def as_task_tree(self) -> TaskTree:
        """Freeze the current expanded structure into an immutable tree."""
        return TaskTree(self.parents, self.weights)

    def io_per_original_node(self) -> dict[int, int]:
        """Total expansion volume attributed to each original node."""
        out: dict[int, int] = {}
        for v in range(self.base_n, self.n):
            if self.role[v] == Role.RESIDUAL:
                orig = self.origin[v]
                # Each residual node holds w_orig - (written so far through it).
                out[orig] = out.get(orig, 0) + 0
        # Simpler and exact: walk residuals comparing against the readback
        # above them (which always carries the full size).
        out = {}
        for v in range(self.n):
            if self.role[v] == Role.RESIDUAL:
                full = self.weights[self.parents[v]]  # readback holds w_orig
                out[self.origin[v]] = out.get(self.origin[v], 0) + (
                    full - self.weights[v]
                )
        return out

    def __repr__(self) -> str:
        return (
            f"ExpansionTree(n={self.n}, base_n={self.base_n}, "
            f"expanded_io={self.expanded_io})"
        )


def expand_tree(tree: TaskTree, io: Sequence[int]) -> tuple[TaskTree, ExpansionTree]:
    """One-shot expansion of every node with ``io[i] > 0`` (Theorem 2 setup).

    Returns the frozen expanded tree together with the
    :class:`ExpansionTree` carrying the origin bookkeeping.
    """
    if len(io) != tree.n:
        raise ValueError("io function is not index-aligned with the tree")
    xt = ExpansionTree(tree)
    for v, amount in enumerate(io):
        if amount < 0 or amount > tree.weights[v]:
            raise ValueError(f"io amount of node {v} out of range: {amount}")
        if amount > 0:
            xt.expand(v, amount)
    return xt.as_task_tree(), xt
