"""Iterative, allocation-lean algorithm cores over :class:`ArrayTree`.

These are the hot paths of the reproduction, rewritten against the flat
CSR layout of :mod:`repro.core.arraytree`:

* :func:`best_postorder` — the shared engine of ``POSTORDERMINMEM`` /
  ``POSTORDERMINIO`` (Liu 1986 / Agullo 2008, Algorithm 1 of the paper);
* :func:`liu_segments` / :func:`liu_schedule` / :func:`liu_peak` —
  Liu's hill–valley segment solver (``OPTMINMEM``);
* :func:`simulate_fif` — the Furthest-in-the-Future eviction simulator
  (Theorem 1);
* :func:`structure_stats` — one-pass shape statistics.

Every function is **exactly equivalent** to its object-engine
counterpart (same schedules, same ``S_i``/``V_i``, same I/O function,
same tie-breaking) — an invariant enforced by the randomized
cross-validation harness in ``tests/test_kernel_crossval.py``.  The
difference is purely mechanical: no recursion anywhere (explicit int
stacks, so 10^6-node and 10^6-deep trees are fine), no per-node object
or closure allocation, plain-list scratch buffers, and child orderings
realised by sorting slices of one flat buffer.

The modules under :mod:`repro.algorithms` wrap these cores behind the
public APIs; use those entry points unless you are holding an
``ArrayTree`` already.

Every algorithm is split into a ``*_core`` function operating on plain
Python lists (node ids local to one tree) and a thin ``ArrayTree``
wrapper that materialises the lists.  The cores are the single
implementation shared with the forest layer
(:mod:`repro.core.forest_kernels`), which slices the same lists out of
concatenated many-tree buffers — one implementation, so the per-tree
and batched paths can never diverge.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from .arraytree import ArrayTree

__all__ = [
    "best_postorder",
    "best_postorder_core",
    "fif_overflow_message",
    "fif_stuck_message",
    "flatten_rope",
    "liu_segments",
    "liu_segments_core",
    "liu_schedule",
    "liu_peak",
    "liu_peak_core",
    "simulate_fif",
    "simulate_fif_core",
    "structure_stats",
]

# ----------------------------------------------------------------------
# best postorder (POSTORDERMINMEM / POSTORDERMINIO)
# ----------------------------------------------------------------------
def best_postorder(
    at: ArrayTree, memory: int | None
) -> tuple[list[int], list[int], list[int]]:
    """The optimal postorder under Liu's rearrangement lemma (Theorem 3).

    ``memory=None`` ranks children by ``S_j - w_j`` (MinMem),
    otherwise by ``min(M, S_j) - w_j`` (MinIO).  Returns
    ``(schedule, storage, vio)`` with ``storage[v] = S_v`` and
    ``vio[v] = V_v`` (all zeros in MinMem mode) — the exact quantities
    of the object engine's ``_best_postorder``.
    """
    return best_postorder_core(
        at.n,
        at._weights.tolist(),
        at._child_start.tolist(),
        at._child_index.tolist(),
        at._topo.tolist(),
        memory,
    )


def best_postorder_core(
    n: int,
    weights: list[int],
    start: list[int],
    ordered: list[int],
    topo: list[int],
    memory: int | None,
) -> tuple[list[int], list[int], list[int]]:
    """List-based engine of :func:`best_postorder` (local node ids).

    ``ordered`` is the CSR child index and is reordered **in place**,
    slice by slice — pass a fresh copy.
    """
    storage = [0] * n
    key = [0] * n  # child-ranking key, filled once per finished subtree
    vio = [0] * n
    size = [1] * n  # subtree sizes, reused by the position-assignment pass
    key_get = key.__getitem__
    minmem = memory is None

    for v in reversed(topo):
        s = start[v]
        e = start[v + 1]
        w_v = weights[v]
        if s == e:
            storage[v] = w_v
            if not minmem:
                key[v] = (w_v if w_v < memory else memory) - w_v
            continue
        if e - s == 1:
            # Single child: no ordering decision, no loop.
            c = ordered[s]
            s_c = storage[c]
            peak = s_c if s_c > w_v else w_v
            storage[v] = peak
            size[v] = 1 + size[c]
            if minmem:
                key[v] = peak - w_v
            else:
                # min(M, S_c) never exceeds M, so the child contributes
                # no new I/O at v: V_v = V_c.
                vio[v] = vio[c]
                key[v] = (peak if peak < memory else memory) - w_v
            continue
        if e - s == 2:
            a = ordered[s]
            b = ordered[s + 1]
            # A strict improvement swaps; a tie keeps ascending ids —
            # the same (-key, id) order the object engine sorts by.
            if key[b] > key[a]:
                ordered[s] = b
                ordered[s + 1] = a
                a, b = b, a
            s_a = storage[a]
            s_b = storage[b]
            w_a = weights[a]
            peak = s_b + w_a
            if s_a > peak:
                peak = s_a
            if w_v > peak:
                peak = w_v
            storage[v] = peak
            size[v] = 1 + size[a] + size[b]
            if minmem:
                key[v] = peak - w_v
            else:
                worst = (s_b if s_b < memory else memory) + w_a
                a_a = s_a if s_a < memory else memory
                if a_a > worst:
                    worst = a_a
                over = worst - memory
                vio[v] = (over if over > 0 else 0) + vio[a] + vio[b]
                key[v] = (peak if peak < memory else memory) - w_v
            continue
        kids = ordered[s:e]  # ascending ids == TaskTree construction order
        # Stable reverse sort == sorting by (-key, id): ties keep the
        # ascending-id order, exactly the object engine's tie-break.
        kids.sort(key=key_get, reverse=True)
        ordered[s:e] = kids

        peak = w_v
        prefix = 0
        sz = 1
        if minmem:
            for c in kids:
                t = storage[c] + prefix
                if t > peak:
                    peak = t
                prefix += weights[c]
                sz += size[c]
            storage[v] = peak
            key[v] = peak - w_v
        else:
            worst = 0
            vsum = 0
            for c in kids:
                s_c = storage[c]
                t = s_c + prefix
                if t > peak:
                    peak = t
                a = s_c if s_c < memory else memory
                t = a + prefix
                if t > worst:
                    worst = t
                prefix += weights[c]
                vsum += vio[c]
                sz += size[c]
            storage[v] = peak
            over = worst - memory
            vio[v] = (over if over > 0 else 0) + vsum
            key[v] = (peak if peak < memory else memory) - w_v
        size[v] = sz

    # Emit the postorder defined by the ordered child slices: one
    # top-down pass assigns every node the *end* position of its subtree
    # block (the root closes the whole tree at n-1; a node's children
    # close at decreasing offsets given by their subtree sizes).
    schedule = [0] * n
    end = [0] * n
    end[topo[0]] = n - 1
    for v in topo:
        pos = end[v]
        schedule[pos] = v
        s = start[v]
        e = start[v + 1]
        if s == e:
            continue
        pos -= 1
        for j in range(e - 1, s - 1, -1):
            c = ordered[j]
            end[c] = pos
            pos -= size[c]
    return schedule, storage, vio


# ----------------------------------------------------------------------
# Liu's segment solver (OPTMINMEM)
# ----------------------------------------------------------------------
def flatten_rope(rope, out: list[int]) -> None:
    """Flatten a rope (an int leaf or a nested pair) into ``out``.

    The single definition of the rope encoding both the object-engine
    :class:`~repro.algorithms.liu.Segment` and the kernel's segment
    tuples use — keep them on one flattener so they can never diverge.
    """
    stack = [rope]
    push = stack.append
    pop = stack.pop
    append = out.append
    while stack:
        x = pop()
        if type(x) is int:
            append(x)
        else:
            push(x[1])
            push(x[0])


def liu_segments(at: ArrayTree) -> list[tuple[int, int, object]]:
    """Canonical hill–valley segments ``(hill, valley, rope)`` of the root.

    Same algebra, merge order and canonicalisation as
    :class:`repro.algorithms.liu.LiuSolver` (see its module docstring),
    with plain tuples instead of ``Segment`` objects and per-node lists
    freed as soon as their parent has consumed them.
    """
    return liu_segments_core(
        at.n,
        at._weights.tolist(),
        at._child_start.tolist(),
        at._child_index.tolist(),
        at._topo.tolist(),
    )


def liu_segments_core(
    n: int,
    weights: list[int],
    start: list[int],
    cindex: list[int],
    topo: list[int],
) -> list[tuple[int, int, object]]:
    """List-based engine of :func:`liu_segments` (``topo[0]`` is the root)."""
    segs: list[list[tuple[int, int, object]] | None] = [None] * n

    for v in reversed(topo):
        s = start[v]
        e = start[v + 1]
        w_v = weights[v]
        if s == e:
            segs[v] = [(w_v, w_v, v)]
            continue

        if e - s == 1:
            # Single child: its canonical segments replay to themselves,
            # so reuse the list in place and just fold v's own segment
            # in (base == the child's final valley == its output size).
            c = cindex[s]
            out = segs[c]
            segs[c] = None
            base = out[-1][1]
            hill = base if base > w_v else w_v
            nodes: object = v
            while out and (hill >= out[-1][0] or w_v <= out[-1][1]):
                top_hill, _top_valley, top_nodes = out.pop()
                if top_hill > hill:
                    hill = top_hill
                nodes = (top_nodes, nodes)
            out.append((hill, w_v, nodes))
            segs[v] = out
            continue

        # Delta segments of all children, merged by decreasing h - t
        # (stored negated so one ascending sort does it); rank (the
        # child's CSR position) reproduces the object engine's
        # deterministic tie-break.  (valley - hill) is strictly
        # increasing within a child and rank is unique per child, so
        # the (neg, rank) prefix is unique — a plain tuple sort never
        # reaches the rope element.
        items = []
        push_item = items.append
        for rank in range(s, e):
            c = cindex[rank]
            prev_valley = 0
            child_segs = segs[c]
            segs[c] = None  # parent consumes it exactly once; free early
            for hill, valley, nodes in child_segs:
                push_item(
                    (valley - hill, rank, hill - prev_valley,
                     valley - prev_valley, nodes)
                )
                prev_valley = valley
        items.sort()

        # Replay the merged deltas on a running base and canonicalise in
        # the same pass (hills strictly decreasing, valleys strictly
        # increasing; violators merge into their predecessor) — the
        # two-pass formulation builds the same output left to right.
        base = 0
        out = []
        for _neg, _rank, x, y, nodes in items:
            hill = base + x
            base += y
            while out and (hill >= out[-1][0] or base <= out[-1][1]):
                top_hill, _top_valley, top_nodes = out.pop()
                if top_hill > hill:
                    hill = top_hill
                nodes = (top_nodes, nodes)
            out.append((hill, base, nodes))
        # Execute v itself: base == sum of the children outputs.
        hill = base if base > w_v else w_v
        nodes = v
        while out and (hill >= out[-1][0] or w_v <= out[-1][1]):
            top_hill, _top_valley, top_nodes = out.pop()
            if top_hill > hill:
                hill = top_hill
            nodes = (top_nodes, nodes)
        out.append((hill, w_v, nodes))
        segs[v] = out
    return segs[topo[0]]


def liu_schedule(at: ArrayTree) -> tuple[list[int], int]:
    """``OPTMINMEM``: an optimal-peak schedule and its peak memory."""
    segs = liu_segments(at)
    schedule: list[int] = []
    for _hill, _valley, nodes in segs:
        flatten_rope(nodes, schedule)
    return schedule, segs[0][0]


def liu_peak(at: ArrayTree) -> int:
    """Minimum peak memory only — the rope-free fast path of the solver."""
    return liu_peak_core(
        at.n,
        at._weights.tolist(),
        at._child_start.tolist(),
        at._child_index.tolist(),
        at._topo.tolist(),
    )


def liu_peak_core(
    n: int,
    weights: list[int],
    start: list[int],
    cindex: list[int],
    topo: list[int],
) -> int:
    """List-based engine of :func:`liu_peak` (``topo[0]`` is the root)."""
    segs: list[list[tuple[int, int]] | None] = [None] * n

    for v in reversed(topo):
        s = start[v]
        e = start[v + 1]
        w_v = weights[v]
        if s == e:
            segs[v] = [(w_v, w_v)]
            continue
        if e - s == 1:
            c = cindex[s]
            out = segs[c]
            segs[c] = None
            base = out[-1][1]
            hill = base if base > w_v else w_v
            while out and (hill >= out[-1][0] or w_v <= out[-1][1]):
                top_hill, _tv = out.pop()
                if top_hill > hill:
                    hill = top_hill
            out.append((hill, w_v))
            segs[v] = out
            continue
        items = []
        push_item = items.append
        for rank in range(s, e):
            c = cindex[rank]
            prev_valley = 0
            child_segs = segs[c]
            segs[c] = None
            for hill, valley in child_segs:
                push_item((valley - hill, hill - prev_valley, valley - prev_valley))
                prev_valley = valley
        items.sort()
        base = 0
        out = []
        for _neg, x, y in items:
            hill = base + x
            base += y
            while out and (hill >= out[-1][0] or base <= out[-1][1]):
                top_hill, _tv = out.pop()
                if top_hill > hill:
                    hill = top_hill
            out.append((hill, base))
        hill = base if base > w_v else w_v
        while out and (hill >= out[-1][0] or w_v <= out[-1][1]):
            top_hill, _tv = out.pop()
            if top_hill > hill:
                hill = top_hill
        out.append((hill, w_v))
        segs[v] = out
    return segs[topo[0]][0][0]


# ----------------------------------------------------------------------
# Furthest-in-the-Future simulator (Theorem 1)
# ----------------------------------------------------------------------
def fif_overflow_message(v: int, wbar_v: int, memory: int) -> str:
    """``InfeasibleSchedule`` text when one node alone exceeds the bound.

    Shared by the per-tree core and the vectorised forest sweep so the
    two engines raise byte-identical diagnostics.
    """
    return f"node {v} alone needs wbar={wbar_v} > M={memory}"


def fif_stuck_message(step: int, v: int, excess: int, memory: int) -> str:
    """``InfeasibleSchedule`` text when eviction runs out of candidates."""
    return (
        f"step {step} (node {v}): nothing left to evict "
        f"but still {excess} over M={memory}"
    )


def simulate_fif(
    at: ArrayTree, schedule: Sequence[int], memory: int | None
) -> tuple[dict[int, int], int, int]:
    """FiF execution of a full-tree ``schedule`` under bound ``memory``.

    Returns ``(io, io_volume, peak_memory)`` with ``io`` mapping only the
    evicted nodes — exactly the object simulator's accounting, including
    eviction order (the lazily-cleaned max-heap on parent positions is
    byte-compatible).  Requires a full-tree schedule; subtree schedules
    go through the object engine.  Raises
    :class:`~repro.core.simulator.InfeasibleSchedule` exactly where the
    object simulator would.
    """
    n = at.n
    if len(schedule) != n:
        raise ValueError("flat FiF kernel needs a full-tree schedule")
    return simulate_fif_core(
        n,
        at._weights.tolist(),
        at._parents.tolist(),
        at._child_start.tolist(),
        at._child_index.tolist(),
        at._wbar.tolist(),
        schedule,
        memory,
    )


def simulate_fif_core(
    n: int,
    weights: list[int],
    parents: list[int],
    start: list[int],
    cindex: list[int],
    wbar: list[int],
    schedule: Sequence[int],
    memory: int | None,
) -> tuple[dict[int, int], int, int]:
    """List-based engine of :func:`simulate_fif` (local node ids)."""
    from .simulator import InfeasibleSchedule  # circular-safe: lazy

    pos = [0] * n
    t = 0
    for v in schedule:
        pos[v] = t
        t += 1

    # Eviction priority of a node == minus its parent's position (a
    # min-heap then pops the furthest-in-the-future output first); the
    # root's output is never consumed, i.e. "furthest" of all.
    # Computed only when an output actually reaches the heap.
    def _priority(u: int) -> int:
        p = parents[u]
        return -pos[p] if p != -1 else -n

    resident = [0] * n
    io = [0] * n
    # The eviction heap is built lazily: newly active outputs accumulate
    # in ``pending`` and are folded in only when an eviction round
    # actually needs candidates.  Eviction-free execution (the common
    # case once M is comfortable) therefore never pays a single heap
    # operation.  Folding filters already-consumed outputs and either
    # pushes individually or re-heapifies, whichever is asymptotically
    # cheaper, so heavy-eviction runs stay O(log n) amortised per node.
    heap: list[tuple[int, int]] = []
    pending: list[int] = []
    push_pending = pending.append
    heappush = heapq.heappush
    heappop = heapq.heappop
    heapify = heapq.heapify
    resident_total = 0
    io_total = 0
    peak = 0

    for v in schedule:
        w_v = weights[v]
        s = start[v]
        e = start[v + 1]
        wbar_v = wbar[v]
        if s != e:
            # Consume the children's outputs (their memory is accounted
            # for inside wbar during this step).
            for c in cindex[s:e]:
                share = resident[c]
                if share:
                    resident_total -= share
                    resident[c] = 0

        need = wbar_v + resident_total
        if memory is not None and need > memory:
            if wbar_v > memory:
                raise InfeasibleSchedule(
                    fif_overflow_message(v, wbar_v, memory)
                )
            if pending:
                if len(pending) * 8 < len(heap):
                    for u in pending:
                        if resident[u] > 0:
                            heappush(heap, (_priority(u), u))
                else:
                    heap.extend(
                        (_priority(u), u) for u in pending if resident[u] > 0
                    )
                    heapify(heap)
                pending.clear()
            excess = need - memory
            while excess > 0:
                while heap:
                    k = heap[0][1]
                    if resident[k] > 0:
                        break
                    heappop(heap)
                if not heap:
                    raise InfeasibleSchedule(
                        fif_stuck_message(pos[v], v, excess, memory)
                    )
                k = heap[0][1]
                r_k = resident[k]
                take = r_k if r_k < excess else excess
                resident[k] = r_k - take
                io[k] += take
                if r_k == take:
                    heappop(heap)
                resident_total -= take
                io_total += take
                excess -= take
            need = memory
        if need > peak:
            peak = need

        resident[v] = w_v
        resident_total += w_v
        push_pending(v)

    return {v: a for v, a in enumerate(io) if a}, io_total, peak


# ----------------------------------------------------------------------
# subtree / shape statistics
# ----------------------------------------------------------------------
def structure_stats(at: ArrayTree) -> dict[str, int | float]:
    """One-pass shape numbers: depth, leaves, arity — no per-node objects."""
    n = at.n
    start = at._child_start
    max_depth = at.depth()
    leaves = 0
    max_arity = 0
    internal = 0
    arity_sum = 0
    prev = start[0]
    for i in range(1, n + 1):
        cur = start[i]
        a = cur - prev
        prev = cur
        if a == 0:
            leaves += 1
        else:
            internal += 1
            arity_sum += a
            if a > max_arity:
                max_arity = a
    return {
        "depth": max_depth,
        "leaves": leaves,
        "max_arity": max_arity,
        "mean_arity_internal": (arity_sum / internal) if internal else 0.0,
    }
