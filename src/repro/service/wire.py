"""The binary wire protocol: length-framed buffers, zero JSON on the tree path.

``bench_service.py``'s large-batch burst showed the service wire — not
compute — as the bottleneck: every tree round-tripped as a JSON element
list, parsed and re-validated element by element on the server's event
loop.  This module is the binary alternative, negotiated per request via
``Content-Type`` / ``Accept`` (see :data:`WIRE_CONTENT_TYPE`); JSON
clients keep working unchanged against the same endpoint.

Frame layout (everything little-endian)::

    offset  size  field
    0       4     magic  b"RIOW"
    4       1     wire version        (u8,  = WIRE_VERSION)
    5       1     frame kind          (u8,  1 = request, 2 = response)
    6       2     protocol version    (u16, = outcome.PROTOCOL_VERSION)
    8       4     engine version      (u32, = requests.ENGINE_VERSION)
    12      4     header length H     (u32)
    16      8     payload length P    (u64)
    24      H     header  — one value in the binary codec below
    24+H    P     payload — packed tree columns (requests; empty for
                  responses): [n_trees, total] + offsets + parents +
                  weights, int64 LE — exactly the canonical
                  :meth:`repro.core.forest.ArrayForest.pack` layout

The **header codec** is a small deterministic binary encoding of the
JSON value universe (it exists so request *fields* and response
*envelopes* need no JSON either, and so golden-bytes tests can pin the
format).  One tag byte per value:

====  =========================================================
tag   encoding
====  =========================================================
``N`` none
``T`` / ``F``  booleans
``i`` int64: 8 bytes signed LE
``I`` big int: u32 length + signed-LE magnitude bytes
``f`` float64: 8 bytes LE (exact bit round-trip)
``s`` str: u32 length + UTF-8 bytes
``a`` int column: u32 count + count×8 bytes int64 LE (decodes
      to a plain list of ints — the schedule/io fast path)
``l`` list: u32 count + encoded items (non-int64 content)
``m`` map: u32 count + sorted (u32 key length + UTF-8 key,
      encoded value) pairs; keys must be strings
====  =========================================================

Every decoder is strict and total: truncated, length-lying,
version-skewed or bit-flipped frames raise
:class:`~repro.api.errors.ProtocolError` with one of the frame-level
codes (``bad_frame`` / ``unsupported_wire_version`` / ``version_skew``)
— never a crash, hang or partial decode.  The conformance suite in
``tests/test_wire_conformance.py`` fuzzes exactly that contract and
pins the golden bytes.

Version policy: :data:`WIRE_VERSION` names the *frame layout* and only
changes when these offsets/tags do; the embedded protocol and engine
versions are the ones every JSON response already echoes, and a
mismatch in either is rejected as ``version_skew`` so a client's cache
keys can never silently disagree with the server's.
"""

from __future__ import annotations

import struct
from typing import Any, Mapping

import numpy as np

from ..api.errors import ProtocolError
from ..api.outcome import PROTOCOL_VERSION
from ..api.requests import ENGINE_VERSION, MAX_NODES, Request, parse_request
from ..core.arraytree import _MAX_TOTAL_WEIGHT
from ..core.tree import TaskTree, TreeError

__all__ = [
    "FRAME_REQUEST",
    "FRAME_RESPONSE",
    "JSON_CONTENT_TYPE",
    "WIRE_CONTENT_TYPE",
    "WIRE_VERSION",
    "WireEncodeError",
    "accepts_wire",
    "decode_request_frame",
    "decode_response_frame",
    "encode_request_frame",
    "encode_response_frame",
    "media_type",
    "request_from_frame",
]

#: bump only when the frame layout below changes incompatibly.
WIRE_VERSION = 1

#: the negotiated content types.  A request body in the binary frame
#: format is posted with the wire content type; a client that wants a
#: binary *response* says so in ``Accept``.  Anything JSON-ish keeps
#: today's behaviour.
WIRE_CONTENT_TYPE = "application/x-repro-frame"
JSON_CONTENT_TYPE = "application/json"

FRAME_REQUEST = 1
FRAME_RESPONSE = 2

_MAGIC = b"RIOW"
_HEAD = struct.Struct("<4sBBHIIQ")  # magic, wire, kind, protocol, engine, H, P
_HEAD_SIZE = _HEAD.size  # 24

#: nesting bound for the header codec (far above any real envelope; a
#: hostile frame cannot recurse the decoder into a stack overflow).
_MAX_DEPTH = 32


class WireEncodeError(ValueError):
    """This value cannot ride a binary frame (caller falls back to JSON)."""


def _bad(message: str) -> ProtocolError:
    return ProtocolError("bad_frame", message)


def media_type(value: str | None) -> str:
    """The bare media type of a ``Content-Type`` header (no parameters)."""
    return (value or "").split(";", 1)[0].strip().lower()


def accepts_wire(accept: str | None) -> bool:
    """Whether an ``Accept`` header asks for binary frame responses."""
    return WIRE_CONTENT_TYPE in (
        part.split(";", 1)[0].strip().lower() for part in (accept or "").split(",")
    )


# --------------------------------------------------------------------- #
# the header codec
# --------------------------------------------------------------------- #


def _encode_value(obj: Any, out: list[bytes], depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise WireEncodeError("value nesting too deep for a frame header")
    if obj is None:
        out.append(b"N")
    elif isinstance(obj, bool):
        out.append(b"T" if obj else b"F")
    elif isinstance(obj, int):
        if -(2**63) <= obj < 2**63:
            out.append(b"i" + obj.to_bytes(8, "little", signed=True))
        else:
            raw = obj.to_bytes(obj.bit_length() // 8 + 1, "little", signed=True)
            out.append(b"I" + len(raw).to_bytes(4, "little") + raw)
    elif isinstance(obj, float):
        out.append(b"f" + struct.pack("<d", obj))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(b"s" + len(raw).to_bytes(4, "little") + raw)
    elif isinstance(obj, Mapping):
        keys = list(obj)
        if any(not isinstance(k, str) for k in keys):
            raise WireEncodeError("frame maps require string keys")
        keys.sort()
        out.append(b"m" + len(keys).to_bytes(4, "little"))
        for key in keys:
            raw = key.encode("utf-8")
            out.append(len(raw).to_bytes(4, "little") + raw)
            _encode_value(obj[key], out, depth + 1)
    elif isinstance(obj, (list, tuple)):
        if all(type(x) is int for x in obj):
            try:
                column = np.asarray(obj, dtype="<i8")
            except (OverflowError, ValueError):
                column = None  # beyond int64: the generic list handles it
            if column is not None:
                out.append(b"a" + len(obj).to_bytes(4, "little") + column.tobytes())
                return
        out.append(b"l" + len(obj).to_bytes(4, "little"))
        for item in obj:
            _encode_value(item, out, depth + 1)
    else:
        raise WireEncodeError(f"cannot wire-encode a {type(obj).__name__}")


def _encode(obj: Any) -> bytes:
    out: list[bytes] = []
    _encode_value(obj, out, 0)
    return b"".join(out)


_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


def _decode_value(buf, pos: int, end: int, depth: int) -> tuple[Any, int]:
    """One bounds-checked value off ``buf[pos:end]``; returns (value, pos).

    A flat offset walk rather than a cursor object: this runs once per
    header value on both sides of every binary exchange, so call and
    attribute overhead is the dominant cost at burst rates.
    """
    if depth > _MAX_DEPTH:
        raise _bad("frame header nests deeper than the codec allows")
    if pos >= end:
        raise _bad("truncated frame: value tag needs 1 bytes, 0 remain")
    tag = buf[pos]
    pos += 1
    if tag == 0x6D:  # m
        if end - pos < 4:
            raise _bad(f"truncated frame: map count needs 4 bytes, {end - pos} remain")
        count = _U32.unpack_from(buf, pos)[0]
        pos += 4
        if count > end - pos:
            raise _bad(f"map of {count} entries cannot fit {end - pos} bytes")
        result: dict[str, Any] = {}
        for _ in range(count):
            if end - pos < 4:
                raise _bad(f"truncated frame: map key length needs 4 bytes, "
                           f"{end - pos} remain")
            length = _U32.unpack_from(buf, pos)[0]
            pos += 4
            if length > end - pos:
                raise _bad(f"truncated frame: map key needs {length} bytes, "
                           f"{end - pos} remain")
            try:
                key = str(buf[pos : pos + length], "utf-8")
            except UnicodeDecodeError as exc:
                raise _bad(f"map key is not valid UTF-8: {exc}") from None
            pos += length
            result[key], pos = _decode_value(buf, pos, end, depth + 1)
        return result, pos
    if tag == 0x73:  # s
        if end - pos < 4:
            raise _bad(f"truncated frame: string length needs 4 bytes, "
                       f"{end - pos} remain")
        length = _U32.unpack_from(buf, pos)[0]
        pos += 4
        if length > end - pos:
            raise _bad(f"truncated frame: string needs {length} bytes, "
                       f"{end - pos} remain")
        try:
            return str(buf[pos : pos + length], "utf-8"), pos + length
        except UnicodeDecodeError as exc:
            raise _bad(f"string is not valid UTF-8: {exc}") from None
    if tag == 0x69:  # i
        if end - pos < 8:
            raise _bad(f"truncated frame: int64 needs 8 bytes, {end - pos} remain")
        return _I64.unpack_from(buf, pos)[0], pos + 8
    if tag == 0x61:  # a
        if end - pos < 4:
            raise _bad(f"truncated frame: int-column count needs 4 bytes, "
                       f"{end - pos} remain")
        count = _U32.unpack_from(buf, pos)[0]
        pos += 4
        if count * 8 > end - pos:
            raise _bad(f"truncated frame: int column needs {count * 8} bytes, "
                       f"{end - pos} remain")
        column = np.frombuffer(buf, dtype="<i8", count=count, offset=pos).tolist()
        return column, pos + count * 8
    if tag == 0x4E:  # N
        return None, pos
    if tag == 0x54:  # T
        return True, pos
    if tag == 0x46:  # F
        return False, pos
    if tag == 0x66:  # f
        if end - pos < 8:
            raise _bad(f"truncated frame: float64 needs 8 bytes, {end - pos} remain")
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == 0x49:  # I
        if end - pos < 4:
            raise _bad(f"truncated frame: big-int length needs 4 bytes, "
                       f"{end - pos} remain")
        length = _U32.unpack_from(buf, pos)[0]
        pos += 4
        if length > end - pos:
            raise _bad(f"truncated frame: big int needs {length} bytes, "
                       f"{end - pos} remain")
        return (
            int.from_bytes(buf[pos : pos + length], "little", signed=True),
            pos + length,
        )
    if tag == 0x6C:  # l
        if end - pos < 4:
            raise _bad(f"truncated frame: list count needs 4 bytes, "
                       f"{end - pos} remain")
        count = _U32.unpack_from(buf, pos)[0]
        pos += 4
        if count > end - pos:  # each item costs at least its tag byte
            raise _bad(f"list of {count} items cannot fit {end - pos} bytes")
        items = []
        for _ in range(count):
            item, pos = _decode_value(buf, pos, end, depth + 1)
            items.append(item)
        return items, pos
    raise _bad(f"unknown value tag 0x{tag:02x}")


def _decode(section: memoryview, what: str) -> Any:
    value, pos = _decode_value(section, 0, len(section), 0)
    if pos != len(section):
        raise _bad(f"{what} carries {len(section) - pos} bytes of trailing junk")
    return value


# --------------------------------------------------------------------- #
# frames
# --------------------------------------------------------------------- #


def _frame(kind: int, header: bytes, payload: bytes = b"") -> bytes:
    head = _HEAD.pack(
        _MAGIC, WIRE_VERSION, kind, PROTOCOL_VERSION, ENGINE_VERSION,
        len(header), len(payload),
    )
    return head + header + payload


def _split_frame(data, expect_kind: int) -> tuple[memoryview, memoryview]:
    view = memoryview(bytes(data) if not isinstance(data, (bytes, bytearray, memoryview)) else data)
    if len(view) < _HEAD_SIZE:
        raise _bad(
            f"frame of {len(view)} bytes is shorter than the {_HEAD_SIZE}-byte head"
        )
    magic, version, kind, protocol, engine, hlen, plen = _HEAD.unpack_from(view, 0)
    if magic != _MAGIC:
        raise _bad(f"bad magic {bytes(magic)!r}; expected {_MAGIC!r}")
    if version != WIRE_VERSION:
        raise ProtocolError(
            "unsupported_wire_version",
            f"frame speaks wire version {version}; this side speaks {WIRE_VERSION}",
        )
    if kind != expect_kind:
        raise _bad(f"expected frame kind {expect_kind}, got {kind}")
    if protocol != PROTOCOL_VERSION or engine != ENGINE_VERSION:
        raise ProtocolError(
            "version_skew",
            f"frame was built for protocol {protocol} / engine {engine}; "
            f"this side runs protocol {PROTOCOL_VERSION} / engine {ENGINE_VERSION}",
        )
    if _HEAD_SIZE + hlen + plen != len(view):
        raise _bad(
            f"frame lengths lie: head declares {hlen}+{plen} body bytes, "
            f"{len(view) - _HEAD_SIZE} are present"
        )
    return view[_HEAD_SIZE : _HEAD_SIZE + hlen], view[_HEAD_SIZE + hlen :]


def _tree_columns(payload: Mapping[str, Any]) -> tuple[np.ndarray, np.ndarray]:
    """The request's tree as int64 columns, or :class:`WireEncodeError`."""
    tree = payload.get("tree")
    if not isinstance(tree, Mapping):
        raise WireEncodeError("request has no 'tree' object to frame")
    columns = []
    for name in ("parents", "weights"):
        col = tree.get(name)
        if col is None or isinstance(col, (str, bytes, Mapping)):
            raise WireEncodeError(f"'tree.{name}' is not an integer column")
        try:
            arr = np.asarray(col)
        except (TypeError, ValueError, OverflowError) as exc:
            raise WireEncodeError(f"'tree.{name}' is not an integer column: {exc}")
        if arr.ndim != 1 or arr.dtype == np.bool_ or not np.issubdtype(
            arr.dtype, np.integer
        ):
            # beyond-int64 weights, floats, bools, ragged input: the JSON
            # path (and its exact validation vocabulary) handles those
            raise WireEncodeError(f"'tree.{name}' is not an int64 column")
        columns.append(np.asarray(arr, dtype="<i8"))
    parents, weights = columns
    if len(parents) != len(weights):
        raise WireEncodeError(
            f"tree columns disagree on size: {len(parents)} != {len(weights)}"
        )
    if len(parents) == 0:
        raise WireEncodeError("tree has no nodes")
    return parents, weights


def encode_request_frame(payload: Mapping[str, Any]) -> bytes:
    """Frame one wire request (the dict shape :func:`parse_request` takes).

    The scalar fields ride the header codec; the tree rides the payload
    section as packed canonical columns.  Raises
    :class:`WireEncodeError` when the request cannot be framed (no tree,
    beyond-int64 weights, non-codec field values) — callers fall back to
    JSON, which accepts everything the schema does.
    """
    parents, weights = _tree_columns(payload)
    fields = {k: v for k, v in payload.items() if k != "tree"}
    n = len(parents)
    head = np.array([1, n, 0, n], dtype="<i8")  # n_trees, total, offsets
    body = head.tobytes() + parents.tobytes() + weights.tobytes()
    return _frame(FRAME_REQUEST, _encode(fields), body)


def decode_request_frame(data) -> tuple[dict[str, Any], np.ndarray, np.ndarray]:
    """Split a request frame into scalar fields and raw tree columns.

    Returns ``(fields, parents, weights)`` — the fields dict has no
    ``tree`` entry; the columns are int64 numpy views, **not yet
    validated as a tree** (see :func:`request_from_frame` for the
    server-side path that is).  Raises
    :class:`~repro.api.errors.ProtocolError` on any malformation.
    """
    header, payload = _split_frame(data, FRAME_REQUEST)
    fields = _decode(header, "request header")
    if not isinstance(fields, dict):
        raise _bad("request header must decode to a field map")
    if len(payload) % 8:
        raise _bad(f"tree payload of {len(payload)} bytes is not int64-aligned")
    words = np.frombuffer(payload, dtype="<i8")
    if len(words) < 2:
        raise _bad("tree payload too short for its [n_trees, total] head")
    n_trees, total = int(words[0]), int(words[1])
    if n_trees != 1:
        raise _bad(f"request frames carry exactly one tree, got n_trees={n_trees}")
    if total < 0 or len(words) != 2 + (n_trees + 1) + 2 * total:
        raise _bad(
            f"tree payload of {len(words)} words does not match its head "
            f"(n_trees={n_trees}, total={total})"
        )
    offsets = words[2 : 2 + n_trees + 1]
    if int(offsets[0]) != 0 or int(offsets[-1]) != total:
        raise _bad(
            f"tree offsets {offsets.tolist()} do not span [0, {total}]"
        )
    parents = words[4 : 4 + total]
    weights = words[4 + total :]
    return fields, parents, weights


def _validate_columns(p: np.ndarray, w: np.ndarray) -> None:
    """Accept exactly the trees :class:`~repro.core.arraytree.ArrayTree`
    accepts, in a fraction of the time.

    The columns arrive as int64 buffer views straight off the frame, so
    the element-type conversion ArrayTree would re-run is already done;
    what remains is the structural contract — non-negative weights,
    total within the flat engine's int64 budget, exactly one root,
    parents in range, acyclic (which, with every chain ending at the
    single root, is connectivity too).  Acyclicity is checked by
    pointer doubling: ``anc`` holds each node's ``2^k``-step ancestor,
    so after ``ceil(log2 n)`` rounds every acyclic chain has run off
    the root into ``-1`` and only cycle members still point at a node.
    """
    n = len(p)
    if n == 0:
        raise TreeError("a task tree needs at least one node")
    if bool(np.any(w < 0)):
        raise TreeError("negative weight")
    if float(np.sum(w, dtype=np.float64)) > _MAX_TOTAL_WEIGHT:
        raise TreeError("total weight exceeds the array engine's budget")
    if int(np.count_nonzero(p == -1)) != 1:
        raise TreeError("need exactly one root (parent -1)")
    if bool(np.any((p < -1) | (p >= n))):
        raise TreeError("out-of-range parent")
    anc = np.empty(n + 1, dtype=np.int64)
    np.copyto(anc[:n], np.where(p >= 0, p, n))  # -1 → the sentinel slot
    anc[n] = n  # the sentinel absorbs finished chains
    step = 1
    while step < n:
        anc = anc[anc]
        step *= 2
    if bool(np.any(anc[:n] != n)):
        raise TreeError("parent links contain a cycle")


def request_from_frame(data) -> Request:
    """Decode **and validate** a request frame into a typed request.

    This is the server's binary fast path: the tree is validated once,
    vectorised, by :func:`_validate_columns` (falling back to the object
    tree's validator for the rare inputs the flat engine refuses, e.g.
    weight totals beyond int64 headroom, so the two encodings accept
    exactly the same trees) and then handed to
    :func:`~repro.api.requests.parse_request` as a *trusted* column
    pair — no JSON, no per-element type checks, no second validation.
    """
    fields, parents, weights = decode_request_frame(data)
    if len(parents) > MAX_NODES:
        raise ProtocolError(
            "payload_too_large",
            f"tree has {len(parents)} nodes > service limit {MAX_NODES}; "
            "use the offline batch engine for bulk workloads",
        )
    try:
        _validate_columns(parents, weights)
    except TreeError:
        try:
            TaskTree(parents.tolist(), weights.tolist())
        except TreeError as exc:
            raise ProtocolError("invalid_tree", str(exc)) from exc
    return parse_request(
        fields,
        trusted_tree=(tuple(parents.tolist()), tuple(weights.tolist())),
    )


def encode_response_frame(envelope: Mapping[str, Any]) -> bytes:
    """Frame one response envelope (success or error, provenance included)."""
    return _frame(FRAME_RESPONSE, _encode(envelope))


def decode_response_frame(data) -> dict[str, Any]:
    """Decode a response frame back into the envelope dict.

    The result is value-identical to what the JSON path's
    ``json.loads`` would have produced for the same envelope — ints stay
    ints, floats round-trip bit-exact — which is what makes canonical
    outcome comparison across encodings byte-identical.
    """
    header, payload = _split_frame(data, FRAME_RESPONSE)
    if len(payload):
        raise _bad(f"response frames carry no payload, got {len(payload)} bytes")
    envelope = _decode(header, "response header")
    if not isinstance(envelope, dict) or "ok" not in envelope:
        raise _bad("response header must decode to an envelope with 'ok'")
    return envelope
