"""Wire schema of the scheduling service — a thin view of :mod:`repro.api`.

Since the typed solver API became the one request model for every
surface, this module no longer owns any validation or key-derivation
code: the request dataclasses, :func:`parse_request` and the stable
error vocabulary live in :mod:`repro.api.requests` /
:mod:`repro.api.errors`, and the success/error envelopes in
:mod:`repro.api.outcome`.  What remains here is the wire-level surface
the server and its clients share:

* :data:`PROTOCOL_VERSION` — echoed in every response; bumped on
  incompatible wire-format changes;
* :data:`HTTP_STATUS` / :data:`ERROR_CODES` — the status each stable
  code maps to (clients dispatch on the *code*, never the message);
* :func:`ok_envelope` / :func:`error_envelope` — the uniform response
  bodies (exactly the canonical half of an
  :class:`~repro.api.outcome.Outcome` plus cache provenance);
* the request types and :func:`parse_request`, re-exported so existing
  imports keep working;
* the binary frame codec of :mod:`repro.service.wire`
  (:data:`~repro.service.wire.WIRE_VERSION`,
  :data:`~repro.service.wire.WIRE_CONTENT_TYPE` and the four
  encode/decode functions), re-exported here because frames are as much
  "the wire schema" as the JSON envelopes are.

A request's content address (:meth:`key`) is the same buffer digest the
batch engine's work units use — one canonicalisation shared by the
server's tuples and a worker's numpy views of the shared-memory
transport — so identical requests collapse onto one computation and one
cache entry on every surface, and bumping
:data:`~repro.api.requests.ENGINE_VERSION` invalidates served results
and offline shards alike.

.. deprecated:: 1.2.0
    Import the request types, ``parse_request``, ``ProtocolError`` and
    the envelope helpers from :mod:`repro.api`; these re-exports remain
    for backwards compatibility (removal no earlier than 2.0).
"""

from __future__ import annotations

from ..api.errors import ERROR_CODES, HTTP_STATUS, ProtocolError
from ..api.outcome import PROTOCOL_VERSION, error_envelope, ok_envelope
from ..api.requests import (
    DEFAULT_PAGING_POLICIES,
    MAX_NODES,
    ExactRequest,
    PagingRequest,
    Request,
    SolveRequest,
    parse_request,
)
from .wire import (
    WIRE_CONTENT_TYPE,
    WIRE_VERSION,
    decode_request_frame,
    decode_response_frame,
    encode_request_frame,
    encode_response_frame,
)

__all__ = [
    "DEFAULT_PAGING_POLICIES",
    "ERROR_CODES",
    "HTTP_STATUS",
    "MAX_NODES",
    "PROTOCOL_VERSION",
    "WIRE_CONTENT_TYPE",
    "WIRE_VERSION",
    "decode_request_frame",
    "decode_response_frame",
    "encode_request_frame",
    "encode_response_frame",
    "ProtocolError",
    "Request",
    "SolveRequest",
    "PagingRequest",
    "ExactRequest",
    "parse_request",
    "error_envelope",
    "ok_envelope",
]
