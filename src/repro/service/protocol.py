"""Request/response schema of the scheduling service.

One wire format, JSON over HTTP.  A *request* asks one question about
one tree under one memory bound — the same three questions the CLI
answers offline:

``solve``
    run one registered strategy, return its traversal and I/O volume;
``paging``
    execute the strategy's schedule through the page-granular pager
    under one or more eviction policies;
``exact``
    branch-and-bound optimum plus the paper heuristics' gaps
    (small trees only).

Validation happens here, before anything touches a queue or a worker:
:func:`parse_request` either returns a frozen request object or raises
:class:`ProtocolError` with a **stable machine-readable code** from
:data:`ERROR_CODES` (codes are part of the protocol; messages are for
humans and may change).  Each request object canonicalises itself into
``to_payload()`` — the dict shipped to worker processes — and derives
its content address with :meth:`key`, which is what makes identical
requests collapse onto one computation: the digest is built from the
same :func:`repro.datasets.store.cache_key` as the batch engine's work
units and shares its engine-version salt, so bumping the engine version
invalidates served results and offline shards alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..core.engine import ENGINES
from ..core.tree import TaskTree, TreeError
from ..datasets.store import cache_key_buffers
from ..experiments.batch import ENGINE_VERSION
from ..experiments.registry import strategy_names
from ..io.policies import POLICIES

__all__ = [
    "DEFAULT_PAGING_POLICIES",
    "ERROR_CODES",
    "HTTP_STATUS",
    "MAX_NODES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "SolveRequest",
    "PagingRequest",
    "ExactRequest",
    "parse_request",
    "error_envelope",
    "ok_envelope",
]

#: bump on incompatible wire-format changes; echoed in every response.
PROTOCOL_VERSION = 1

#: hard ceiling on accepted tree sizes — the service is a query front-end,
#: not a bulk pipeline; anything larger belongs in the offline batch engine.
MAX_NODES = 100_000

#: default policy set for ``paging`` requests — the same four, in the
#: same order, as the offline ``repro-ioschedule paging`` command, so a
#: served request without an explicit list matches the CLI's output.
DEFAULT_PAGING_POLICIES = ("belady", "lru", "random", "pessimal")

#: the stable error vocabulary.  Values are the HTTP statuses the server
#: maps each code to; clients should dispatch on the *code*, never on the
#: message text.
HTTP_STATUS: dict[str, int] = {
    "bad_json": 400,        # body is not a JSON object
    "bad_request": 400,     # envelope-level problem (not a dict, missing kind)
    "unknown_kind": 400,    # kind not in {solve, paging, exact}
    "bad_field": 400,       # a field has the wrong type/range
    "invalid_tree": 400,    # parents/weights do not define a valid tree
    "unknown_algorithm": 400,
    "unknown_policy": 400,
    "not_found": 404,       # no such endpoint
    "method_not_allowed": 405,
    "payload_too_large": 413,
    "unsolvable": 422,      # validation passed but the solver refused/failed
    "queue_full": 429,      # backpressure: admission queue at capacity
    "internal": 500,
    "timeout": 504,         # per-request deadline elapsed before completion
}

ERROR_CODES = frozenset(HTTP_STATUS)


class ProtocolError(ValueError):
    """A request that violates the schema; carries a stable error code."""

    def __init__(self, code: str, message: str):
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message


def error_envelope(code: str, message: str) -> dict[str, Any]:
    """The uniform error response body."""
    return {
        "ok": False,
        "protocol": PROTOCOL_VERSION,
        "error": {"code": code, "message": message},
    }


def ok_envelope(
    result: Mapping[str, Any],
    *,
    key: str,
    cached: bool = False,
    deduped: bool = False,
) -> dict[str, Any]:
    """The uniform success response body.

    ``cached`` — served from the on-disk result cache; ``deduped`` —
    coalesced onto an identical in-flight request's computation.
    """
    return {
        "ok": True,
        "protocol": PROTOCOL_VERSION,
        "key": key,
        "cached": cached,
        "deduped": deduped,
        "result": dict(result),
    }


def _fail(code: str, message: str) -> ProtocolError:
    return ProtocolError(code, message)


def _request_key(request: "Request", params: dict[str, Any]) -> str:
    """Buffer-digest content address of a request, computed once.

    SHA-256 over the canonical int64 ``parents``/``weights`` buffers
    plus the request's scalar parameters — the same digest whether the
    columns are the server's Python tuples or a worker's numpy views of
    the shared-memory transport, so both sides agree on the address
    without ever marshalling element lists.  Cached on the (frozen)
    request: the server's dedup/cache lookup and the worker's RNG
    seeding reuse one canonicalisation.
    """
    cached = request.__dict__.get("_cached_key")
    if cached is None:
        cached = cache_key_buffers(
            params, {"parents": request.parents, "weights": request.weights}
        )
        object.__setattr__(request, "_cached_key", cached)
    return cached


def _require_int(value: Any, field: str, *, lo: int, hi: int) -> int:
    if type(value) is not int or not (lo <= value <= hi):
        raise _fail(
            "bad_field", f"{field!r} must be an integer in [{lo}, {hi}], got {value!r}"
        )
    return value


def _parse_tree(obj: Mapping[str, Any]) -> tuple[tuple[int, ...], tuple[int, ...]]:
    tree = obj.get("tree")
    if not isinstance(tree, Mapping):
        raise _fail("bad_field", "'tree' must be an object with 'parents' and 'weights'")
    parents = tree.get("parents")
    weights = tree.get("weights")
    for name, seq in (("parents", parents), ("weights", weights)):
        if not isinstance(seq, (list, tuple)) or any(
            type(x) is not int for x in seq
        ):
            raise _fail("bad_field", f"'tree.{name}' must be a list of integers")
    if len(parents) > MAX_NODES:
        raise _fail(
            "payload_too_large",
            f"tree has {len(parents)} nodes > service limit {MAX_NODES}; "
            "use the offline batch engine for bulk workloads",
        )
    try:
        TaskTree(parents, weights)  # full structural validation
    except TreeError as exc:
        raise _fail("invalid_tree", str(exc)) from exc
    return tuple(parents), tuple(weights)


def _parse_algorithm(obj: Mapping[str, Any], *, default: str = "RecExpand") -> str:
    algorithm = obj.get("algorithm", default)
    known = strategy_names()
    if algorithm not in known:
        raise _fail(
            "unknown_algorithm", f"unknown algorithm {algorithm!r}; available: {known}"
        )
    return algorithm


def _parse_engine(obj: Mapping[str, Any]) -> str:
    """The optional kernel-engine override (``auto``/``object``/``array``).

    Purely a performance knob: both engines return identical results, so
    the engine is **not** part of the request's content address — a
    cached result computed under either engine serves both.
    """
    engine = obj.get("engine", "auto")
    if engine not in ENGINES:
        raise _fail(
            "bad_field", f"'engine' must be one of {list(ENGINES)}, got {engine!r}"
        )
    return engine


def _parse_timeout(obj: Mapping[str, Any]) -> float | None:
    timeout = obj.get("timeout")
    if timeout is None:
        return None
    if type(timeout) not in (int, float) or not (0 < timeout <= 3600):
        raise _fail("bad_field", f"'timeout' must be a number in (0, 3600], got {timeout!r}")
    return float(timeout)


@dataclass(frozen=True)
class SolveRequest:
    """Run one registered strategy on one tree."""

    parents: tuple[int, ...]
    weights: tuple[int, ...]
    memory: int
    algorithm: str
    timeout: float | None = None
    engine: str = "auto"

    kind = "solve"

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "tree": {"parents": list(self.parents), "weights": list(self.weights)},
            "memory": self.memory,
            "algorithm": self.algorithm,
            "engine": self.engine,
        }

    def key(self) -> str:
        return _request_key(
            self,
            {
                "kind": "service-solve",
                "version": ENGINE_VERSION,
                "memory": self.memory,
                "algorithm": self.algorithm,
            },
        )


@dataclass(frozen=True)
class PagingRequest:
    """Page-granular policy comparison on one strategy's schedule."""

    parents: tuple[int, ...]
    weights: tuple[int, ...]
    memory: int
    algorithm: str
    page_size: int
    policies: tuple[str, ...]
    seed: int
    timeout: float | None = None
    engine: str = "auto"

    kind = "paging"

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "tree": {"parents": list(self.parents), "weights": list(self.weights)},
            "memory": self.memory,
            "algorithm": self.algorithm,
            "page_size": self.page_size,
            "policies": list(self.policies),
            "seed": self.seed,
            "engine": self.engine,
        }

    def key(self) -> str:
        return _request_key(
            self,
            {
                "kind": "service-paging",
                "version": ENGINE_VERSION,
                "memory": self.memory,
                "algorithm": self.algorithm,
                "page_size": self.page_size,
                "policies": list(self.policies),
                "seed": self.seed,
            },
        )


@dataclass(frozen=True)
class ExactRequest:
    """Exact branch-and-bound optimum plus paper-heuristic gaps."""

    parents: tuple[int, ...]
    weights: tuple[int, ...]
    memory: int
    max_states: int
    node_limit: int
    timeout: float | None = None
    engine: str = "auto"

    kind = "exact"

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "tree": {"parents": list(self.parents), "weights": list(self.weights)},
            "memory": self.memory,
            "max_states": self.max_states,
            "node_limit": self.node_limit,
            "engine": self.engine,
        }

    def key(self) -> str:
        return _request_key(
            self,
            {
                "kind": "service-exact",
                "version": ENGINE_VERSION,
                "memory": self.memory,
                "max_states": self.max_states,
                "node_limit": self.node_limit,
            },
        )


Request = SolveRequest | PagingRequest | ExactRequest

_KINDS = ("solve", "paging", "exact")


def parse_request(obj: Any, *, trusted_tree=None) -> Request:
    """Validate a decoded JSON body into a frozen request object.

    ``trusted_tree`` — a pre-validated ``(parents, weights)`` column
    pair — skips the tree re-validation and is how the shared-memory
    transport hands workers their buffer views: the server already ran
    :func:`_parse_tree` on the original body, so re-marshalling the
    columns into JSON lists just to check them again would defeat the
    zero-copy hand-off.  All scalar fields are still validated.

    Raises
    ------
    ProtocolError
        with a stable code from :data:`ERROR_CODES` on any violation.
    """
    if not isinstance(obj, Mapping):
        raise _fail("bad_request", "request body must be a JSON object")
    kind = obj.get("kind", "solve")
    if kind not in _KINDS:
        raise _fail("unknown_kind", f"unknown kind {kind!r}; expected one of {_KINDS}")
    if trusted_tree is not None:
        parents, weights = trusted_tree
    else:
        parents, weights = _parse_tree(obj)
    memory = _require_int(obj.get("memory"), "memory", lo=1, hi=10**15)
    timeout = _parse_timeout(obj)
    engine = _parse_engine(obj)

    if kind == "solve":
        return SolveRequest(
            parents=parents,
            weights=weights,
            memory=memory,
            algorithm=_parse_algorithm(obj),
            timeout=timeout,
            engine=engine,
        )

    if kind == "paging":
        policies = obj.get("policies", list(DEFAULT_PAGING_POLICIES))
        if (
            not isinstance(policies, (list, tuple))
            or not policies
            or any(not isinstance(p, str) for p in policies)
        ):
            raise _fail("bad_field", "'policies' must be a non-empty list of names")
        unknown = [p for p in policies if p not in POLICIES]
        if unknown:
            raise _fail(
                "unknown_policy",
                f"unknown policies {unknown}; available: {sorted(POLICIES)}",
            )
        return PagingRequest(
            parents=parents,
            weights=weights,
            memory=memory,
            algorithm=_parse_algorithm(obj),
            page_size=_require_int(obj.get("page_size", 1), "page_size", lo=1, hi=10**9),
            policies=tuple(policies),
            seed=_require_int(obj.get("seed", 0), "seed", lo=0, hi=2**32 - 1),
            timeout=timeout,
            engine=engine,
        )

    return ExactRequest(
        parents=parents,
        weights=weights,
        memory=memory,
        max_states=_require_int(
            obj.get("max_states", 2_000_000), "max_states", lo=1, hi=10**9
        ),
        node_limit=_require_int(obj.get("node_limit", 24), "node_limit", lo=1, hi=64),
        timeout=timeout,
        engine=engine,
    )
