"""Asynchronous pipelined client for the scheduling service (stdlib asyncio).

Where :class:`~repro.service.client.ServiceClient` opens one connection
per call, this client keeps a small pool of HTTP/1.1 keep-alive
connections and **pipelines** requests over them: many submissions are
in flight per connection at once, responses are matched back to their
futures in FIFO order (HTTP/1.1 pipelining answers strictly in request
order per connection), and the caller awaits each submission
independently — completions surface in whatever order the server
finishes them across the pool.

The combination with the binary wire path (:mod:`repro.service.wire`)
is what the ``bench_service.py`` burst gate measures: no per-request
TCP setup, no request/response round-trip stalls, no JSON on the tree
path.

Failure semantics are built on the service's idempotence: requests are
content-addressed and side-effect-free, so when a connection dies (or
the server hangs up at its keep-alive horizon) every submission still
awaiting a response is transparently resubmitted on a fresh connection,
a bounded number of times.  Cancelling a caller's ``await`` never
desynchronises the stream: the slot stays in the connection's FIFO and
the eventual response is read and discarded.

::

    async with AsyncServiceClient(port=8177) as client:
        outcomes = await asyncio.gather(
            *(client.submit(r) for r in requests)
        )
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from collections import deque
from typing import Any, Mapping

from ..api.errors import ProtocolError
from .client import ServiceError, _WIRE_UNSUPPORTED_CODES
from .wire import (
    JSON_CONTENT_TYPE,
    WIRE_CONTENT_TYPE,
    WireEncodeError,
    decode_response_frame,
    encode_request_frame,
    media_type,
)

__all__ = ["AsyncServiceClient"]


class _Pending:
    """One in-flight submission: its future and what it takes to retry it."""

    __slots__ = ("future", "raw", "retries")

    def __init__(self, future: asyncio.Future, raw: bytes, retries: int):
        self.future = future
        self.raw = raw
        self.retries = retries


class _Connection:
    __slots__ = ("reader", "writer", "pending", "task", "alive", "outbox")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.pending: deque[_Pending] = deque()
        self.task: asyncio.Task | None = None
        self.alive = True
        # write cork: requests queued in the same loop iteration leave
        # in one syscall (see AsyncServiceClient._send)
        self.outbox: list[bytes] = []


class AsyncServiceClient:
    """Pipelined asyncio client for one ``repro-ioschedule serve`` instance.

    Parameters
    ----------
    wire:
        ``"auto"`` (binary frames, transparent JSON fallback — default),
        ``"binary"`` (frames only) or ``"json"``.
    max_connections:
        pool size; submissions spread over the least-loaded live
        connection and new ones are opened lazily while every live one
        is busy.
    retries:
        how many times an unanswered submission is resubmitted after a
        connection loss (safe: requests are idempotent).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8177,
        *,
        timeout: float = 120.0,
        wire: str = "auto",
        max_connections: int = 4,
        retries: int = 2,
    ):
        if wire not in ("auto", "binary", "json"):
            raise ValueError(f"wire must be auto, binary or json, not {wire!r}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.wire = wire
        self.max_connections = max(1, max_connections)
        self.retries = max(0, retries)
        self._wire_ok = wire != "json"
        self._conns: set[_Connection] = set()
        self._lock = asyncio.Lock()
        self._closed = False

    # ---------------------------------------------------------------- #
    # lifecycle
    # ---------------------------------------------------------------- #

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def close(self) -> None:
        """Tear the pool down; outstanding submissions fail as transport."""
        self._closed = True
        conns, self._conns = list(self._conns), set()
        for conn in conns:
            conn.alive = False
            if conn.task is not None:
                conn.task.cancel()
        for conn in conns:
            if conn.task is not None:
                with contextlib.suppress(asyncio.CancelledError, Exception):
                    await conn.task
            with contextlib.suppress(Exception):
                conn.writer.close()
                await conn.writer.wait_closed()
            while conn.pending:
                entry = conn.pending.popleft()
                if not entry.future.done():
                    entry.future.set_exception(
                        ServiceError("transport", "client closed")
                    )

    # ---------------------------------------------------------------- #
    # the connection pool
    # ---------------------------------------------------------------- #

    async def _acquire(self) -> _Connection:
        if self._closed:
            raise ServiceError("transport", "client is closed")
        async with self._lock:
            live = [c for c in self._conns if c.alive]
            best = min(live, key=lambda c: len(c.pending), default=None)
            if best is not None and (
                not best.pending or len(live) >= self.max_connections
            ):
                return best
            try:
                reader, writer = await asyncio.open_connection(self.host, self.port)
            except OSError as exc:
                raise ServiceError(
                    "transport", f"{type(exc).__name__}: {exc}"
                ) from exc
            conn = _Connection(reader, writer)
            conn.task = asyncio.create_task(self._read_loop(conn))
            self._conns.add(conn)
            return conn

    async def _read_loop(self, conn: _Connection) -> None:
        """Match responses to pending futures, FIFO; recover on loss."""
        orderly_close = False
        try:
            while True:
                status, headers, raw = await self._read_response(conn.reader)
                if not conn.pending:
                    break  # a response we never asked for: poisoned stream
                entry = conn.pending.popleft()
                if not entry.future.done():  # cancelled waiters just drain
                    try:
                        entry.future.set_result(
                            self._parse_envelope(status, headers, raw)
                        )
                    except ServiceError as exc:
                        entry.future.set_exception(exc)
                if headers.get("connection", "").strip().lower() == "close":
                    orderly_close = True
                    break
        except (
            ConnectionError,
            OSError,
            asyncio.IncompleteReadError,
            ValueError,
        ):
            pass  # connection died (or spoke garbage); recovery below
        except asyncio.CancelledError:
            raise
        finally:
            conn.alive = False
            self._conns.discard(conn)
            with contextlib.suppress(Exception):
                conn.writer.close()
            # an orderly keep-alive close answered everything it chose
            # to; the rest were never attempted — resubmitting them is
            # not a *retry*, so it does not spend the retry budget
            # (progress is guaranteed: a close header rides a response)
            self._recover(conn, charge=not orderly_close)

    def _recover_if_dead(self, conn: _Connection) -> None:
        """Close the race where a connection died before an entry landed.

        The reader task's cleanup only recovers entries present when it
        ran; an entry appended to an already-dead connection (the pool
        handed it out just as the server hung up) would otherwise wait
        out the full client timeout.
        """
        if not conn.alive and (conn.task is None or conn.task.done()):
            self._recover(conn)

    def _recover(self, conn: _Connection, *, charge: bool = True) -> None:
        """Resubmit (or fail) everything the dead connection still owed."""
        while conn.pending:
            entry = conn.pending.popleft()
            if entry.future.done():
                continue
            if self._closed or (charge and entry.retries <= 0):
                entry.future.set_exception(
                    ServiceError(
                        "transport", "connection lost before a response arrived"
                    )
                )
                continue
            if charge:
                entry.retries -= 1
            task = asyncio.ensure_future(self._resubmit(entry))
            # a failure inside the resubmission lands on entry.future;
            # keep the task referenced until then
            task.add_done_callback(lambda _t: None)

    def _send(self, conn: _Connection, raw: bytes) -> None:
        """Queue bytes for the connection; flush once per loop iteration.

        Pipelined submissions issued in the same iteration (a gather, a
        burst of workers) leave in a single ``write`` instead of one
        syscall each.
        """
        conn.outbox.append(raw)
        if len(conn.outbox) == 1:
            asyncio.get_running_loop().call_soon(self._flush, conn)

    def _flush(self, conn: _Connection) -> None:
        data = b"".join(conn.outbox)
        conn.outbox.clear()
        if data and conn.alive:
            try:
                conn.writer.write(data)
            except (ConnectionError, OSError, RuntimeError):
                conn.alive = False
        self._recover_if_dead(conn)

    async def _resubmit(self, entry: _Pending) -> None:
        try:
            conn = await self._acquire()
            conn.pending.append(entry)
            self._send(conn, entry.raw)
        except ServiceError as exc:
            if not entry.future.done():
                entry.future.set_exception(exc)
        except asyncio.CancelledError:
            if not entry.future.done():
                entry.future.set_exception(
                    ServiceError("transport", "client closed")
                )
            raise

    # ---------------------------------------------------------------- #
    # HTTP plumbing
    # ---------------------------------------------------------------- #

    def _encode_http(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        *,
        content_type: str = JSON_CONTENT_TYPE,
        accept: str | None = None,
    ) -> bytes:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        if body:
            head += f"Content-Type: {content_type}\r\n"
        if accept is not None:
            head += f"Accept: {accept}\r\n"
        return (head + "\r\n").encode("ascii") + body

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> tuple[int, dict[str, str], bytes]:
        head = (await reader.readuntil(b"\r\n\r\n")).decode("latin-1")
        lines = head.split("\r\n")
        parts = lines[0].split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ValueError(f"malformed status line: {lines[0]!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await reader.readexactly(length) if length else b""
        return status, headers, body

    def _parse_envelope(
        self, status: int, headers: dict[str, str], raw: bytes
    ) -> dict[str, Any]:
        if media_type(headers.get("content-type")) == WIRE_CONTENT_TYPE:
            try:
                envelope: Any = decode_response_frame(raw)
            except ProtocolError as exc:
                raise ServiceError(
                    "transport",
                    f"undecodable frame response (HTTP {status}): {exc.message}",
                    status,
                ) from exc
        else:
            try:
                envelope = json.loads(raw)
            except ValueError as exc:
                raise ServiceError(
                    "transport", f"non-JSON response (HTTP {status})", status
                ) from exc
        if isinstance(envelope, dict) and envelope.get("ok") is False:
            error = envelope.get("error", {})
            raise ServiceError(
                str(error.get("code", "internal")),
                str(error.get("message", "unknown error")),
                status,
            )
        return envelope

    async def _roundtrip(self, raw: bytes) -> dict[str, Any]:
        conn = await self._acquire()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        conn.pending.append(_Pending(future, raw, self.retries))
        self._send(conn, raw)
        # a plain call_later deadline, not wait_for: no wrapper task per
        # submission, and cancelling the caller still cancels `future`
        # (the reader drains the abandoned slot either way)
        handle = loop.call_later(self.timeout, self._expire, future, self.timeout)
        try:
            return await future
        finally:
            handle.cancel()

    @staticmethod
    def _expire(future: asyncio.Future, timeout: float) -> None:
        if not future.done():
            future.set_exception(
                ServiceError("transport", f"no response within {timeout:.1f}s")
            )

    # ---------------------------------------------------------------- #
    # API
    # ---------------------------------------------------------------- #

    async def submit(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Submit one raw request dict; returns the full success envelope.

        Concurrency is the caller's: ``asyncio.gather`` many ``submit``
        coroutines and they pipeline over the pool.

        Like the synchronous client, an active
        :func:`repro.obs.trace_context` id rides along on requests that
        do not name their own, so the response envelope carries the
        per-stage timing breakdown.
        """
        if "trace" not in request:
            from ..obs.trace import current_trace_id

            trace_id = current_trace_id()
            if trace_id is not None:
                request = dict(request, trace=trace_id)
        if self._wire_ok:
            frame: bytes | None
            try:
                frame = encode_request_frame(request)
            except WireEncodeError:
                if self.wire == "binary":
                    raise
                frame = None
            if frame is not None:
                try:
                    return await self._roundtrip(self._encode_http(
                        "POST", "/v1/submit", frame,
                        content_type=WIRE_CONTENT_TYPE, accept=WIRE_CONTENT_TYPE,
                    ))
                except ServiceError as exc:
                    if self.wire == "auto" and exc.code in _WIRE_UNSUPPORTED_CODES:
                        self._wire_ok = False  # old server: stay on JSON
                    else:
                        raise
        body = json.dumps(request).encode("utf-8")
        return await self._roundtrip(self._encode_http("POST", "/v1/submit", body))

    async def solve(
        self, tree: Mapping[str, Any], memory: int, *, algorithm: str = "RecExpand"
    ) -> dict[str, Any]:
        """Schedule one tree; returns the ``result`` block."""
        envelope = await self.submit({
            "kind": "solve", "tree": dict(tree),
            "memory": memory, "algorithm": algorithm,
        })
        return envelope["result"]

    async def metrics(self) -> dict[str, Any]:
        return await self._roundtrip(self._encode_http("GET", "/metrics"))

    async def health(self) -> dict[str, Any]:
        return await self._roundtrip(self._encode_http("GET", "/healthz"))
