"""The scheduling service: solve/paging/exact queries over HTTP.

This package puts a non-blocking network front-end on the same code
paths the CLI runs offline, aimed at the ROADMAP's "serve heavy traffic"
north star:

``repro.service.protocol``
    the wire-level view of the typed solver API (:mod:`repro.api`):
    request dataclasses, validation, stable error codes and content
    addressing all live there — this module (de)serializes them;
``repro.service.pool``
    the persistent worker pool executing validated micro-batches;
``repro.service.server``
    the asyncio JSON-over-HTTP server — micro-batching, bounded
    admission queue (backpressure), in-flight + cache-backed dedup,
    ``/metrics``;
``repro.service.wire``
    the length-framed binary content type: tree buffers in
    ``ArrayForest.pack()`` layout plus a compact binary header, with
    zero JSON on the tree path (negotiated per request, JSON stays the
    default);
``repro.service.client``
    a synchronous Python client (also behind ``repro-ioschedule submit``);
``repro.service.aioclient``
    the asyncio client — keep-alive connection pool + request
    pipelining, for burst-throughput workloads.

Start a server with ``repro-ioschedule serve`` and query it with
``repro-ioschedule submit``, :class:`ServiceClient`, or
:class:`AsyncServiceClient`.
"""

from .aioclient import AsyncServiceClient
from .client import ServiceClient, ServiceError
from .pool import WorkerPool
from .protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    ProtocolError,
    parse_request,
)
from .server import ServerConfig, ServerThread, ServiceServer, running_server
from .wire import (
    WIRE_CONTENT_TYPE,
    WIRE_VERSION,
    decode_request_frame,
    decode_response_frame,
    encode_request_frame,
    encode_response_frame,
)

__all__ = [
    "AsyncServiceClient",
    "ERROR_CODES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServerConfig",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "WIRE_CONTENT_TYPE",
    "WIRE_VERSION",
    "WorkerPool",
    "decode_request_frame",
    "decode_response_frame",
    "encode_request_frame",
    "encode_response_frame",
    "parse_request",
    "running_server",
]
