"""The scheduling service: solve/paging/exact queries over HTTP.

This package puts a non-blocking network front-end on the same code
paths the CLI runs offline, aimed at the ROADMAP's "serve heavy traffic"
north star:

``repro.service.protocol``
    the wire-level view of the typed solver API (:mod:`repro.api`):
    request dataclasses, validation, stable error codes and content
    addressing all live there — this module (de)serializes them;
``repro.service.pool``
    the persistent worker pool executing validated micro-batches;
``repro.service.server``
    the asyncio JSON-over-HTTP server — micro-batching, bounded
    admission queue (backpressure), in-flight + cache-backed dedup,
    ``/metrics``;
``repro.service.client``
    a synchronous Python client (also behind ``repro-ioschedule submit``).

Start a server with ``repro-ioschedule serve`` and query it with
``repro-ioschedule submit`` or :class:`ServiceClient`.
"""

from .client import ServiceClient, ServiceError
from .pool import WorkerPool
from .protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    ProtocolError,
    parse_request,
)
from .server import ServerConfig, ServerThread, ServiceServer, running_server

__all__ = [
    "ERROR_CODES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServerConfig",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "WorkerPool",
    "parse_request",
    "running_server",
]
