"""Synchronous Python client for the scheduling service.

Thin by design: one :class:`http.client.HTTPConnection` per call, the
protocol's stable error codes surfaced as :class:`ServiceError`, and
transparent wire negotiation — ``wire="auto"`` (the default) submits
requests as binary frames (:mod:`repro.service.wire`) and falls back to
JSON per request when a request cannot be framed, or stickily when the
server turns out not to speak frames at all (an old server answers
``bad_json`` to a frame body it tried to parse as JSON).  For
high-throughput pipelined submission use
:class:`~repro.service.aioclient.AsyncServiceClient` instead.

::

    client = ServiceClient(port=8177)
    client.wait_ready()
    result = client.solve(tree, memory=6, algorithm="FullRecExpand")
    print(result["io_volume"])
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Mapping, Sequence

from ..api.errors import ApiError, ProtocolError
from ..core.tree import TaskTree
from .wire import (
    JSON_CONTENT_TYPE,
    WIRE_CONTENT_TYPE,
    WireEncodeError,
    decode_response_frame,
    encode_request_frame,
    media_type,
)

__all__ = ["ServiceClient", "ServiceError"]

#: error codes that mean "this server did not understand a binary frame"
#: — an old server ignores Content-Type and tries the frame as JSON
#: (``bad_json``); a future server may refuse the media type outright.
_WIRE_UNSUPPORTED_CODES = frozenset({"bad_json", "unsupported_media_type"})


class ServiceError(ApiError, RuntimeError):
    """An error envelope from the service (or a transport-level failure).

    Part of the unified taxonomy (:mod:`repro.api.errors`): as an
    :class:`~repro.api.errors.ApiError` it carries the derived
    ``exit_code``, so the CLI maps served rejections onto the same exit
    contract as local validation failures.  Still a
    :class:`RuntimeError` — its base until 1.2 — so pre-existing
    ``except RuntimeError`` callers keep working.

    Attributes
    ----------
    code:
        the protocol's stable error code (``queue_full``, ``timeout``,
        ``bad_field``, …) or ``transport`` for connection-level failures.
    status:
        the HTTP status, 0 when the request never reached the server.
    """

    def __init__(self, code: str, message: str, status: int = 0):
        super().__init__(code, message, status=status)


def _tree_payload(tree: TaskTree | Mapping[str, Sequence[int]]) -> dict[str, Any]:
    if isinstance(tree, TaskTree):
        return tree.to_dict()
    return {"parents": list(tree["parents"]), "weights": list(tree["weights"])}


class ServiceClient:
    """Talk to one ``repro-ioschedule serve`` instance.

    ``wire`` selects the submit encoding: ``"auto"`` (binary frames with
    transparent JSON fallback — the default), ``"binary"`` (frames only;
    unframable requests raise), or ``"json"`` (the pre-frame behaviour,
    byte-for-byte).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8177,
        *,
        timeout: float = 120.0,
        wire: str = "auto",
    ):
        if wire not in ("auto", "binary", "json"):
            raise ValueError(f"wire must be auto, binary or json, not {wire!r}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.wire = wire
        # sticky: flipped off the first time the server proves it does
        # not speak frames, so every later submit goes straight to JSON
        self._wire_ok = wire != "json"

    # ---------------------------------------------------------------- #
    # transport
    # ---------------------------------------------------------------- #

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        content_type: str = JSON_CONTENT_TYPE,
        accept: str | None = None,
    ) -> dict[str, Any]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Content-Type": content_type} if body else {}
            if accept is not None:
                headers["Accept"] = accept
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                status = response.status
                response_type = media_type(response.getheader("Content-Type"))
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError("transport", f"{type(exc).__name__}: {exc}") from exc
            if response_type == WIRE_CONTENT_TYPE:
                try:
                    envelope: Any = decode_response_frame(raw)
                except ProtocolError as exc:
                    raise ServiceError(
                        "transport",
                        f"undecodable frame response (HTTP {status}): {exc.message}",
                        status,
                    ) from exc
            else:
                try:
                    envelope = json.loads(raw)
                except ValueError as exc:
                    raise ServiceError(
                        "transport", f"non-JSON response (HTTP {status})", status
                    ) from exc
            if isinstance(envelope, dict) and envelope.get("ok") is False:
                error = envelope.get("error", {})
                raise ServiceError(
                    str(error.get("code", "internal")),
                    str(error.get("message", "unknown error")),
                    status,
                )
            return envelope
        finally:
            conn.close()

    def _post(self, path: str, obj: Mapping[str, Any]) -> dict[str, Any]:
        return self._request("POST", path, json.dumps(obj).encode("utf-8"))

    # ---------------------------------------------------------------- #
    # API
    # ---------------------------------------------------------------- #

    def submit(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Submit a raw request dict; returns the full success envelope.

        When the calling context holds an active trace
        (:func:`repro.obs.trace_context`) and the request does not name
        its own trace id, the context's id rides along — the server and
        its workers then stamp the response envelope with the
        per-stage timing breakdown.
        """
        if "trace" not in request:
            from ..obs.trace import current_trace_id

            trace_id = current_trace_id()
            if trace_id is not None:
                request = dict(request, trace=trace_id)
        if self._wire_ok:
            try:
                frame = encode_request_frame(request)
            except WireEncodeError:
                if self.wire == "binary":
                    raise
                frame = None  # this request rides JSON; the mode stays auto
            if frame is not None:
                try:
                    return self._request(
                        "POST",
                        "/v1/submit",
                        frame,
                        content_type=WIRE_CONTENT_TYPE,
                        accept=WIRE_CONTENT_TYPE,
                    )
                except ServiceError as exc:
                    if self.wire == "auto" and exc.code in _WIRE_UNSUPPORTED_CODES:
                        self._wire_ok = False  # old server: stay on JSON
                    else:
                        raise
        return self._post("/v1/submit", request)

    def solve(
        self,
        tree: TaskTree | Mapping[str, Sequence[int]],
        memory: int,
        *,
        algorithm: str = "RecExpand",
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Schedule one tree; returns the ``result`` block (io_volume, …)."""
        request: dict[str, Any] = {
            "kind": "solve",
            "tree": _tree_payload(tree),
            "memory": memory,
            "algorithm": algorithm,
        }
        if timeout is not None:
            request["timeout"] = timeout
        return self.submit(request)["result"]

    def paging(
        self,
        tree: TaskTree | Mapping[str, Sequence[int]],
        memory: int,
        *,
        algorithm: str = "RecExpand",
        page_size: int = 1,
        policies: Sequence[str] | None = None,
        seed: int = 0,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Page-policy comparison; returns the ``result`` block."""
        request: dict[str, Any] = {
            "kind": "paging",
            "tree": _tree_payload(tree),
            "memory": memory,
            "algorithm": algorithm,
            "page_size": page_size,
            "seed": seed,
        }
        if policies is not None:
            request["policies"] = list(policies)
        if timeout is not None:
            request["timeout"] = timeout
        return self.submit(request)["result"]

    def exact(
        self,
        tree: TaskTree | Mapping[str, Sequence[int]],
        memory: int,
        *,
        max_states: int = 2_000_000,
        node_limit: int = 24,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Exact optimum + heuristic gaps; returns the ``result`` block."""
        request: dict[str, Any] = {
            "kind": "exact",
            "tree": _tree_payload(tree),
            "memory": memory,
            "max_states": max_states,
            "node_limit": node_limit,
        }
        if timeout is not None:
            request["timeout"] = timeout
        return self.submit(request)["result"]

    def metrics(self) -> dict[str, Any]:
        """Scrape ``/metrics`` (queue depth, cache counters, latency pcts)."""
        return self._request("GET", "/metrics")

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def wait_ready(self, deadline: float = 15.0, poll: float = 0.05) -> bool:
        """Poll ``/healthz`` until the service answers (or the deadline passes)."""
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            try:
                if self.health().get("ok"):
                    return True
            except ServiceError:
                time.sleep(poll)
        return False
