"""The service's worker pool: where request batches actually execute.

The server never computes anything on its event loop.  Micro-batches of
validated requests are handed to a :class:`WorkerPool`, which runs them
either

* on a **persistent** :class:`concurrent.futures.ProcessPoolExecutor`
  (``jobs >= 1``, the production path — workers are stateless and
  resolve strategies *by name* through the registry, exactly like the
  batch engine's shard workers), or
* on a small in-process thread pool (``jobs = 0``), which keeps
  everything in one interpreter — the mode tests use to exercise
  backpressure deterministically and to see strategies registered at
  test time.

One executor call carries one whole micro-batch (a single pickle
round-trip instead of one per request); each request inside the batch is
individually guarded, so one failing request yields one error envelope
without poisoning its batch-mates.
"""

from __future__ import annotations

import asyncio
import random
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Mapping

from ..algorithms.exact import exact_min_io
from ..core.engine import engine_scope
from ..core.traversal import InvalidTraversal, validate
from ..core.simulator import InfeasibleSchedule
from ..core.tree import TaskTree
from ..experiments.batch import unit_seed
from ..experiments.registry import PAPER_ALGORITHMS, get_algorithm
from .protocol import (
    ExactRequest,
    PagingRequest,
    Request,
    SolveRequest,
    error_envelope,
    ok_envelope,
    parse_request,
)

__all__ = [
    "WorkerPool",
    "execute_payload",
    "execute_many",
    "run_solve",
    "run_paging",
    "run_exact",
]


def run_solve(request: SolveRequest) -> dict[str, Any]:
    """Execute a ``solve`` request; mirrors ``repro-ioschedule solve``."""
    tree = TaskTree(request.parents, request.weights)
    traversal = get_algorithm(request.algorithm)(tree, request.memory)
    validate(tree, traversal, request.memory)
    return {
        "kind": "solve",
        "algorithm": request.algorithm,
        "memory": request.memory,
        "io_volume": traversal.io_volume,
        "performance": traversal.performance(request.memory),
        "schedule": list(traversal.schedule),
        "io": {str(v): a for v, a in enumerate(traversal.io) if a},
    }


def run_paging(request: PagingRequest) -> dict[str, Any]:
    """Execute a ``paging`` request; mirrors ``repro-ioschedule paging``."""
    from ..io import HDD, estimate_time, paged_io

    tree = TaskTree(request.parents, request.weights)
    schedule = get_algorithm(request.algorithm)(tree, request.memory).schedule
    rows = []
    for policy in request.policies:
        res = paged_io(
            tree,
            schedule,
            request.memory,
            page_size=request.page_size,
            policy=policy,
            seed=request.seed,
            trace=True,
        )
        rows.append(
            {
                "policy": policy,
                "write_pages": res.write_pages,
                "read_pages": res.read_pages,
                "write_units": res.write_units,
                "est_seconds": estimate_time(res.events, HDD).seconds,
            }
        )
    return {
        "kind": "paging",
        "algorithm": request.algorithm,
        "memory": request.memory,
        "page_size": request.page_size,
        "policies": rows,
    }


def run_exact(request: ExactRequest) -> dict[str, Any]:
    """Execute an ``exact`` request; mirrors ``repro-ioschedule exact``."""
    tree = TaskTree(request.parents, request.weights)
    result = exact_min_io(
        tree,
        request.memory,
        max_states=request.max_states,
        node_limit=request.node_limit,
    )
    gaps: dict[str, dict[str, Any]] = {}
    for name in PAPER_ALGORITHMS:
        io = get_algorithm(name)(tree, request.memory).io_volume
        gap = (request.memory + io) / (request.memory + result.io_volume) - 1.0
        gaps[name] = {"io_volume": io, "gap": gap}
    return {
        "kind": "exact",
        "memory": request.memory,
        "io_volume": result.io_volume,
        "optimal": result.optimal,
        "lower_bound": result.lower_bound,
        "states_expanded": result.states_expanded,
        "certificate": result.certificate(),
        "gaps": gaps,
    }


_RUNNERS = {
    SolveRequest.kind: run_solve,
    PagingRequest.kind: run_paging,
    ExactRequest.kind: run_exact,
}


def execute_request(request: Request, *, seed_rng: bool = True) -> dict[str, Any]:
    """Run one validated request and wrap the outcome in an envelope.

    ``seed_rng`` seeds the process-global RNG from the request's content
    address — the same contract as the batch engine's shards, so
    identical requests behave identically on any worker.  It is disabled
    in inline (thread) mode, where concurrent batches share one
    interpreter: seeding there would interleave across threads (no
    determinism gained) and clobber the embedding process's RNG state.
    """
    key = request.key()
    if seed_rng:
        random.seed(unit_seed(key))
    try:
        # Thread-local scope: inline (thread-pool) workers honour each
        # request's engine without clobbering their batch-mates'.
        with engine_scope(request.engine):
            result = _RUNNERS[request.kind](request)
    except (InfeasibleSchedule, InvalidTraversal, ValueError, KeyError) as exc:
        return error_envelope("unsolvable", f"{type(exc).__name__}: {exc}")
    return ok_envelope(result, key=key)


def execute_payload(
    payload: Mapping[str, Any], *, seed_rng: bool = True
) -> dict[str, Any]:
    """Worker entry point for one request payload (re-validates on arrival)."""
    try:
        request = parse_request(payload)
    except Exception as exc:  # defence in depth; the server validated already
        code = getattr(exc, "code", "internal")
        return error_envelope(code, str(exc))
    return execute_request(request, seed_rng=seed_rng)


def execute_many(
    payloads: list[Mapping[str, Any]], seed_rng: bool = True
) -> list[dict[str, Any]]:
    """Worker entry point for one micro-batch; one envelope per payload."""
    return [execute_payload(p, seed_rng=seed_rng) for p in payloads]


def _warmup() -> bool:
    """A no-op unit of work used to pre-fork and import-warm the workers."""
    return True


class WorkerPool:
    """A persistent executor shared by all micro-batches.

    Parameters
    ----------
    jobs:
        ``>= 1`` — that many worker *processes* (the production path);
        ``0`` — run batches on an in-process thread pool of
        ``inline_threads`` threads instead.
    inline_threads:
        concurrency of the inline mode; also the number of micro-batches
        the server allows in flight at once (its dispatch semaphore is
        sized to :attr:`concurrency`).
    """

    def __init__(self, jobs: int = 2, *, inline_threads: int = 1):
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        self.jobs = jobs
        if jobs >= 1:
            self.concurrency = jobs
            self._executor: Executor = ProcessPoolExecutor(max_workers=jobs)
        else:
            self.concurrency = max(1, inline_threads)
            self._executor = ThreadPoolExecutor(
                max_workers=self.concurrency, thread_name_prefix="repro-service"
            )

    def warm_up(self) -> None:
        """Block until every worker exists and has imported the package.

        Without this the first requests pay worker fork + import latency,
        which would show up as a spurious cold-start tail in benchmarks.
        """
        futures = [self._executor.submit(_warmup) for _ in range(self.concurrency)]
        for future in futures:
            future.result()

    async def run_batch(
        self, payloads: list[Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        """Execute one micro-batch without blocking the event loop."""
        loop = asyncio.get_running_loop()
        # Seed only in process workers (one batch at a time per process);
        # inline threads share one interpreter, where seeding is a race.
        return await loop.run_in_executor(
            self._executor, execute_many, list(payloads), self.jobs >= 1
        )

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
