"""The service's worker pool: where request batches actually execute.

The server never computes anything on its event loop.  Micro-batches of
validated requests are handed to a :class:`WorkerPool`, which runs them
either

* on a **persistent** :class:`concurrent.futures.ProcessPoolExecutor`
  (``jobs >= 1``, the production path — workers are stateless and
  resolve strategies *by name* through the registry, exactly like the
  batch engine's shard workers), or
* on a small in-process thread pool (``jobs = 0``), which keeps
  everything in one interpreter — the mode tests use to exercise
  backpressure deterministically and to see strategies registered at
  test time.

Execution itself lives in :mod:`repro.api.execution` — the same
``run_solve``/``run_paging``/``run_exact`` cores every backend shares —
so a request computes byte-identical results here, in
:class:`~repro.api.backends.LocalBackend`, and offline.  This module
owns only the transport: one executor call carries one whole
micro-batch (a single pickle round-trip instead of one per request);
each request inside the batch is individually guarded, so one failing
request yields one error envelope without poisoning its batch-mates.

With process workers the trees themselves do not ride in that pickle at
all: the pool packs every request's ``parents``/``weights`` columns into
one :class:`~repro.core.forest.ArrayForest` wire buffer inside a
``multiprocessing.shared_memory`` segment and ships only tiny
``{"shm": index}`` markers.  Workers attach the segment, rebuild the
forest (one vectorised validation for the whole batch) and slice each
request's tree back out — zero pickling of element lists in either
direction.  Inline thread mode (``jobs=0``) and environments without
shared memory fall back to the plain pickle path transparently.
"""

from __future__ import annotations

import asyncio
import contextlib
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Mapping

import numpy as np

from ..api.errors import ProtocolError
from ..api.execution import (
    build_tree,
    execute_request,
    run_exact,
    run_paging,
    run_solve,
)
from ..api.outcome import error_envelope
from ..api.requests import parse_request
from ..core.arraytree import _MAX_TOTAL_WEIGHT
from ..core.engine import AUTO_THRESHOLD
from ..core.forest import ArrayForest
from ..core.tree import TreeError

__all__ = [
    "WorkerPool",
    "build_tree",
    "execute_payload",
    "execute_many",
    "execute_many_shm",
    "run_solve",
    "run_paging",
    "run_exact",
]


def execute_payload(
    payload: Mapping[str, Any], *, seed_rng: bool = True
) -> dict[str, Any]:
    """Worker entry point for one request payload (re-validates on arrival)."""
    try:
        request = parse_request(payload)
    except Exception as exc:  # defence in depth; the server validated already
        code = getattr(exc, "code", "internal")
        # ApiError.__str__ is "[code] message"; the envelope carries the
        # code separately, so ship the bare message
        return error_envelope(code, getattr(exc, "message", str(exc)))
    return execute_request(request, seed_rng=seed_rng)


def execute_many(
    payloads: list[Mapping[str, Any]], seed_rng: bool = True
) -> list[dict[str, Any]]:
    """Worker entry point for one micro-batch; one envelope per payload."""
    return [execute_payload(p, seed_rng=seed_rng) for p in payloads]


# --------------------------------------------------------------------- #
# shared-memory transport: one ArrayForest buffer per micro-batch
# --------------------------------------------------------------------- #

#: default floor (total nodes per micro-batch) below which the batch is
#: pickled instead: a shared-memory segment costs two syscalls and a
#: worker-side forest rebuild per batch, which tiny batches cannot
#: amortise (measured crossover is a few thousand nodes; the win grows
#: with tree size — ~1.5-1.8x pool throughput at 2k-8k-node trees).
SHM_MIN_BATCH_NODES = 8_192


def _pack_batch(payloads: list[Mapping[str, Any]], min_nodes: int = 0):
    """Pack a micro-batch's trees into one shared-memory forest buffer.

    Returns ``(shm, stripped_payloads)`` — the payloads carry
    ``{"shm": index}`` markers instead of their tree columns — or
    ``None`` when there is nothing to pack, the batch is smaller than
    ``min_nodes`` total, or shared memory is unavailable (the caller
    falls back to the pickle path, where any malformed payload still
    earns its proper error envelope).
    """
    from multiprocessing import shared_memory

    trees: list[tuple[Any, Any]] = []
    stripped: list[dict[str, Any]] = []
    for payload in payloads:
        tree = payload.get("tree") if isinstance(payload, Mapping) else None
        if (
            isinstance(tree, Mapping)
            and isinstance(tree.get("parents"), (list, tuple))
            and isinstance(tree.get("weights"), (list, tuple))
            and len(tree["parents"]) == len(tree["weights"])
            and len(tree["parents"]) > 0
        ):
            replaced = dict(payload)
            replaced["tree"] = {"shm": len(trees)}
            trees.append((tree["parents"], tree["weights"]))
            stripped.append(replaced)
        else:
            stripped.append(dict(payload))
    if not trees or sum(len(p) for p, _ in trees) < min_nodes:
        return None
    try:
        offsets = np.zeros(len(trees) + 1, dtype=np.int64)
        parents = [np.asarray(p, dtype=np.int64) for p, _ in trees]
        weights = [np.asarray(w, dtype=np.int64) for _, w in trees]
        # Trees the worker-side forest rebuild would reject must not ride
        # the segment: TaskTree accepts arbitrary-precision weights, the
        # forest only int64 budgets — the pickle path handles those, and
        # a rejected forest would poison the whole batch with errors.
        if (
            sum(float(np.sum(c, dtype=np.float64)) for c in weights)
            > _MAX_TOTAL_WEIGHT
        ):
            return None
        np.cumsum([len(c) for c in parents], out=offsets[1:])
        total = int(offsets[-1])
        words = 2 + len(offsets) + 2 * total
        shm = shared_memory.SharedMemory(create=True, size=words * 8)
    except (OSError, ValueError, OverflowError):
        return None  # no /dev/shm, out-of-range values, ... — pickle instead
    try:
        buf = np.ndarray((words,), dtype=np.int64, buffer=shm.buf)
        buf[0] = len(trees)
        buf[1] = total
        head = 2 + len(offsets)
        buf[2:head] = offsets
        np.concatenate(parents, out=buf[head : head + total])
        np.concatenate(weights, out=buf[head + total :])
        del buf  # release the exported view: close()/unlink() need it gone
    except BaseException:
        _release_shm(shm)
        raise
    return shm, stripped


def _release_shm(shm) -> None:
    """Close and unlink the batch segment (idempotent, error-proof)."""
    with contextlib.suppress(OSError):
        shm.close()
    with contextlib.suppress(OSError, FileNotFoundError):
        shm.unlink()


def _release_abandoned_pack(future) -> None:
    """Done-callback: free the segment of a pack whose awaiter was cancelled."""
    if future.cancelled():
        return
    if future.exception() is None:
        packed = future.result()
        if packed is not None:
            _release_shm(packed[0])


def _attach_shm_untracked(name: str):
    """Attach to a segment without registering it with a resource tracker.

    On POSIX (≤ 3.12) merely *attaching* registers the name with the
    process's resource tracker, whose later cleanup then races the
    server's ``unlink`` — a forked worker corrupts the shared tracker's
    book-keeping, a spawned one warns about "leaked" segments at exit.
    The batch segment belongs to the server side; the worker only
    borrows it, so the registration is suppressed for the attach.
    (``SharedMemory(..., track=False)`` expresses this from 3.13 on.)
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _execute_shm_payload(
    payload: Mapping[str, Any], forest: ArrayForest, index: int, seed_rng: bool
) -> dict[str, Any]:
    """Run one request whose tree lives in the batch forest."""
    if not 0 <= index < forest.n_trees:
        return error_envelope("internal", f"no tree {index} in batch forest")
    a = int(forest.offsets[index])
    b = int(forest.offsets[index + 1])
    try:
        request = parse_request(
            payload,
            trusted_tree=(forest._parents[a:b], forest._weights[a:b]),
        )
    except ProtocolError as exc:
        return error_envelope(exc.code, exc.message)
    except Exception as exc:  # defence in depth, like execute_payload
        return error_envelope("internal", str(exc))
    # Mirror build_tree: the forest already holds every derived buffer,
    # so a large request's ArrayTree is a plain slice copy.
    if b - a >= AUTO_THRESHOLD:
        tree = forest.tree(index)
    else:
        tree = forest.task_tree(index)
    return execute_request(request, seed_rng=seed_rng, tree=tree)


def execute_many_shm(
    shm_name: str, payloads: list[Mapping[str, Any]], seed_rng: bool = True
) -> list[dict[str, Any]]:
    """Worker entry point for a micro-batch shipped as a forest buffer.

    Attaches the segment, copies the (small) batch blob out and detaches
    immediately — no lifetime coupling with the server's unlink — then
    rebuilds the :class:`~repro.core.forest.ArrayForest` and executes
    every payload against its tree slice.  Payloads without a marker
    (no tree to pack) run exactly like :func:`execute_many`.
    """
    try:
        shm = _attach_shm_untracked(shm_name)
    except (OSError, ValueError) as exc:
        return [
            error_envelope("internal", f"shared-memory batch lost: {exc}")
        ] * len(payloads)
    try:
        blob = bytes(shm.buf)
    finally:
        shm.close()
    try:
        forest = ArrayForest.from_packed(blob)
    except TreeError as exc:
        return [
            error_envelope("internal", f"bad shared-memory batch: {exc}")
        ] * len(payloads)
    out = []
    for payload in payloads:
        marker = payload.get("tree") if isinstance(payload, Mapping) else None
        if isinstance(marker, Mapping) and "shm" in marker:
            out.append(
                _execute_shm_payload(payload, forest, marker["shm"], seed_rng)
            )
        else:
            out.append(execute_payload(payload, seed_rng=seed_rng))
    return out


def _warmup() -> bool:
    """A no-op unit of work used to pre-fork and import-warm the workers."""
    return True


class WorkerPool:
    """A persistent executor shared by all micro-batches.

    Parameters
    ----------
    jobs:
        ``>= 1`` — that many worker *processes* (the production path);
        ``0`` — run batches on an in-process thread pool of
        ``inline_threads`` threads instead.
    inline_threads:
        concurrency of the inline mode; also the number of micro-batches
        the server allows in flight at once (its dispatch semaphore is
        sized to :attr:`concurrency`).
    shm_transport:
        ship micro-batch trees to process workers as one shared-memory
        forest buffer instead of pickling element lists (default on;
        meaningless — and ignored — in inline mode, which shares the
        server's heap already).
    shm_min_nodes:
        total-node floor per micro-batch below which the pickle path is
        used even with the transport on (see
        :data:`SHM_MIN_BATCH_NODES`); 0 packs every batch.
    registry:
        a :class:`repro.obs.MetricsRegistry` to count batches into
        (``pool_batches_total{transport=shm|pickle}``); defaults to the
        process-wide registry.
    """

    def __init__(
        self,
        jobs: int = 2,
        *,
        inline_threads: int = 1,
        shm_transport: bool = True,
        shm_min_nodes: int = SHM_MIN_BATCH_NODES,
        registry=None,
    ):
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        if registry is None:
            from ..obs.metrics import get_registry

            registry = get_registry()
        self.registry = registry
        batches = registry.counter(
            "pool_batches_total", "micro-batches executed, by transport"
        )
        self._shm_batch_counter = batches.labels(transport="shm")
        self._pickle_batch_counter = batches.labels(transport="pickle")
        self.jobs = jobs
        self.shm_transport = bool(shm_transport) and jobs >= 1
        self.shm_min_nodes = shm_min_nodes
        #: batches actually shipped via shared memory (observability)
        self.shm_batches = 0
        if jobs >= 1:
            self.concurrency = jobs
            self._executor: Executor = ProcessPoolExecutor(max_workers=jobs)
        else:
            self.concurrency = max(1, inline_threads)
            self._executor = ThreadPoolExecutor(
                max_workers=self.concurrency, thread_name_prefix="repro-service"
            )

    def warm_up(self) -> None:
        """Block until every worker exists and has imported the package.

        Without this the first requests pay worker fork + import latency,
        which would show up as a spurious cold-start tail in benchmarks.
        """
        futures = [self._executor.submit(_warmup) for _ in range(self.concurrency)]
        for future in futures:
            future.result()

    async def run_batch(
        self, payloads: list[Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        """Execute one micro-batch without blocking the event loop."""
        loop = asyncio.get_running_loop()
        payloads = list(payloads)
        if self.shm_transport:
            # pack on the default thread executor: column conversion and
            # the shm_open syscall must not stall the server's event loop
            pack_future = loop.run_in_executor(
                None, _pack_batch, payloads, self.shm_min_nodes
            )
            try:
                packed = await pack_future
            except asyncio.CancelledError:
                # the thread may still create the segment after we are
                # gone; release it whenever the pack actually finishes
                pack_future.add_done_callback(_release_abandoned_pack)
                raise
            if packed is not None:
                self.shm_batches += 1
                self._shm_batch_counter.inc()
                shm, stripped = packed
                try:
                    return await loop.run_in_executor(
                        self._executor, execute_many_shm, shm.name, stripped, True
                    )
                finally:
                    # The worker copied the blob out before returning, so
                    # the segment dies with the batch — even on timeouts
                    # and cancellation.
                    _release_shm(shm)
        # Seed only in process workers (one batch at a time per process);
        # inline threads share one interpreter, where seeding is a race.
        self._pickle_batch_counter.inc()
        return await loop.run_in_executor(
            self._executor, execute_many, payloads, self.jobs >= 1
        )

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
