"""The live ops dashboard behind ``serve --dashboard``.

Three pieces, all stdlib + :mod:`repro.viz`:

* :data:`DASHBOARD_HTML` — a single self-contained page (no external
  assets, no frameworks) that polls ``GET /dash/data`` every couple of
  seconds and redraws its panels: queue depth, cache hit rate, latency
  percentiles, request counters by encoding and strategy, per-strategy
  I/O-volume distributions, and a table of recent requests with
  drill-down links to their schedule-trace SVGs;
* :func:`dashboard_data` — the JSON the page polls, assembled from the
  server's metrics snapshot plus its bounded recent-request ring;
* :func:`render_trace_svg` — one cached result's schedule trace (see
  :func:`repro.obs.schedule_trace`) rendered through
  :func:`repro.viz.schedule_trace_chart`, served at
  ``GET /dash/trace/<key>``.

The server only imports this module when the dashboard is enabled, so
a plain service never pays for it.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from ..viz import schedule_trace_chart

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .server import ServiceServer

__all__ = ["DASHBOARD_HTML", "dashboard_data", "render_trace_svg"]


def dashboard_data(server: "ServiceServer") -> dict[str, Any]:
    """Everything one poll of the dashboard needs, as one JSON object."""
    snapshot = server._metrics_body()
    recent = list(server._recent)
    # per-strategy I/O-volume distributions over the recent window: the
    # panel wants spread, not just totals, so ship summary quantiles
    by_strategy: dict[str, list[float]] = {}
    for entry in recent:
        algorithm = entry.get("algorithm")
        io = entry.get("io_volume")
        if algorithm and io is not None:
            by_strategy.setdefault(algorithm, []).append(float(io))
    from ..obs.metrics import Histogram

    io_distributions = {}
    for algorithm, volumes in sorted(by_strategy.items()):
        ordered = sorted(volumes)
        io_distributions[algorithm] = {
            "count": len(ordered),
            "min": ordered[0],
            "p50": Histogram.percentile(ordered, 0.50),
            "p90": Histogram.percentile(ordered, 0.90),
            "max": ordered[-1],
        }
    return {
        "metrics": snapshot,
        "recent": recent,
        "io_distributions": io_distributions,
    }


def render_trace_svg(result: dict[str, Any], key: str) -> str:
    """The schedule-trace drill-down view for one cached result."""
    trace = result["schedule_trace"]
    algorithm = result.get("algorithm", "?")
    return schedule_trace_chart(
        trace,
        result.get("memory"),
        title=f"{algorithm} — schedule trace {key[:12]}…",
    )


DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro-ioschedule — live ops</title>
<style>
  :root { color-scheme: dark; }
  body { font: 14px/1.45 system-ui, sans-serif; margin: 0;
         background: #111418; color: #e6e6e6; }
  header { padding: 12px 20px; background: #1a1f26;
           border-bottom: 1px solid #2a313b;
           display: flex; align-items: baseline; gap: 16px; }
  header h1 { font-size: 16px; margin: 0; font-weight: 600; }
  header .sub { color: #8a97a6; font-size: 12px; }
  main { padding: 16px 20px; max-width: 1100px; margin: 0 auto; }
  .cards { display: grid; gap: 12px;
           grid-template-columns: repeat(auto-fit, minmax(160px, 1fr)); }
  .card { background: #1a1f26; border: 1px solid #2a313b;
          border-radius: 8px; padding: 12px 14px; }
  .card .label { color: #8a97a6; font-size: 11px;
                 text-transform: uppercase; letter-spacing: .06em; }
  .card .value { font-size: 26px; font-weight: 600; margin-top: 2px;
                 font-variant-numeric: tabular-nums; }
  .card .hint { color: #8a97a6; font-size: 11px; }
  h2 { font-size: 13px; color: #8a97a6; text-transform: uppercase;
       letter-spacing: .06em; margin: 22px 0 8px; }
  table { border-collapse: collapse; width: 100%; font-size: 13px; }
  th, td { text-align: left; padding: 4px 10px 4px 0;
           border-bottom: 1px solid #232a33;
           font-variant-numeric: tabular-nums; }
  th { color: #8a97a6; font-weight: 500; }
  td a { color: #6bb2ff; text-decoration: none; }
  td a:hover { text-decoration: underline; }
  .ok { color: #57c78a; } .warn { color: #e6b35a; }
  #error { color: #e06c75; padding: 8px 0; display: none; }
</style>
</head>
<body>
<header>
  <h1>repro-ioschedule</h1>
  <span class="sub" id="uptime">connecting…</span>
</header>
<main>
  <div id="error"></div>
  <div class="cards">
    <div class="card"><div class="label">Queue depth</div>
      <div class="value" id="queue_depth">–</div>
      <div class="hint" id="inflight"></div></div>
    <div class="card"><div class="label">Cache hit rate</div>
      <div class="value" id="hit_rate">–</div>
      <div class="hint" id="hit_detail"></div></div>
    <div class="card"><div class="label">Latency p50 / p90 / p99 (ms)</div>
      <div class="value" id="latency">–</div>
      <div class="hint" id="latency_count"></div></div>
    <div class="card"><div class="label">Requests</div>
      <div class="value" id="requests">–</div>
      <div class="hint" id="req_detail"></div></div>
    <div class="card"><div class="label">Errors / rejected</div>
      <div class="value" id="errors">–</div>
      <div class="hint" id="err_detail"></div></div>
  </div>

  <h2>Requests by strategy</h2>
  <table id="strategies"><thead>
    <tr><th>strategy</th><th>requests</th></tr></thead><tbody></tbody></table>

  <h2>I/O volume by strategy (recent window)</h2>
  <table id="io_dist"><thead>
    <tr><th>strategy</th><th>n</th><th>min</th><th>p50</th><th>p90</th>
        <th>max</th></tr></thead><tbody></tbody></table>

  <h2>Recent requests</h2>
  <table id="recent"><thead>
    <tr><th>age</th><th>kind</th><th>strategy</th><th>io</th><th>ms</th>
        <th>source</th><th>trace</th></tr></thead><tbody></tbody></table>
</main>
<script>
"use strict";
const $ = (id) => document.getElementById(id);
const fmt = (x) => (x === null || x === undefined) ? "–"
  : (typeof x === "number" && !Number.isInteger(x)) ? x.toFixed(1) : String(x);

function fill(tableId, rows) {
  const body = $(tableId).querySelector("tbody");
  body.innerHTML = "";
  for (const cells of rows) {
    const tr = document.createElement("tr");
    for (const cell of cells) {
      const td = document.createElement("td");
      if (cell && cell.href) {
        const a = document.createElement("a");
        a.href = cell.href; a.textContent = cell.text; a.target = "_blank";
        td.appendChild(a);
      } else { td.textContent = fmt(cell); }
      tr.appendChild(td);
    }
    body.appendChild(tr);
  }
}

async function tick() {
  let data;
  try {
    const response = await fetch("/dash/data", {cache: "no-store"});
    if (!response.ok) throw new Error("HTTP " + response.status);
    data = await response.json();
    $("error").style.display = "none";
  } catch (err) {
    $("error").textContent = "poll failed: " + err;
    $("error").style.display = "block";
    return;
  }
  const m = data.metrics, req = m.requests, cache = m.cache, lat = m.latency_ms;
  $("uptime").textContent =
    "up " + Math.round(m.uptime_seconds) + "s · protocol v" + m.protocol;
  $("queue_depth").textContent = fmt(m.queue_depth);
  $("inflight").textContent = m.inflight + " in flight";
  const looked = cache.hits + cache.misses;
  $("hit_rate").textContent =
    looked ? (100 * cache.hits / looked).toFixed(1) + "%" : "–";
  $("hit_detail").textContent =
    cache.hits + " hits (" + cache.memo_hits + " memo) / "
    + cache.misses + " misses";
  $("latency").textContent =
    fmt(lat.p50) + " / " + fmt(lat.p90) + " / " + fmt(lat.p99);
  $("latency_count").textContent = lat.count + " in window";
  $("requests").textContent = fmt(req.received);
  $("req_detail").textContent =
    req.by_encoding.json + " json · " + req.by_encoding.binary + " binary · "
    + req.deduped_inflight + " deduped";
  $("errors").textContent = req.errors + " / " + req.rejected;
  $("err_detail").textContent = req.timeouts + " timeouts";
  fill("strategies",
       Object.entries(req.by_strategy || {}).sort()
             .map(([name, count]) => [name, count]));
  fill("io_dist",
       Object.entries(data.io_distributions || {}).map(([name, d]) =>
         [name, d.count, d.min, d.p50, d.p90, d.max]));
  const now = Date.now() / 1000;
  fill("recent", (data.recent || []).slice().reverse().map((r) => [
    Math.max(0, now - r.ts).toFixed(0) + "s",
    r.kind, r.algorithm, r.io_volume, r.elapsed_ms,
    r.deduped ? "deduped" : (r.cached ? "cache" : "computed"),
    r.traced ? {href: "/dash/trace/" + r.key, text: "view"} : "–",
  ]));
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
"""
