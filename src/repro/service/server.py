"""The asyncio scheduling service: JSON over HTTP, stdlib only.

Request lifecycle::

    POST /v1/submit ── validate ── dedup ──► admission queue ──► dispatcher
                          │          │                               │
                       400 + code    │ identical in-flight?          │ micro-batch
                                     │   await its future            ▼ (window, max size)
                                     │ result cache hit?          WorkerPool
                                     │   answer immediately      (processes)
                                     └ queue full? 429               │
                                                     cache.put ◄─────┘
                                                     resolve futures

Three mechanisms do the heavy lifting:

* **Micro-batching** — the dispatcher drains the admission queue for a
  short window (``batch_window_ms``) and ships the whole batch to a
  worker in one executor call, amortising pickle/IPC overhead exactly
  when load is high (an idle service dispatches singletons with no
  added latency beyond the window).
* **Cache-backed dedup** — every request is content-addressed (see
  :mod:`repro.service.protocol`); an identical *in-flight* request
  coalesces onto the same future, and an identical *completed* request
  is served from the shared :class:`~repro.datasets.store.ResultCache`
  without touching a worker.  The cache directory can be the same one
  ``repro-ioschedule report`` uses.
* **Backpressure** — admission is a bounded queue; when it is full the
  server answers ``429 queue_full`` immediately instead of letting
  latency grow without bound, and per-request deadlines return
  ``504 timeout`` (the computation itself keeps running and still
  populates the cache for the retry).

Endpoints: ``POST /v1/submit``, ``GET /healthz``, ``GET /metrics``.

Requests and envelopes are the typed model of :mod:`repro.api`: the
server is one of three interchangeable backends (see
:class:`repro.api.backends.RemoteBackend` for the client side), which
is why its cache entries are warm hits for local and embedded-pool
execution too.

Two content types share ``/v1/submit`` (see :mod:`repro.service.wire`):
JSON, and the length-framed binary protocol negotiated per request via
``Content-Type`` / ``Accept``.  Binary submissions decode straight into
trusted prebuilt tree columns — no JSON parse, no per-element
re-validation — which is where the burst-throughput headroom lives.
Connections are HTTP/1.1 keep-alive with request pipelining: responses
are written strictly in request order by a per-connection writer, while
up to ``max_pipeline`` requests from the same connection are in flight
at once.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..datasets.store import ResultCache
from .pool import WorkerPool
from .protocol import (
    HTTP_STATUS,
    PROTOCOL_VERSION,
    ProtocolError,
    error_envelope,
    ok_envelope,
    parse_request,
)
from .wire import (
    JSON_CONTENT_TYPE,
    WIRE_CONTENT_TYPE,
    accepts_wire,
    encode_response_frame,
    media_type,
    request_from_frame,
)

__all__ = [
    "ServerConfig",
    "ServiceMetrics",
    "ServiceServer",
    "ServerThread",
    "running_server",
]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServerConfig:
    """Everything the service needs to run; every field has a sane default."""

    host: str = "127.0.0.1"
    port: int = 8177  # 0 = ephemeral (the bound port lands in ServiceServer.port)
    workers: int = 2  # worker processes; 0 = in-process threads (tests)
    inline_threads: int = 1  # concurrency when workers == 0
    queue_limit: int = 64  # admission-queue capacity (backpressure bound)
    batch_window_ms: float = 5.0  # how long the dispatcher waits to fill a batch
    max_batch: int = 16  # requests per micro-batch
    request_timeout: float = 60.0  # default per-request deadline (seconds)
    max_body_bytes: int = 16 * 1024 * 1024
    cache_dir: str | None = None  # None = no result cache
    #: ship micro-batch trees to process workers via shared memory (the
    #: forest transport); falls back to pickling automatically where
    #: shared memory is unavailable or the batch is too small to
    #: amortise a segment, and is a no-op in inline mode.
    shm_transport: bool = True
    shm_min_nodes: int = -1  # -1 = the pool's default floor
    #: how long an idle keep-alive connection is held open between
    #: requests; <= 0 restores the original one-request-per-connection
    #: behaviour (every response carries ``Connection: close``).
    keepalive_timeout: float = 75.0
    #: per-connection pipelining bound: how many requests from one
    #: connection may be in flight at once (responses always come back
    #: in request order regardless).
    max_pipeline: int = 32
    #: bounded in-memory LRU in front of the result cache: the hottest
    #: entries answer without touching the executor or the disk.  Only
    #: active when a result cache is configured; 0 disables it.
    memo_entries: int = 4096


@dataclass
class ServiceMetrics:
    """Counters the ``/metrics`` endpoint exposes.

    Latencies are kept in a bounded ring (most recent ~4096 completed
    requests) and summarised into percentiles at scrape time.
    """

    started_at: float = field(default_factory=time.time)
    received: int = 0
    completed: int = 0
    computed: int = 0  # requests that actually reached a worker
    batches: int = 0
    rejected: int = 0  # 429 queue_full
    timeouts: int = 0
    errors: int = 0  # validation + execution + internal errors
    wire_requests: int = 0  # submissions that arrived as binary frames
    deduped_inflight: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    _latencies_ms: list[float] = field(default_factory=list)
    _max_latencies: int = 4096

    def record_latency(self, seconds: float) -> None:
        self._latencies_ms.append(seconds * 1000.0)
        if len(self._latencies_ms) > self._max_latencies:
            del self._latencies_ms[: -self._max_latencies]

    @staticmethod
    def _percentile(sorted_values: list[float], q: float) -> float:
        if not sorted_values:
            return 0.0
        index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
        return sorted_values[index]

    def snapshot(self, *, queue_depth: int, inflight: int) -> dict[str, Any]:
        lat = sorted(self._latencies_ms)
        return {
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": queue_depth,
            "inflight": inflight,
            "requests": {
                "received": self.received,
                "completed": self.completed,
                "computed": self.computed,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "errors": self.errors,
                "wire": self.wire_requests,
                "deduped_inflight": self.deduped_inflight,
            },
            "batches": self.batches,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "latency_ms": {
                "count": len(lat),
                "p50": self._percentile(lat, 0.50),
                "p90": self._percentile(lat, 0.90),
                "p99": self._percentile(lat, 0.99),
                "max": lat[-1] if lat else 0.0,
            },
        }


class ServiceServer:
    """The service itself; see the module docstring for the data flow.

    Use :meth:`run` from the CLI (blocking), or ``await start()`` /
    ``await stop()`` from an existing event loop (what
    :class:`ServerThread` and the tests do).
    """

    def __init__(
        self,
        config: ServerConfig = ServerConfig(),
        *,
        cache: ResultCache | None = None,
        pool: WorkerPool | None = None,
    ):
        self.config = config
        self.cache = cache if cache is not None else (
            ResultCache(config.cache_dir) if config.cache_dir else None
        )
        if pool is None:
            kwargs = {}
            if config.shm_min_nodes >= 0:
                kwargs["shm_min_nodes"] = config.shm_min_nodes
            pool = WorkerPool(
                config.workers,
                inline_threads=config.inline_threads,
                shm_transport=config.shm_transport,
                **kwargs,
            )
        self.pool = pool
        self.metrics = ServiceMetrics()
        self.port: int | None = None  # bound port, set by start()
        self._queue: asyncio.Queue[tuple[str, dict[str, Any]]] | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._batch_tasks: set[asyncio.Task] = set()
        self._batch_slots: asyncio.Semaphore | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._memo: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        self._memo_hits = 0
        # frame bytes -> request key: the frame encoding is canonical,
        # so identical bytes are the same request — repeat frames skip
        # the decode entirely (bounded alongside the memo)
        self._body_keys: "OrderedDict[bytes, str]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        # Bounding in-flight batches to the pool's concurrency is what
        # makes the admission queue meaningful: when every worker is busy
        # the queue fills and overload turns into 429s, not latency.
        self._batch_slots = asyncio.Semaphore(self.pool.concurrency)
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
        # keep-alive connections idle for up to keepalive_timeout; cancel
        # them *before* wait_closed (which on newer Pythons waits for
        # every handler) or shutdown would hang until they time out.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
        for task in list(self._batch_tasks):
            task.cancel()
        self.pool.shutdown()

    def run(self) -> None:
        """Blocking entry point (the CLI's ``serve``); Ctrl-C to stop."""

        async def _main() -> None:
            await self.start()
            assert self._server is not None
            try:
                await self._server.serve_forever()
            finally:
                await self.stop()

        asyncio.run(_main())

    # ------------------------------------------------------------------ #
    # dispatcher: queue -> micro-batches -> worker pool
    # ------------------------------------------------------------------ #

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None and self._batch_slots is not None
        loop = asyncio.get_running_loop()
        window = self.config.batch_window_ms / 1000.0
        while True:
            await self._batch_slots.acquire()
            try:
                first = await self._queue.get()
            except asyncio.CancelledError:
                self._batch_slots.release()
                raise
            batch = [first]
            deadline = loop.time() + window
            while len(batch) < self.config.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            task = asyncio.create_task(self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch: list[tuple[str, dict[str, Any]]]) -> None:
        assert self._batch_slots is not None
        try:
            payloads = [payload for _, payload in batch]
            try:
                envelopes = await self.pool.run_batch(payloads)
            except Exception as exc:  # pool death is an internal error
                envelopes = [
                    error_envelope("internal", f"worker pool failure: {exc}")
                ] * len(batch)
            self.metrics.batches += 1
            self.metrics.computed += len(batch)
            loop = asyncio.get_running_loop()
            for (key, _), envelope in zip(batch, envelopes):
                if envelope.get("ok") and self.cache is not None:
                    self._memo_put(key, envelope["result"])
                    try:
                        # off the loop: a slow disk stalls this batch's
                        # write-back, not every open connection
                        await loop.run_in_executor(
                            None, self.cache.put, key, envelope["result"]
                        )
                    except OSError:
                        pass  # a full disk must not take the service down
                future = self._inflight.pop(key, None)
                if future is not None and not future.done():
                    future.set_result(envelope)
        finally:
            self._batch_slots.release()

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #

    async def _submit(self, body: bytes) -> tuple[int, dict[str, Any]]:
        self.metrics.received += 1
        t0 = time.perf_counter()
        try:
            obj = json.loads(body)
        except ValueError:
            self.metrics.errors += 1
            return 400, error_envelope("bad_json", "request body is not valid JSON")
        try:
            request = parse_request(obj)
        except ProtocolError as exc:
            self.metrics.errors += 1
            return HTTP_STATUS[exc.code], error_envelope(exc.code, exc.message)
        return await self._submit_request(request, t0)

    async def _submit_wire(self, body: bytes) -> tuple[int, dict[str, Any]]:
        """The binary fast path: frame -> trusted tree -> typed request.

        One vectorised validation inside :func:`request_from_frame`
        replaces JSON parsing and the per-element type checks; from the
        typed request on, the lifecycle (dedup, cache, queue, workers)
        is byte-for-byte the JSON path's, so outcomes and cache entries
        are interchangeable between encodings.
        """
        self.metrics.received += 1
        self.metrics.wire_requests += 1
        t0 = time.perf_counter()
        try:
            request = request_from_frame(body)
        except ProtocolError as exc:
            self.metrics.errors += 1
            return HTTP_STATUS[exc.code], error_envelope(exc.code, exc.message)
        return await self._submit_request(request, t0)

    def _fast_submit(
        self, body: bytes, content_type: str | None, *, binary: bool, close: bool
    ) -> tuple[bytes, bool] | None:
        """A fully synchronous answer for frame requests the memo holds.

        Returns the rendered response, or ``None`` to send the request
        down the ordinary pipelined path (which re-decodes — cheap next
        to the compute a memo miss implies).  Skipping the per-request
        task, semaphore and executor machinery roughly halves the
        loop's cost per warm hit, which is most of a pipelined burst.
        """
        if not self._memo or media_type(content_type) != WIRE_CONTENT_TYPE:
            return None
        t0 = time.perf_counter()
        key = self._body_keys.get(body)
        if key is None:
            try:
                request = request_from_frame(body)
            except ProtocolError:
                return None  # the full path renders the error (and counts it)
            key = request.key()
            self._body_keys[bytes(body)] = key
            while len(self._body_keys) > self.config.memo_entries:
                self._body_keys.popitem(last=False)
        value = self._memo_get(key)
        if value is None:
            return None
        self.metrics.received += 1
        self.metrics.wire_requests += 1
        self.metrics.completed += 1
        self._sync_cache_metrics()
        self.metrics.record_latency(time.perf_counter() - t0)
        return self._render(
            200,
            ok_envelope(value, key=key, cached=True),
            binary=binary,
            close=close,
        )

    def _memo_get(self, key: str) -> dict[str, Any] | None:
        value = self._memo.get(key)
        if value is not None:
            self._memo.move_to_end(key)
            self._memo_hits += 1
        return value

    def _memo_put(self, key: str, value: dict[str, Any]) -> None:
        cap = self.config.memo_entries
        if cap <= 0:
            return
        self._memo[key] = value
        self._memo.move_to_end(key)
        while len(self._memo) > cap:
            self._memo.popitem(last=False)

    def _sync_cache_metrics(self) -> None:
        # memo hits are cache hits the disk never saw
        self.metrics.cache_hits = self.cache.hits + self._memo_hits
        self.metrics.cache_misses = self.cache.misses

    async def _submit_request(
        self, request: Any, t0: float
    ) -> tuple[int, dict[str, Any]]:
        key = request.key()
        timeout = request.timeout or self.config.request_timeout
        loop = asyncio.get_running_loop()

        # 1) coalesce onto an identical in-flight computation
        existing = self._inflight.get(key)
        if existing is not None:
            self.metrics.deduped_inflight += 1
            return await self._await_result(
                existing, key, timeout, t0, deduped=True
            )

        # Register as in-flight *before* the cache lookup below awaits:
        # identical requests arriving during the disk read coalesce here
        # instead of issuing their own read (or their own computation).
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future

        def _resolve(status: int, envelope: dict[str, Any]) -> tuple[int, dict[str, Any]]:
            self._inflight.pop(key, None)
            if not future.done():
                future.set_result(envelope)
            return status, envelope

        # 2) serve a completed identical request from the result cache —
        #    hottest entries straight from the in-memory memo (no
        #    executor hop, no disk), the rest from disk on the default
        #    executor, never on the loop
        if self.cache is not None:
            value = self._memo_get(key)
            if value is None:
                value = await loop.run_in_executor(None, self.cache.get, key)
                if value is not None:
                    self._memo_put(key, value)
            self._sync_cache_metrics()
            if value is not None:
                self.metrics.completed += 1
                self.metrics.record_latency(time.perf_counter() - t0)
                return _resolve(200, ok_envelope(value, key=key, cached=True))

        # 3) admit into the bounded queue (or reject: backpressure)
        assert self._queue is not None
        try:
            self._queue.put_nowait((key, request.to_payload()))
        except asyncio.QueueFull:
            self.metrics.rejected += 1
            # resolves the future too: coalesced waiters share the 429
            return _resolve(
                429,
                error_envelope(
                    "queue_full",
                    f"admission queue at capacity ({self.config.queue_limit}); "
                    "retry later",
                ),
            )
        return await self._await_result(future, key, timeout, t0, deduped=False)

    async def _await_result(
        self,
        future: asyncio.Future,
        key: str,
        timeout: float,
        t0: float,
        *,
        deduped: bool,
    ) -> tuple[int, dict[str, Any]]:
        try:
            # shield: a timeout abandons *this waiter*, not the shared
            # computation — it still completes and populates the cache.
            envelope = await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            self.metrics.timeouts += 1
            return 504, error_envelope(
                "timeout", f"request did not complete within {timeout:.3f}s"
            )
        if envelope.get("ok"):
            self.metrics.completed += 1
            self.metrics.record_latency(time.perf_counter() - t0)
            if deduped:
                envelope = dict(envelope, deduped=True)
            return 200, envelope
        self.metrics.errors += 1
        code = envelope.get("error", {}).get("code", "internal")
        return HTTP_STATUS.get(code, 500), envelope

    def _metrics_body(self) -> dict[str, Any]:
        if self.cache is not None:
            self._sync_cache_metrics()
        queue_depth = self._queue.qsize() if self._queue is not None else 0
        return self.metrics.snapshot(
            queue_depth=queue_depth, inflight=len(self._inflight)
        )

    # ------------------------------------------------------------------ #
    # minimal HTTP/1.1 plumbing (stdlib only; keep-alive + pipelining)
    # ------------------------------------------------------------------ #

    def _render(
        self, status: int, body: dict[str, Any], *, binary: bool, close: bool
    ) -> tuple[bytes, bool]:
        """One rendered HTTP response; returns ``(bytes, close_after)``."""
        if binary:
            payload = encode_response_frame(body)
            content_type = WIRE_CONTENT_TYPE
        else:
            payload = json.dumps(body).encode("utf-8")
            content_type = JSON_CONTENT_TYPE
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n\r\n"
        )
        return head.encode("ascii") + payload, close

    async def _write_loop(
        self, queue: "asyncio.Queue", writer: asyncio.StreamWriter
    ) -> None:
        """Drain rendered responses to the socket, strictly in order.

        Queue items are awaitables resolving to ``(bytes, close_after)``
        — pipelined requests complete in any order, but their responses
        leave in the order the requests arrived.  Responses that are
        ready back-to-back are coalesced into one write: under a
        pipelined burst that turns a syscall per response into a
        syscall per batch of ready responses.
        """
        ready: list[bytes] = []
        close = False
        try:
            while not close:
                if ready and queue.empty():
                    writer.write(b"".join(ready))
                    ready.clear()
                    await writer.drain()
                item = await queue.get()
                if item is None:
                    break
                if ready and not item.done():
                    writer.write(b"".join(ready))
                    ready.clear()
                    await writer.drain()
                data, close = await item
                ready.append(data)
        finally:
            if ready:
                with contextlib.suppress(ConnectionError, RuntimeError):
                    writer.write(b"".join(ready))
                    await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        keepalive = self.config.keepalive_timeout
        pipeline = asyncio.Semaphore(max(1, self.config.max_pipeline))
        responses: asyncio.Queue = asyncio.Queue()
        write_task = asyncio.create_task(self._write_loop(responses, writer))
        loop = asyncio.get_running_loop()

        def _enqueue_now(rendered: tuple[bytes, bool]) -> None:
            future: asyncio.Future = loop.create_future()
            future.set_result(rendered)
            responses.put_nowait(future)

        try:
            while True:
                try:
                    parsed = await asyncio.wait_for(
                        self._read_request(reader),
                        keepalive if keepalive > 0 else None,
                    )
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection: hang up quietly
                except (ValueError, asyncio.LimitOverrunError):
                    # an over-long request/header line blew the
                    # StreamReader limit; the stream cannot be resynced
                    _enqueue_now(self._render(
                        400,
                        error_envelope("bad_request", "malformed HTTP request"),
                        binary=False, close=True,
                    ))
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break  # client went away mid-request
                if parsed is None:
                    break  # clean EOF between requests
                method, path, headers, body, oversized = parsed
                close = (
                    keepalive <= 0
                    or headers.get("connection", "").strip().lower() == "close"
                )
                binary = accepts_wire(headers.get("accept"))

                if oversized:
                    # the body was never read; the stream cannot continue
                    _enqueue_now(self._render(
                        413,
                        error_envelope(
                            "payload_too_large",
                            f"body of {oversized} bytes exceeds "
                            f"{self.config.max_body_bytes}",
                        ),
                        binary=binary, close=True,
                    ))
                    break
                if path == "/v1/submit" and method == "POST":
                    fast = self._fast_submit(
                        body, headers.get("content-type"),
                        binary=binary, close=close,
                    )
                    if fast is not None:
                        _enqueue_now(fast)
                        if close:
                            break
                        continue
                    # the pipelined path: handle concurrently, answer in order
                    await pipeline.acquire()
                    responses.put_nowait(asyncio.create_task(
                        self._pipelined_submit(
                            body, headers.get("content-type"), pipeline,
                            binary=binary, close=close,
                        )
                    ))
                    if close:
                        break
                    continue
                status, envelope = self._route_simple(method, path)
                _enqueue_now(self._render(status, envelope, binary=False, close=close))
                if close:
                    break
            responses.put_nowait(None)
            await write_task
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            if not write_task.done():
                write_task.cancel()
                with contextlib.suppress(asyncio.CancelledError, ConnectionError):
                    await write_task
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    def _route_simple(self, method: str, path: str) -> tuple[int, dict[str, Any]]:
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True, "protocol": PROTOCOL_VERSION}
        if path == "/metrics" and method == "GET":
            return 200, self._metrics_body()
        if path == "/v1/submit":
            return 405, error_envelope(
                "method_not_allowed", f"{method} not allowed on {path}"
            )
        return 404, error_envelope("not_found", f"no endpoint {method} {path}")

    async def _pipelined_submit(
        self,
        body: bytes,
        content_type: str | None,
        pipeline: asyncio.Semaphore,
        *,
        binary: bool,
        close: bool,
    ) -> tuple[bytes, bool]:
        """One submit, from negotiation to rendered bytes (pipeline-safe)."""
        try:
            received = media_type(content_type)
            if received == WIRE_CONTENT_TYPE:
                status, envelope = await self._submit_wire(body)
            elif received in ("", JSON_CONTENT_TYPE, "text/json"):
                status, envelope = await self._submit(body)
            else:
                self.metrics.errors += 1
                status, envelope = 415, error_envelope(
                    "unsupported_media_type",
                    f"cannot decode a {received!r} body; send "
                    f"{JSON_CONTENT_TYPE} or {WIRE_CONTENT_TYPE}",
                )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # defence: a handler bug must not wedge the writer
            status, envelope = 500, error_envelope(
                "internal", f"unexpected failure handling request: {exc}"
            )
        finally:
            pipeline.release()
        return self._render(status, envelope, binary=binary, close=close)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes, int] | None:
        """Read one full request off the stream (head *and* body).

        Returns ``None`` on clean EOF before a request line, else
        ``(method, path, headers, body, oversized)`` where a non-zero
        ``oversized`` is the declared length of a body that was *not*
        read because it exceeds ``max_body_bytes`` (the connection must
        close after answering 413).  Raises ``ValueError`` on malformed
        heads — the caller answers 400 and closes.
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial.strip():
                return None  # clean EOF between requests
            raise  # client went away mid-head; nothing to answer
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) < 2:
            raise ValueError("malformed request line")
        method, path = parts[0], parts[1]

        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ValueError("bad Content-Length") from None
        if content_length < 0:
            raise ValueError("bad Content-Length")
        if content_length > self.config.max_body_bytes:
            return method, path, headers, b"", content_length
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, headers, body, 0


class ServerThread:
    """Run a :class:`ServiceServer` on a background thread (tests, benchmarks).

    Context-manager protocol: entering starts the loop thread, binds the
    socket (an ephemeral port if ``config.port == 0``) and blocks until
    the service answers; exiting shuts everything down.

    ::

        with ServerThread(ServerConfig(port=0, workers=0)) as srv:
            client = ServiceClient(port=srv.port)
            ...
    """

    def __init__(
        self,
        config: ServerConfig = ServerConfig(port=0, workers=0),
        *,
        cache: ResultCache | None = None,
        pool: WorkerPool | None = None,
    ):
        self.server = ServiceServer(config, cache=cache, pool=pool)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.server.config.host

    @property
    def port(self) -> int:
        assert self.server.port is not None, "server not started"
        return self.server.port

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("service did not start within 30s")
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def _run(self) -> None:
        async def _main() -> None:
            self._stop = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            try:
                await self._stop.wait()
            finally:
                await self.server.stop()

        with contextlib.suppress(Exception):
            asyncio.run(_main())


@contextlib.contextmanager
def running_server(
    config: ServerConfig = ServerConfig(port=0, workers=0),
    *,
    cache: ResultCache | None = None,
    pool: WorkerPool | None = None,
) -> Iterator[ServiceServer]:
    """``with running_server(...) as server:`` — thread-backed, auto-stopped."""
    with ServerThread(config, cache=cache, pool=pool) as thread:
        yield thread.server
