"""The asyncio scheduling service: JSON over HTTP, stdlib only.

Request lifecycle::

    POST /v1/submit ── validate ── dedup ──► admission queue ──► dispatcher
                          │          │                               │
                       400 + code    │ identical in-flight?          │ micro-batch
                                     │   await its future            ▼ (window, max size)
                                     │ result cache hit?          WorkerPool
                                     │   answer immediately      (processes)
                                     └ queue full? 429               │
                                                     cache.put ◄─────┘
                                                     resolve futures

Three mechanisms do the heavy lifting:

* **Micro-batching** — the dispatcher drains the admission queue for a
  short window (``batch_window_ms``) and ships the whole batch to a
  worker in one executor call, amortising pickle/IPC overhead exactly
  when load is high (an idle service dispatches singletons with no
  added latency beyond the window).
* **Cache-backed dedup** — every request is content-addressed (see
  :mod:`repro.service.protocol`); an identical *in-flight* request
  coalesces onto the same future, and an identical *completed* request
  is served from the shared :class:`~repro.datasets.store.ResultCache`
  without touching a worker.  The cache directory can be the same one
  ``repro-ioschedule report`` uses.
* **Backpressure** — admission is a bounded queue; when it is full the
  server answers ``429 queue_full`` immediately instead of letting
  latency grow without bound, and per-request deadlines return
  ``504 timeout`` (the computation itself keeps running and still
  populates the cache for the retry).

Endpoints: ``POST /v1/submit``, ``GET /healthz``, ``GET /metrics``.

Requests and envelopes are the typed model of :mod:`repro.api`: the
server is one of three interchangeable backends (see
:class:`repro.api.backends.RemoteBackend` for the client side), which
is why its cache entries are warm hits for local and embedded-pool
execution too.

Two content types share ``/v1/submit`` (see :mod:`repro.service.wire`):
JSON, and the length-framed binary protocol negotiated per request via
``Content-Type`` / ``Accept``.  Binary submissions decode straight into
trusted prebuilt tree columns — no JSON parse, no per-element
re-validation — which is where the burst-throughput headroom lives.
Connections are HTTP/1.1 keep-alive with request pipelining: responses
are written strictly in request order by a per-connection writer, while
up to ``max_pipeline`` requests from the same connection are in flight
at once.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..api.requests import ENGINE_VERSION
from ..datasets.store import ResultCache
from ..obs.metrics import Histogram, MetricsRegistry
from .pool import WorkerPool
from .protocol import (
    HTTP_STATUS,
    PROTOCOL_VERSION,
    ProtocolError,
    error_envelope,
    ok_envelope,
    parse_request,
)
from .wire import (
    JSON_CONTENT_TYPE,
    WIRE_CONTENT_TYPE,
    WIRE_VERSION,
    accepts_wire,
    encode_response_frame,
    media_type,
    request_from_frame,
)

__all__ = [
    "ServerConfig",
    "ServiceMetrics",
    "ServiceServer",
    "ServerThread",
    "running_server",
]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServerConfig:
    """Everything the service needs to run; every field has a sane default."""

    host: str = "127.0.0.1"
    port: int = 8177  # 0 = ephemeral (the bound port lands in ServiceServer.port)
    workers: int = 2  # worker processes; 0 = in-process threads (tests)
    inline_threads: int = 1  # concurrency when workers == 0
    queue_limit: int = 64  # admission-queue capacity (backpressure bound)
    batch_window_ms: float = 5.0  # how long the dispatcher waits to fill a batch
    max_batch: int = 16  # requests per micro-batch
    request_timeout: float = 60.0  # default per-request deadline (seconds)
    max_body_bytes: int = 16 * 1024 * 1024
    cache_dir: str | None = None  # None = no result cache
    #: ship micro-batch trees to process workers via shared memory (the
    #: forest transport); falls back to pickling automatically where
    #: shared memory is unavailable or the batch is too small to
    #: amortise a segment, and is a no-op in inline mode.
    shm_transport: bool = True
    shm_min_nodes: int = -1  # -1 = the pool's default floor
    #: how long an idle keep-alive connection is held open between
    #: requests; <= 0 restores the original one-request-per-connection
    #: behaviour (every response carries ``Connection: close``).
    keepalive_timeout: float = 75.0
    #: per-connection pipelining bound: how many requests from one
    #: connection may be in flight at once (responses always come back
    #: in request order regardless).
    max_pipeline: int = 32
    #: bounded in-memory LRU in front of the result cache: the hottest
    #: entries answer without touching the executor or the disk.  Only
    #: active when a result cache is configured; 0 disables it.
    memo_entries: int = 4096
    #: serve the live ops dashboard (``GET /dash``) and track a bounded
    #: ring of recent requests for its panels; off by default.
    dashboard: bool = False
    #: count requests into the metrics registry.  On by default; turning
    #: it off makes every counter update a no-op — the baseline the
    #: tracing-overhead benchmark gate compares against.
    observability: bool = True


class ServiceMetrics:
    """The service's view over one :class:`~repro.obs.MetricsRegistry`.

    Historically a bag of plain counters; now a facade that owns the
    hot-path label resolution (child counters are resolved once, here)
    and renders the registry into the legacy JSON ``/metrics`` shape.
    The historical read attributes (``received``, ``computed``,
    ``cache_hits``, ...) remain as properties, and latency percentiles
    use the registry histogram's exact legacy formula, so existing
    scrapers and tests see identical numbers.

    With ``enabled=False`` every increment is a no-op — the baseline
    the tracing-overhead benchmark compares the default against.
    """

    def __init__(
        self, registry: MetricsRegistry | None = None, *, enabled: bool = True
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.enabled = enabled
        self.started_at = self.registry.started_at  # wall clock, display only
        r = self.registry
        self._requests = r.counter(
            "requests_total", "requests received, by submit encoding"
        )
        self._req_json = self._requests.labels(encoding="json")
        self._req_binary = self._requests.labels(encoding="binary")
        self._by_strategy = r.counter(
            "requests_by_strategy_total", "admitted requests by algorithm"
        )
        self._completed = r.counter(
            "requests_completed_total", "requests answered 200"
        )
        self._computed = r.counter(
            "requests_computed_total", "requests that reached a worker"
        )
        self._batches = r.counter("batches_total", "micro-batches dispatched")
        self._rejected = r.counter(
            "requests_rejected_total", "429 queue_full rejections"
        )
        self._timeouts = r.counter(
            "requests_timeout_total", "504 per-request deadline expiries"
        )
        self._errors = r.counter(
            "requests_error_total", "validation + execution + internal errors"
        )
        self._deduped = r.counter(
            "requests_deduped_total", "requests coalesced onto in-flight twins"
        )
        cache_hits = r.counter("cache_hits_total", "result-cache hits by tier")
        self._memo_hits = cache_hits.labels(tier="memo")
        self._disk_hits = cache_hits.labels(tier="disk")
        self._cache_misses = r.counter(
            "cache_misses_total", "result-cache misses"
        )
        self._latency = r.histogram(
            "solve_seconds", "request latency in seconds (bounded window)"
        )
        wire_bytes = r.counter(
            "wire_bytes_total", "HTTP payload bytes, by direction"
        )
        self._rx_bytes = wire_bytes.labels(direction="rx")
        self._tx_bytes = wire_bytes.labels(direction="tx")

    # -- hot-path increments (each one guarded no-op when disabled) ---- #

    def inc_received(self, *, binary: bool) -> None:
        if self.enabled:
            (self._req_binary if binary else self._req_json).inc()

    def record_strategy(self, name: str) -> None:
        if self.enabled:
            self._by_strategy.labels(strategy=name).inc()

    def inc_completed(self) -> None:
        if self.enabled:
            self._completed.inc()

    def inc_computed(self, amount: int = 1) -> None:
        if self.enabled:
            self._computed.inc(amount)

    def inc_batches(self) -> None:
        if self.enabled:
            self._batches.inc()

    def inc_rejected(self) -> None:
        if self.enabled:
            self._rejected.inc()

    def inc_timeouts(self) -> None:
        if self.enabled:
            self._timeouts.inc()

    def inc_errors(self) -> None:
        if self.enabled:
            self._errors.inc()

    def inc_deduped(self) -> None:
        if self.enabled:
            self._deduped.inc()

    def inc_memo_hit(self) -> None:
        if self.enabled:
            self._memo_hits.inc()

    def record_latency(self, seconds: float) -> None:
        if self.enabled:
            self._latency.observe(seconds)

    def add_rx(self, nbytes: int) -> None:
        if self.enabled and nbytes:
            self._rx_bytes.inc(nbytes)

    def add_tx(self, nbytes: int) -> None:
        if self.enabled:
            self._tx_bytes.inc(nbytes)

    # -- the historical read attributes, now derived ------------------- #

    @property
    def received(self) -> int:
        return self._req_json._value + self._req_binary._value

    @property
    def wire_requests(self) -> int:
        return self._req_binary._value

    @property
    def completed(self) -> int:
        return self._completed.value

    @property
    def computed(self) -> int:
        return self._computed.value

    @property
    def batches(self) -> int:
        return self._batches.value

    @property
    def rejected(self) -> int:
        return self._rejected.value

    @property
    def timeouts(self) -> int:
        return self._timeouts.value

    @property
    def errors(self) -> int:
        return self._errors.value

    @property
    def deduped_inflight(self) -> int:
        return self._deduped.value

    @property
    def cache_hits(self) -> int:
        return self._memo_hits._value + self._disk_hits._value

    @property
    def cache_misses(self) -> int:
        return self._cache_misses.value

    #: the historical percentile formula, shared with the histogram
    _percentile = staticmethod(Histogram.percentile)

    def snapshot(self, *, queue_depth: int, inflight: int) -> dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            # monotonic: wall clock would jump (or go negative) on an
            # NTP step; the recent-ring ``ts`` stays wall-clock on
            # purpose (it is correlated with external logs)
            "uptime_seconds": self.registry.uptime(),
            "queue_depth": queue_depth,
            "inflight": inflight,
            "requests": {
                "received": self.received,
                "completed": self.completed,
                "computed": self.computed,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "errors": self.errors,
                "wire": self.wire_requests,
                "deduped_inflight": self.deduped_inflight,
                "by_encoding": {
                    "json": self._req_json._value,
                    "binary": self._req_binary._value,
                },
                "by_strategy": self._by_strategy.child_values(),
            },
            "batches": self.batches,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "memo_hits": self._memo_hits._value,
                "disk_hits": self._disk_hits._value,
            },
            "latency_ms": self._latency.summary(scale=1000.0),
            "wire_bytes": {
                "rx": self._rx_bytes._value,
                "tx": self._tx_bytes._value,
            },
        }


class ServiceServer:
    """The service itself; see the module docstring for the data flow.

    Use :meth:`run` from the CLI (blocking), or ``await start()`` /
    ``await stop()`` from an existing event loop (what
    :class:`ServerThread` and the tests do).
    """

    def __init__(
        self,
        config: ServerConfig = ServerConfig(),
        *,
        cache: ResultCache | None = None,
        pool: WorkerPool | None = None,
    ):
        self.config = config
        self.cache = cache if cache is not None else (
            ResultCache(config.cache_dir) if config.cache_dir else None
        )
        if pool is None:
            kwargs = {}
            if config.shm_min_nodes >= 0:
                kwargs["shm_min_nodes"] = config.shm_min_nodes
            pool = WorkerPool(
                config.workers,
                inline_threads=config.inline_threads,
                shm_transport=config.shm_transport,
                **kwargs,
            )
        self.pool = pool
        # Every server owns its registry: scrapes and tests see exactly
        # this instance's traffic, never another server's in the same
        # process (the library surfaces share the module-global one).
        self.registry = MetricsRegistry()
        self.metrics = ServiceMetrics(
            self.registry, enabled=config.observability
        )
        if self.cache is not None and config.observability:
            self.cache.bind_registry(self.registry)
        self.registry.gauge("queue_depth", "admission-queue depth").set_function(
            lambda: self._queue.qsize() if self._queue is not None else 0
        )
        self.registry.gauge("inflight", "in-flight request keys").set_function(
            lambda: len(self._inflight)
        )
        self.port: int | None = None  # bound port, set by start()
        # queue items: (key, payload, enqueue perf_counter, timings|None)
        self._queue: asyncio.Queue[
            tuple[str, dict[str, Any], float, dict[str, float] | None]
        ] | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._batch_tasks: set[asyncio.Task] = set()
        self._batch_slots: asyncio.Semaphore | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._memo: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        # frame bytes -> request key: the frame encoding is canonical,
        # so identical bytes are the same request — repeat frames skip
        # the decode entirely (bounded alongside the memo)
        self._body_keys: "OrderedDict[bytes, str]" = OrderedDict()
        # bounded ring of recently answered requests, feeding the
        # dashboard's tables; only populated when the dashboard is on
        self._recent: deque[dict[str, Any]] = deque(maxlen=256)
        self._track_recent = config.dashboard

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        # Bounding in-flight batches to the pool's concurrency is what
        # makes the admission queue meaningful: when every worker is busy
        # the queue fills and overload turns into 429s, not latency.
        self._batch_slots = asyncio.Semaphore(self.pool.concurrency)
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
        # keep-alive connections idle for up to keepalive_timeout; cancel
        # them *before* wait_closed (which on newer Pythons waits for
        # every handler) or shutdown would hang until they time out.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
        for task in list(self._batch_tasks):
            task.cancel()
        self.pool.shutdown()

    def run(self) -> None:
        """Blocking entry point (the CLI's ``serve``); Ctrl-C to stop."""

        async def _main() -> None:
            await self.start()
            assert self._server is not None
            try:
                await self._server.serve_forever()
            finally:
                await self.stop()

        asyncio.run(_main())

    # ------------------------------------------------------------------ #
    # dispatcher: queue -> micro-batches -> worker pool
    # ------------------------------------------------------------------ #

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None and self._batch_slots is not None
        loop = asyncio.get_running_loop()
        window = self.config.batch_window_ms / 1000.0
        while True:
            await self._batch_slots.acquire()
            try:
                first = await self._queue.get()
            except asyncio.CancelledError:
                self._batch_slots.release()
                raise
            batch = [first]
            deadline = loop.time() + window
            while len(batch) < self.config.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            task = asyncio.create_task(self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(
        self,
        batch: list[tuple[str, dict[str, Any], float, dict[str, float] | None]],
    ) -> None:
        assert self._batch_slots is not None
        t_batch = time.perf_counter()
        try:
            payloads = [payload for _, payload, _, _ in batch]
            try:
                envelopes = await self.pool.run_batch(payloads)
            except Exception as exc:  # pool death is an internal error
                envelopes = [
                    error_envelope("internal", f"worker pool failure: {exc}")
                ] * len(batch)
            self.metrics.inc_batches()
            self.metrics.inc_computed(len(batch))
            loop = asyncio.get_running_loop()
            for (key, _, enqueued_at, timings), envelope in zip(batch, envelopes):
                if envelope.get("ok") and self.cache is not None:
                    # timings never reach the cache: stage breakdowns are
                    # provenance of *this* execution, not of the result
                    self._memo_put(key, envelope["result"])
                    try:
                        # off the loop: a slow disk stalls this batch's
                        # write-back, not every open connection
                        await loop.run_in_executor(
                            None, self.cache.put, key, envelope["result"]
                        )
                    except OSError:
                        pass  # a full disk must not take the service down
                if timings is not None and envelope.get("ok"):
                    merged = dict(envelope.get("timings") or {})
                    merged.update(timings)
                    merged["queue"] = t_batch - enqueued_at
                    envelope = dict(envelope, timings=merged)
                future = self._inflight.pop(key, None)
                if future is not None and not future.done():
                    future.set_result(envelope)
        finally:
            self._batch_slots.release()

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #

    async def _submit(self, body: bytes) -> tuple[int, dict[str, Any]]:
        self.metrics.inc_received(binary=False)
        t0 = time.perf_counter()
        try:
            obj = json.loads(body)
        except ValueError:
            self.metrics.inc_errors()
            return 400, error_envelope("bad_json", "request body is not valid JSON")
        try:
            request = parse_request(obj)
        except ProtocolError as exc:
            self.metrics.inc_errors()
            return HTTP_STATUS[exc.code], error_envelope(exc.code, exc.message)
        # stage timings exist only for traced requests: untraced ones
        # never allocate the dict, keeping the no-trace overhead at one
        # attribute check
        timings = (
            {"decode": time.perf_counter() - t0}
            if getattr(request, "trace", None)
            else None
        )
        return await self._submit_request(request, t0, timings)

    async def _submit_wire(self, body: bytes) -> tuple[int, dict[str, Any]]:
        """The binary fast path: frame -> trusted tree -> typed request.

        One vectorised validation inside :func:`request_from_frame`
        replaces JSON parsing and the per-element type checks; from the
        typed request on, the lifecycle (dedup, cache, queue, workers)
        is byte-for-byte the JSON path's, so outcomes and cache entries
        are interchangeable between encodings.
        """
        self.metrics.inc_received(binary=True)
        t0 = time.perf_counter()
        try:
            request = request_from_frame(body)
        except ProtocolError as exc:
            self.metrics.inc_errors()
            return HTTP_STATUS[exc.code], error_envelope(exc.code, exc.message)
        timings = (
            {"decode": time.perf_counter() - t0}
            if getattr(request, "trace", None)
            else None
        )
        return await self._submit_request(request, t0, timings)

    def _fast_submit(
        self, body: bytes, content_type: str | None, *, binary: bool, close: bool
    ) -> tuple[bytes, bool] | None:
        """A fully synchronous answer for frame requests the memo holds.

        Returns the rendered response, or ``None`` to send the request
        down the ordinary pipelined path (which re-decodes — cheap next
        to the compute a memo miss implies).  Skipping the per-request
        task, semaphore and executor machinery roughly halves the
        loop's cost per warm hit, which is most of a pipelined burst.
        """
        if not self._memo or media_type(content_type) != WIRE_CONTENT_TYPE:
            return None
        t0 = time.perf_counter()
        key = self._body_keys.get(body)
        if key is None:
            try:
                request = request_from_frame(body)
            except ProtocolError:
                return None  # the full path renders the error (and counts it)
            if getattr(request, "trace", None):
                # traced requests take the full path, which produces the
                # stage breakdown (and is what tracing opts into paying)
                return None
            key = request.key()
            self._body_keys[bytes(body)] = key
            while len(self._body_keys) > self.config.memo_entries:
                self._body_keys.popitem(last=False)
        value = self._memo_get(key)
        if value is None:
            return None
        self.metrics.inc_received(binary=True)
        self.metrics.inc_completed()
        self.metrics.record_latency(time.perf_counter() - t0)
        if self._track_recent:
            self._record_recent(key, value, cached=True, deduped=False,
                                elapsed=time.perf_counter() - t0)
        return self._render(
            200,
            ok_envelope(value, key=key, cached=True),
            binary=binary,
            close=close,
        )

    def _memo_get(self, key: str) -> dict[str, Any] | None:
        value = self._memo.get(key)
        if value is not None:
            self._memo.move_to_end(key)
            self.metrics.inc_memo_hit()
        return value

    def _memo_put(self, key: str, value: dict[str, Any]) -> None:
        cap = self.config.memo_entries
        if cap <= 0:
            return
        self._memo[key] = value
        self._memo.move_to_end(key)
        while len(self._memo) > cap:
            self._memo.popitem(last=False)

    def _record_recent(
        self,
        key: str,
        value: dict[str, Any] | None,
        *,
        cached: bool,
        deduped: bool,
        elapsed: float,
    ) -> None:
        """Append one answered request to the dashboard's bounded ring."""
        value = value or {}
        self._recent.append({
            "key": key,
            "kind": value.get("kind"),
            "algorithm": value.get("algorithm"),
            "io_volume": value.get("io_volume"),
            "cached": cached,
            "deduped": deduped,
            "elapsed_ms": elapsed * 1000.0,
            "traced": "schedule_trace" in value,
            "ts": time.time(),
        })

    async def _submit_request(
        self, request: Any, t0: float, timings: dict[str, float] | None = None
    ) -> tuple[int, dict[str, Any]]:
        key = request.key()
        timeout = request.timeout or self.config.request_timeout
        loop = asyncio.get_running_loop()
        self.metrics.record_strategy(
            getattr(request, "algorithm", None) or request.kind
        )

        # 1) coalesce onto an identical in-flight computation
        existing = self._inflight.get(key)
        if existing is not None:
            self.metrics.inc_deduped()
            return await self._await_result(
                existing, key, timeout, t0, deduped=True
            )

        # Register as in-flight *before* the cache lookup below awaits:
        # identical requests arriving during the disk read coalesce here
        # instead of issuing their own read (or their own computation).
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future

        def _resolve(status: int, envelope: dict[str, Any]) -> tuple[int, dict[str, Any]]:
            self._inflight.pop(key, None)
            if not future.done():
                future.set_result(envelope)
            return status, envelope

        # 2) serve a completed identical request from the result cache —
        #    hottest entries straight from the in-memory memo (no
        #    executor hop, no disk), the rest from disk on the default
        #    executor, never on the loop
        if self.cache is not None:
            t_cache = time.perf_counter()
            value = self._memo_get(key)
            if value is None:
                value = await loop.run_in_executor(None, self.cache.get, key)
                if value is not None:
                    self._memo_put(key, value)
            if timings is not None:
                timings["cache"] = time.perf_counter() - t_cache
            if value is not None:
                self.metrics.inc_completed()
                elapsed = time.perf_counter() - t0
                self.metrics.record_latency(elapsed)
                if self._track_recent:
                    self._record_recent(
                        key, value, cached=True, deduped=False, elapsed=elapsed
                    )
                return _resolve(
                    200,
                    ok_envelope(value, key=key, cached=True, timings=timings),
                )

        # 3) admit into the bounded queue (or reject: backpressure)
        assert self._queue is not None
        try:
            self._queue.put_nowait(
                (key, request.to_payload(), time.perf_counter(), timings)
            )
        except asyncio.QueueFull:
            self.metrics.inc_rejected()
            # resolves the future too: coalesced waiters share the 429
            return _resolve(
                429,
                error_envelope(
                    "queue_full",
                    f"admission queue at capacity ({self.config.queue_limit}); "
                    "retry later",
                ),
            )
        return await self._await_result(future, key, timeout, t0, deduped=False)

    async def _await_result(
        self,
        future: asyncio.Future,
        key: str,
        timeout: float,
        t0: float,
        *,
        deduped: bool,
    ) -> tuple[int, dict[str, Any]]:
        try:
            # shield: a timeout abandons *this waiter*, not the shared
            # computation — it still completes and populates the cache.
            envelope = await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            self.metrics.inc_timeouts()
            return 504, error_envelope(
                "timeout", f"request did not complete within {timeout:.3f}s"
            )
        if envelope.get("ok"):
            self.metrics.inc_completed()
            elapsed = time.perf_counter() - t0
            self.metrics.record_latency(elapsed)
            if deduped:
                envelope = dict(envelope, deduped=True)
            if self._track_recent:
                self._record_recent(
                    key,
                    envelope.get("result"),
                    cached=bool(envelope.get("cached")),
                    deduped=deduped,
                    elapsed=elapsed,
                )
            return 200, envelope
        self.metrics.inc_errors()
        code = envelope.get("error", {}).get("code", "internal")
        return HTTP_STATUS.get(code, 500), envelope

    def _metrics_body(self) -> dict[str, Any]:
        queue_depth = self._queue.qsize() if self._queue is not None else 0
        return self.metrics.snapshot(
            queue_depth=queue_depth, inflight=len(self._inflight)
        )

    # ------------------------------------------------------------------ #
    # minimal HTTP/1.1 plumbing (stdlib only; keep-alive + pipelining)
    # ------------------------------------------------------------------ #

    def _render(
        self, status: int, body: dict[str, Any], *, binary: bool, close: bool
    ) -> tuple[bytes, bool]:
        """One rendered HTTP response; returns ``(bytes, close_after)``."""
        if binary:
            payload = encode_response_frame(body)
            content_type = WIRE_CONTENT_TYPE
        else:
            payload = json.dumps(body).encode("utf-8")
            content_type = JSON_CONTENT_TYPE
        return self._render_raw(status, content_type, payload, close=close)

    def _render_raw(
        self, status: int, content_type: str, payload: bytes, *, close: bool
    ) -> tuple[bytes, bool]:
        """Render a response whose payload bytes are already encoded
        (Prometheus text, dashboard HTML, trace SVG)."""
        self.metrics.add_tx(len(payload))
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n\r\n"
        )
        return head.encode("ascii") + payload, close

    async def _write_loop(
        self, queue: "asyncio.Queue", writer: asyncio.StreamWriter
    ) -> None:
        """Drain rendered responses to the socket, strictly in order.

        Queue items are awaitables resolving to ``(bytes, close_after)``
        — pipelined requests complete in any order, but their responses
        leave in the order the requests arrived.  Responses that are
        ready back-to-back are coalesced into one write: under a
        pipelined burst that turns a syscall per response into a
        syscall per batch of ready responses.
        """
        ready: list[bytes] = []
        close = False
        try:
            while not close:
                if ready and queue.empty():
                    writer.write(b"".join(ready))
                    ready.clear()
                    await writer.drain()
                item = await queue.get()
                if item is None:
                    break
                if ready and not item.done():
                    writer.write(b"".join(ready))
                    ready.clear()
                    await writer.drain()
                data, close = await item
                ready.append(data)
        finally:
            if ready:
                with contextlib.suppress(ConnectionError, RuntimeError):
                    writer.write(b"".join(ready))
                    await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        keepalive = self.config.keepalive_timeout
        pipeline = asyncio.Semaphore(max(1, self.config.max_pipeline))
        responses: asyncio.Queue = asyncio.Queue()
        write_task = asyncio.create_task(self._write_loop(responses, writer))
        loop = asyncio.get_running_loop()

        def _enqueue_now(rendered: tuple[bytes, bool]) -> None:
            future: asyncio.Future = loop.create_future()
            future.set_result(rendered)
            responses.put_nowait(future)

        try:
            while True:
                try:
                    parsed = await asyncio.wait_for(
                        self._read_request(reader),
                        keepalive if keepalive > 0 else None,
                    )
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection: hang up quietly
                except (ValueError, asyncio.LimitOverrunError):
                    # an over-long request/header line blew the
                    # StreamReader limit; the stream cannot be resynced
                    _enqueue_now(self._render(
                        400,
                        error_envelope("bad_request", "malformed HTTP request"),
                        binary=False, close=True,
                    ))
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break  # client went away mid-request
                if parsed is None:
                    break  # clean EOF between requests
                method, path, headers, body, oversized = parsed
                self.metrics.add_rx(len(body))
                close = (
                    keepalive <= 0
                    or headers.get("connection", "").strip().lower() == "close"
                )
                binary = accepts_wire(headers.get("accept"))

                if oversized:
                    # the body was never read; the stream cannot continue
                    _enqueue_now(self._render(
                        413,
                        error_envelope(
                            "payload_too_large",
                            f"body of {oversized} bytes exceeds "
                            f"{self.config.max_body_bytes}",
                        ),
                        binary=binary, close=True,
                    ))
                    break
                if path == "/v1/submit" and method == "POST":
                    fast = self._fast_submit(
                        body, headers.get("content-type"),
                        binary=binary, close=close,
                    )
                    if fast is not None:
                        _enqueue_now(fast)
                        if close:
                            break
                        continue
                    # the pipelined path: handle concurrently, answer in order
                    await pipeline.acquire()
                    responses.put_nowait(asyncio.create_task(
                        self._pipelined_submit(
                            body, headers.get("content-type"), pipeline,
                            binary=binary, close=close,
                        )
                    ))
                    if close:
                        break
                    continue
                raw = self._route_raw(method, path, headers, close=close)
                if raw is None:
                    status, envelope = self._route_simple(method, path)
                    raw = self._render(status, envelope, binary=False, close=close)
                _enqueue_now(raw)
                if close:
                    break
            responses.put_nowait(None)
            await write_task
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            if not write_task.done():
                write_task.cancel()
                with contextlib.suppress(asyncio.CancelledError, ConnectionError):
                    await write_task
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    def _route_raw(
        self, method: str, path: str, headers: dict[str, str], *, close: bool
    ) -> tuple[bytes, bool] | None:
        """Routes whose responses are not JSON envelopes: the Prometheus
        exposition of ``/metrics`` (negotiated via ``Accept``) and the
        dashboard's page and per-request schedule-trace SVGs.  Returns
        ``None`` to fall through to :meth:`_route_simple`.
        """
        if method != "GET":
            return None
        if path == "/metrics":
            accept = headers.get("accept", "")
            if "text/plain" in accept or "openmetrics" in accept:
                text = self.registry.render_prometheus()
                return self._render_raw(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    text.encode("utf-8"),
                    close=close,
                )
            return None
        if not self.config.dashboard:
            return None
        from .dashboard import DASHBOARD_HTML, render_trace_svg

        if path in ("/dash", "/dash/"):
            return self._render_raw(
                200,
                "text/html; charset=utf-8",
                DASHBOARD_HTML.encode("utf-8"),
                close=close,
            )
        if path.startswith("/dash/trace/"):
            key = path[len("/dash/trace/"):]
            result = self._peek_result(key)
            if result is None or "schedule_trace" not in result:
                return self._render(
                    404,
                    error_envelope(
                        "not_found",
                        "no cached result with a schedule trace under that "
                        "key (submit it with trace_schedule=true first)",
                    ),
                    binary=False,
                    close=close,
                )
            svg = render_trace_svg(result, key)
            return self._render_raw(
                200, "image/svg+xml", svg.encode("utf-8"), close=close
            )
        return None

    def _peek_result(self, key: str) -> dict[str, Any] | None:
        """A cached result by key, *without* touching hit/miss counters —
        dashboard drill-downs must not pollute the cache metrics."""
        if len(key) != 64 or not all(c in "0123456789abcdef" for c in key):
            return None
        value = self._memo.get(key)
        if value is not None:
            return value
        if self.cache is None:
            return None
        try:
            return json.loads(
                self.cache._path(key).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None

    def _route_simple(self, method: str, path: str) -> tuple[int, dict[str, Any]]:
        if path == "/healthz" and method == "GET":
            from .. import __version__ as repro_version

            return 200, {
                "ok": True,
                "protocol": PROTOCOL_VERSION,
                "versions": {
                    "repro": repro_version,
                    "protocol": PROTOCOL_VERSION,
                    "wire": WIRE_VERSION,
                    "engine": ENGINE_VERSION,
                },
            }
        if path == "/metrics" and method == "GET":
            return 200, self._metrics_body()
        if path == "/dash/data" and method == "GET" and self.config.dashboard:
            from .dashboard import dashboard_data

            return 200, dashboard_data(self)
        if path == "/v1/submit":
            return 405, error_envelope(
                "method_not_allowed", f"{method} not allowed on {path}"
            )
        return 404, error_envelope("not_found", f"no endpoint {method} {path}")

    async def _pipelined_submit(
        self,
        body: bytes,
        content_type: str | None,
        pipeline: asyncio.Semaphore,
        *,
        binary: bool,
        close: bool,
    ) -> tuple[bytes, bool]:
        """One submit, from negotiation to rendered bytes (pipeline-safe)."""
        try:
            received = media_type(content_type)
            if received == WIRE_CONTENT_TYPE:
                status, envelope = await self._submit_wire(body)
            elif received in ("", JSON_CONTENT_TYPE, "text/json"):
                status, envelope = await self._submit(body)
            else:
                self.metrics.inc_errors()
                status, envelope = 415, error_envelope(
                    "unsupported_media_type",
                    f"cannot decode a {received!r} body; send "
                    f"{JSON_CONTENT_TYPE} or {WIRE_CONTENT_TYPE}",
                )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # defence: a handler bug must not wedge the writer
            status, envelope = 500, error_envelope(
                "internal", f"unexpected failure handling request: {exc}"
            )
        finally:
            pipeline.release()
        if status == 200 and "timings" in envelope:
            # traced requests opt into measuring their own encode: time a
            # throwaway encode, then render the patched envelope (copied —
            # coalesced waiters share the resolved envelope's timings)
            t_encode = time.perf_counter()
            if binary:
                encode_response_frame(envelope)
            else:
                json.dumps(envelope)
            timings = dict(envelope["timings"])
            timings["encode"] = time.perf_counter() - t_encode
            envelope = dict(envelope, timings=timings)
        return self._render(status, envelope, binary=binary, close=close)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes, int] | None:
        """Read one full request off the stream (head *and* body).

        Returns ``None`` on clean EOF before a request line, else
        ``(method, path, headers, body, oversized)`` where a non-zero
        ``oversized`` is the declared length of a body that was *not*
        read because it exceeds ``max_body_bytes`` (the connection must
        close after answering 413).  Raises ``ValueError`` on malformed
        heads — the caller answers 400 and closes.
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial.strip():
                return None  # clean EOF between requests
            raise  # client went away mid-head; nothing to answer
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) < 2:
            raise ValueError("malformed request line")
        method, path = parts[0], parts[1]

        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ValueError("bad Content-Length") from None
        if content_length < 0:
            raise ValueError("bad Content-Length")
        if content_length > self.config.max_body_bytes:
            return method, path, headers, b"", content_length
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, headers, body, 0


class ServerThread:
    """Run a :class:`ServiceServer` on a background thread (tests, benchmarks).

    Context-manager protocol: entering starts the loop thread, binds the
    socket (an ephemeral port if ``config.port == 0``) and blocks until
    the service answers; exiting shuts everything down.

    ::

        with ServerThread(ServerConfig(port=0, workers=0)) as srv:
            client = ServiceClient(port=srv.port)
            ...
    """

    def __init__(
        self,
        config: ServerConfig = ServerConfig(port=0, workers=0),
        *,
        cache: ResultCache | None = None,
        pool: WorkerPool | None = None,
    ):
        self.server = ServiceServer(config, cache=cache, pool=pool)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.server.config.host

    @property
    def port(self) -> int:
        assert self.server.port is not None, "server not started"
        return self.server.port

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("service did not start within 30s")
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def _run(self) -> None:
        async def _main() -> None:
            self._stop = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            try:
                await self._stop.wait()
            finally:
                await self.server.stop()

        with contextlib.suppress(Exception):
            asyncio.run(_main())


@contextlib.contextmanager
def running_server(
    config: ServerConfig = ServerConfig(port=0, workers=0),
    *,
    cache: ResultCache | None = None,
    pool: WorkerPool | None = None,
) -> Iterator[ServiceServer]:
    """``with running_server(...) as server:`` — thread-backed, auto-stopped."""
    with ServerThread(config, cache=cache, pool=pool) as thread:
        yield thread.server
