"""Sparse symmetric matrix generators and fill-reducing orderings.

The paper's TREES dataset consists of elimination trees of matrices from
the University of Florida Sparse Matrix Collection.  That collection is
not available offline, so this module provides the *matrix side* of a
faithful substitute: structurally realistic symmetric patterns

* 2-D and 3-D grid Laplacians (the canonical PDE discretisations behind a
  large share of the collection),
* random symmetric patterns with prescribed average degree,

combined with the orderings that shape real elimination trees:

* natural (lexicographic grid) order,
* reverse Cuthill–McKee (scipy),
* a from-scratch greedy **minimum-degree** ordering (the classic
  fill-reducing heuristic used by direct solvers),
* uniformly random permutations (worst-case-ish fill).

Only the *pattern* matters downstream (the paper's model is symbolic), so
all values are 1.0.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee

__all__ = [
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "random_symmetric_pattern",
    "minimum_degree_ordering",
    "random_ordering",
    "rcm_ordering",
    "natural_ordering",
    "permute_symmetric",
    "ORDERINGS",
]


def _as_symmetric_csr(a: sp.spmatrix) -> sp.csr_matrix:
    """Symmetrise the pattern, force a unit diagonal, drop values."""
    a = sp.csr_matrix(a)
    pattern = (a + a.T).tocsr()
    pattern.data[:] = 1.0
    pattern = pattern + sp.eye(pattern.shape[0], format="csr")
    pattern.data[:] = 1.0
    pattern.sum_duplicates()
    return pattern


def grid_laplacian_2d(nx: int, ny: int) -> sp.csr_matrix:
    """The 5-point Laplacian pattern on an ``nx × ny`` grid."""
    dx = sp.diags([np.ones(nx - 1), np.ones(nx - 1)], [-1, 1], shape=(nx, nx))
    dy = sp.diags([np.ones(ny - 1), np.ones(ny - 1)], [-1, 1], shape=(ny, ny))
    adj = sp.kron(sp.eye(ny), dx) + sp.kron(dy, sp.eye(nx))
    return _as_symmetric_csr(adj)


def grid_laplacian_3d(nx: int, ny: int, nz: int) -> sp.csr_matrix:
    """The 7-point Laplacian pattern on an ``nx × ny × nz`` grid."""
    plane = grid_laplacian_2d(nx, ny)
    dz = sp.diags([np.ones(nz - 1), np.ones(nz - 1)], [-1, 1], shape=(nz, nz))
    adj = sp.kron(sp.eye(nz), plane) + sp.kron(dz, sp.eye(nx * ny))
    return _as_symmetric_csr(adj)


def random_symmetric_pattern(
    n: int, avg_degree: float, rng: np.random.Generator
) -> sp.csr_matrix:
    """A random symmetric pattern with ≈ ``avg_degree`` off-diagonals per row."""
    if avg_degree <= 0 or avg_degree >= n:
        raise ValueError(f"avg_degree must be in (0, n), got {avg_degree}")
    nnz = int(n * avg_degree / 2)
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    keep = rows != cols
    a = sp.coo_matrix(
        (np.ones(keep.sum()), (rows[keep], cols[keep])), shape=(n, n)
    )
    return _as_symmetric_csr(a)


# ----------------------------------------------------------------------
# orderings
# ----------------------------------------------------------------------
def natural_ordering(a: sp.csr_matrix, rng=None) -> np.ndarray:
    """Identity permutation."""
    return np.arange(a.shape[0])


def random_ordering(a: sp.csr_matrix, rng: np.random.Generator) -> np.ndarray:
    """A uniformly random permutation (typically produces heavy fill)."""
    return rng.permutation(a.shape[0])


def rcm_ordering(a: sp.csr_matrix, rng=None) -> np.ndarray:
    """Reverse Cuthill–McKee (bandwidth-reducing) ordering."""
    return np.asarray(reverse_cuthill_mckee(sp.csr_matrix(a), symmetric_mode=True))


def minimum_degree_ordering(a: sp.csr_matrix, rng=None) -> np.ndarray:
    """Greedy minimum-degree elimination ordering (no supervariables).

    Classic fill-reducing heuristic: repeatedly eliminate a vertex of
    minimum degree in the quotient elimination graph, turning its
    neighbourhood into a clique.  Quadratic-ish worst case, entirely
    adequate for the instance sizes used here, and a genuine substrate:
    direct solvers' elimination trees are shaped by this family of
    orderings.
    """
    a = sp.csr_matrix(a)
    n = a.shape[0]
    adj: list[set[int]] = [set() for _ in range(n)]
    indptr, indices = a.indptr, a.indices
    for i in range(n):
        for j in indices[indptr[i] : indptr[i + 1]]:
            if i != j:
                adj[i].add(int(j))

    import heapq

    heap = [(len(adj[v]), v) for v in range(n)]
    heapq.heapify(heap)
    eliminated = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    k = 0
    while heap:
        deg, v = heapq.heappop(heap)
        if eliminated[v] or deg != len(adj[v]):
            continue  # stale entry
        eliminated[v] = True
        order[k] = v
        k += 1
        neighbours = adj[v]
        for u in neighbours:
            adj[u].discard(v)
        # Clique the neighbourhood.
        nb = list(neighbours)
        for idx, u in enumerate(nb):
            new = neighbours.difference(adj[u])
            new.discard(u)
            if new:
                adj[u].update(new)
            heapq.heappush(heap, (len(adj[u]), u))
        adj[v] = set()
    assert k == n
    return order


def permute_symmetric(a: sp.csr_matrix, perm: np.ndarray) -> sp.csr_matrix:
    """Return ``P A Pᵀ`` where row ``i`` of the result is ``perm[i]`` of ``a``."""
    a = sp.csr_matrix(a)
    n = a.shape[0]
    inv = np.empty(n, dtype=np.int64)
    inv[perm] = np.arange(n)
    coo = a.tocoo()
    return sp.csr_matrix(
        (coo.data, (inv[coo.row], inv[coo.col])), shape=a.shape
    )


#: registry used by the TREES dataset builder
ORDERINGS = {
    "natural": natural_ordering,
    "rcm": rcm_ordering,
    "mindeg": minimum_degree_ordering,
    "random": random_ordering,
}
