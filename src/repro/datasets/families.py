"""Named tree families from the scheduling literature, plus weight models.

The SYNTH/TREES datasets answer "how do the heuristics behave on average
and on real fronts?"; these parametric families answer "*why*" — each one
isolates a structural trait that drives I/O behaviour:

* **chains** compose serially (no scheduling freedom at all);
* **caterpillars** are the postorder worst case (Figure 2(a) is one);
* **spiders** and **bouquets** stress sibling-ordering decisions
  (Theorem 3's territory);
* **complete k-ary trees** maximise simultaneous open subtrees;
* **Prüfer-uniform** and **preferential-attachment** trees probe shapes
  the uniform *binary* SYNTH sampler cannot reach.

Weight models mirror the three regimes seen in practice: uniform (the
paper's SYNTH), heavy-tailed (power law) and *front-like* (weights grow
toward the root as in multifrontal contribution blocks, where separator
fronts dominate).

Everything is seeded and pure: same arguments, same tree.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core.tree import TaskTree

__all__ = [
    "caterpillar",
    "diamond_caterpillar",
    "spider",
    "bouquet",
    "interleaved_bouquet",
    "complete_kary",
    "random_prufer_tree",
    "preferential_attachment_tree",
    "uniform_weights",
    "powerlaw_weights",
    "front_weights",
    "FAMILIES",
]


# ----------------------------------------------------------------------
# shapes
# ----------------------------------------------------------------------
def caterpillar(
    spine: int,
    *,
    spine_weight: int = 1,
    leaf_weight: int = 8,
    leaves_per_node: int = 1,
) -> TaskTree:
    """A spine of ``spine`` nodes, each carrying pendant leaves.

    Node 0 is the root; spine node ``i`` has ``leaves_per_node`` leaf
    children of weight ``leaf_weight``.  With heavy leaves this family is
    the canonical postorder-killer (compare Figure 2(a)).
    """
    if spine < 1:
        raise ValueError("caterpillar needs a spine of at least one node")
    parents: list[int] = []
    weights: list[int] = []
    prev = -1
    for _ in range(spine):
        v = len(parents)
        parents.append(prev)
        weights.append(spine_weight)
        for _ in range(leaves_per_node):
            parents.append(v)
            weights.append(leaf_weight)
        prev = v
    return TaskTree(parents, weights)


def spider(
    legs: int,
    leg_length: int,
    *,
    root_weight: int = 1,
    leg_weight: int | Sequence[int] = 1,
) -> TaskTree:
    """A root with ``legs`` chains of ``leg_length`` nodes hanging off it.

    ``leg_weight`` may be one integer or a root-to-leaf weight profile of
    length ``leg_length`` shared by all legs.
    """
    if legs < 1 or leg_length < 1:
        raise ValueError("spider needs at least one leg of length one")
    if isinstance(leg_weight, int):
        profile = [leg_weight] * leg_length
    else:
        profile = list(leg_weight)
        if len(profile) != leg_length:
            raise ValueError(
                f"weight profile has {len(profile)} entries for legs of "
                f"length {leg_length}"
            )
    parents = [-1]
    weights = [root_weight]
    for _ in range(legs):
        prev = 0
        for w in profile:
            parents.append(prev)
            weights.append(w)
            prev = len(parents) - 1
    return TaskTree(parents, weights)


def bouquet(chains: int, chain_length: int, *, weight: int = 1) -> TaskTree:
    """``chains`` equal chains under one unit root (Figure 2(b)'s shape)."""
    return spider(chains, chain_length, root_weight=1, leg_weight=weight)


def complete_kary(depth: int, k: int, *, weight: int | Callable[[int], int] = 1) -> TaskTree:
    """The complete ``k``-ary tree of the given depth (depth 0 = one node).

    ``weight`` may be constant or a function of the node's depth.
    """
    if k < 1:
        raise ValueError("arity must be at least 1")
    parents = [-1]
    depths = [0]
    frontier = [0]
    for d in range(1, depth + 1):
        new_frontier = []
        for p in frontier:
            for _ in range(k):
                parents.append(p)
                depths.append(d)
                new_frontier.append(len(parents) - 1)
        frontier = new_frontier
    if callable(weight):
        weights = [weight(d) for d in depths]
    else:
        weights = [weight] * len(parents)
    return TaskTree(parents, weights)


def random_prufer_tree(
    n: int,
    rng: np.random.Generator,
    *,
    weights: Sequence[int] | None = None,
) -> TaskTree:
    """A uniformly random *labelled* tree on ``n`` nodes, rooted at 0.

    Decodes a uniform Prüfer sequence (every labelled tree appears with
    probability ``1/n^(n-2)``), then orients every edge toward node 0.
    Unlike the SYNTH sampler this is not restricted to binary shapes.
    """
    if n < 1:
        raise ValueError("need at least one node")
    if weights is not None and len(weights) != n:
        raise ValueError("weights are not index-aligned with the nodes")
    w = list(weights) if weights is not None else [1] * n
    if n == 1:
        return TaskTree([-1], w)
    if n == 2:
        return TaskTree([-1, 0], w)

    seq = rng.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=np.int64)
    for s in seq:
        degree[s] += 1
    # Standard decode: repeatedly join the smallest leaf to the next code.
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    edges: list[tuple[int, int]] = []
    for s in seq:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, int(s)))
        degree[s] -= 1
        if degree[s] == 1:
            heapq.heappush(leaves, int(s))
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))

    # Orient toward root 0 by BFS.
    adj: list[list[int]] = [[] for _ in range(n)]
    for a, b in edges:
        adj[a].append(b)
        adj[b].append(a)
    parents = [-2] * n
    parents[0] = -1
    queue = [0]
    for node in queue:
        for nb in adj[node]:
            if parents[nb] == -2:
                parents[nb] = node
                queue.append(nb)
    return TaskTree(parents, w)


def preferential_attachment_tree(
    n: int,
    rng: np.random.Generator,
    *,
    bias: float = 1.0,
    weights: Sequence[int] | None = None,
) -> TaskTree:
    """A random recursive tree with degree-biased attachment.

    Node ``i`` attaches to an existing node with probability proportional
    to ``(children + 1)^bias``: ``bias = 0`` is the uniform random
    recursive tree, larger values produce hubs (star-like, shallow),
    which stresses the sibling-ordering machinery.
    """
    if n < 1:
        raise ValueError("need at least one node")
    if weights is not None and len(weights) != n:
        raise ValueError("weights are not index-aligned with the nodes")
    parents = [-1]
    child_count = [0]
    for i in range(1, n):
        scores = np.array([(c + 1) ** bias for c in child_count], dtype=float)
        probs = scores / scores.sum()
        p = int(rng.choice(i, p=probs))
        parents.append(p)
        child_count[p] += 1
        child_count.append(0)
    w = list(weights) if weights is not None else [1] * n
    return TaskTree(parents, w)


# ----------------------------------------------------------------------
# weight models
# ----------------------------------------------------------------------
def uniform_weights(
    n: int, rng: np.random.Generator, *, low: int = 1, high: int = 100
) -> list[int]:
    """The paper's SYNTH model: integer weights uniform on [low, high]."""
    return [int(x) for x in rng.integers(low, high + 1, size=n)]


def powerlaw_weights(
    n: int, rng: np.random.Generator, *, alpha: float = 2.0, w_min: int = 1,
    w_max: int = 10_000,
) -> list[int]:
    """Heavy-tailed weights: ``P(W > w) ~ w^(1-alpha)``, clamped to [w_min, w_max].

    Multifrontal front-size distributions are famously heavy-tailed; this
    model stresses the heuristics with a few dominant outputs.
    """
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1 for a finite-mean tail")
    u = rng.random(size=n)
    raw = w_min * (1.0 - u) ** (-1.0 / (alpha - 1.0))
    return [int(min(max(w_min, round(x)), w_max)) for x in raw]


def front_weights(tree: TaskTree, *, base: int = 1) -> list[int]:
    """Multifrontal-like weights: grow quadratically with subtree height.

    A node of height ``h`` (leaves have height 0) gets ``base*(h+1)^2`` —
    the contribution-block scaling of nested-dissection fronts, where
    separator size grows with subtree extent.
    """
    height = [0] * tree.n
    for v in tree.bottom_up():
        for c in tree.children[v]:
            height[v] = max(height[v], height[c] + 1)
    return [base * (h + 1) ** 2 for h in height]


def _interleaved_profile(k: int) -> list[int]:
    """Figure 2(c)'s root-to-leaf chain weights: 2k,3k,2k-1,3k+1,...,k,4k."""
    profile: list[int] = []
    for i in range(k + 1):
        profile.append(2 * k - i)
        profile.append(3 * k + i)
    return profile


def diamond_caterpillar(rng: np.random.Generator) -> TaskTree:
    """A Figure 2(a)-style caterpillar (heavy leaves under light joins).

    The one family guaranteed to have an I/O regime *and* to punish
    postorders: every leaf weighs ≈ M while the internal joins weigh 1.
    """
    from .instances import figure_2a

    memory = 2 * int(rng.integers(5, 17))  # even M in [10, 32]
    extensions = int(rng.integers(0, 4))
    return figure_2a(memory=memory, extensions=extensions).tree


def interleaved_bouquet(rng: np.random.Generator) -> TaskTree:
    """Chains with Figure 2(c)'s alternating weights under one root."""
    k = int(rng.integers(3, 8))
    legs = int(rng.integers(2, 5))
    return spider(legs, 2 * (k + 1), root_weight=1,
                  leg_weight=_interleaved_profile(k))


#: named zero-config instances for benches: name -> builder(rng) -> TaskTree
#:
#: A structural note the family ablation bench relies on: an I/O regime
#: (``Peak_incore > LB``) needs *accumulation* — deep, low-arity shapes
#: whose weights are not monotone toward the root.  Hub-like trees
#: (``hub``, ``prufer`` at small n) and monotone-front trees
#: (``frontlike``) have ``LB == Peak``: their single biggest fan-in
#: dominates, so they never perform I/O beyond feasibility.  They remain
#: in the registry as validity/stress probes; the regime-bearing
#: families are ``caterpillar`` (Fig 2(a) trait), ``bouquet`` (Fig 2(c)
#: trait), ``kary`` and ``spider``.
FAMILIES: dict[str, Callable[[np.random.Generator], TaskTree]] = {
    "caterpillar": diamond_caterpillar,
    "spider": lambda rng: spider(
        8, 10, leg_weight=uniform_weights(10, rng, low=1, high=20)
    ),
    "bouquet": interleaved_bouquet,
    "kary": lambda rng: complete_kary(4, 3, weight=lambda d: 2 ** (4 - d)),
    "prufer": lambda rng: random_prufer_tree(
        80, rng, weights=uniform_weights(80, rng)
    ),
    "hub": lambda rng: preferential_attachment_tree(
        80, rng, bias=1.5, weights=uniform_weights(80, rng)
    ),
    "frontlike": lambda rng: (
        lambda t: t.with_weights(front_weights(t))
    )(random_prufer_tree(80, rng)),
}
