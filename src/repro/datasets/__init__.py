"""Workload generators: SYNTH trees, sparse-matrix TREES, paper instances,
parametric families, amalgamation and the dataset store."""

from .amalgamation import AmalgamationResult, amalgamate
from .elimination import (
    elimination_tree,
    etree_task_tree,
    factor_column_counts,
    fundamental_supernodes,
    multifrontal_weights,
    supernodal_task_tree,
)
from .instances import PaperInstance, figure_2a, figure_2b, figure_2c, figure_6, figure_7
from .matrices import (
    ORDERINGS,
    grid_laplacian_2d,
    grid_laplacian_3d,
    minimum_degree_ordering,
    permute_symmetric,
    random_symmetric_pattern,
    rcm_ordering,
)
from .families import (
    FAMILIES,
    bouquet,
    caterpillar,
    complete_kary,
    front_weights,
    powerlaw_weights,
    preferential_attachment_tree,
    random_prufer_tree,
    spider,
    uniform_weights,
)
from .nested_dissection import nested_dissection_ordering
from .store import StoredTree, load_trees, save_trees
from .synth import (
    random_binary_tree,
    random_plane_tree,
    random_weights,
    synth_dataset,
    synth_instance,
)

__all__ = [
    "random_binary_tree",
    "random_plane_tree",
    "random_weights",
    "synth_instance",
    "synth_dataset",
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "random_symmetric_pattern",
    "minimum_degree_ordering",
    "nested_dissection_ordering",
    "rcm_ordering",
    "permute_symmetric",
    "ORDERINGS",
    "elimination_tree",
    "factor_column_counts",
    "multifrontal_weights",
    "etree_task_tree",
    "fundamental_supernodes",
    "supernodal_task_tree",
    "PaperInstance",
    "figure_2a",
    "figure_2b",
    "figure_2c",
    "figure_6",
    "figure_7",
    "AmalgamationResult",
    "amalgamate",
    "FAMILIES",
    "bouquet",
    "caterpillar",
    "complete_kary",
    "front_weights",
    "powerlaw_weights",
    "preferential_attachment_tree",
    "random_prufer_tree",
    "spider",
    "uniform_weights",
    "StoredTree",
    "load_trees",
    "save_trees",
]
