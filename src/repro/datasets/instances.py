"""The paper's hand-crafted instances (Figures 2, 6 and 7).

Each builder returns a :class:`PaperInstance` carrying the tree, the
memory bound, and — where the paper exhibits one — a *witness schedule*
achieving the good I/O volume, so tests can verify the claimed numbers
exactly rather than trusting the narrative:

* :func:`figure_2a` — PostOrderMinIO is not competitive: the witness does
  1 I/O while every postorder pays ≥ M/2 - 1 per leaf beyond the first.
* :func:`figure_2b` — OptMinMem is not I/O-optimal: minimum peak 8 forces
  4 I/Os where a peak-9 schedule pays 3 (M = 6).
* :func:`figure_2c` — the scaled family: OptMinMem pays ~k(k+1) I/Os, the
  witness 2k (M = 4k), so the ratio grows linearly.
* :func:`figure_6`  — FullRecExpand reaches the optimum (3 I/Os) where
  OptMinMem and the postorders pay ≥ 4 (M = 10).
* :func:`figure_7`  — the reverse: the best postorder is optimal (3) while
  OptMinMem *and* FullRecExpand pay 4 (M = 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tree import TaskTree

__all__ = [
    "PaperInstance",
    "figure_2a",
    "figure_2b",
    "figure_2c",
    "figure_6",
    "figure_7",
]


@dataclass(frozen=True)
class PaperInstance:
    """A named instance: tree, memory bound and optional witness schedule."""

    name: str
    tree: TaskTree
    memory: int
    #: a schedule demonstrating the paper's "good" I/O volume (or None)
    witness_schedule: tuple[int, ...] | None = None
    #: the I/O volume the witness achieves (checked in tests)
    witness_io: int | None = None


class _Builder:
    """Incremental tree builder keeping insertion-order ids."""

    def __init__(self) -> None:
        self.weights: list[int] = []
        self.parents: list[int] = []

    def node(self, weight: int, *children: int) -> int:
        v = len(self.weights)
        self.weights.append(weight)
        self.parents.append(-1)
        for c in children:
            self.parents[c] = v
        return v

    def tree(self, root: int) -> TaskTree:
        assert self.parents[root] == -1
        return TaskTree(self.parents, self.weights)


def figure_2a(memory: int = 16, extensions: int = 0) -> PaperInstance:
    """The caterpillar of Figure 2(a); ``memory`` must be even and ≥ 8.

    Structure (children drawn below their parent, weights in nodes)::

                         root(1)
                       /        \\
                  M/2             M/2
                   |               |
                   1              M-1
                 /    \\
              M/2      M/2
               |        |
               1       M-1
             /   \\
           M/2    M/2
            |      |
            1      M
          /   \\
        M/2    M/2
         |      |
         M      M

    Every pair of leaves has a least common ancestor with two ``M/2``
    children and all leaves weigh ≥ M-1, so a postorder pays ≥ M/2 - 1
    per leaf after the first; the witness pays exactly 1 I/O in total.
    ``extensions`` appends the paper's growth step (new unit root, an
    ``M/2`` parent over the old root on one side and an ``M/2`` over a new
    ``M-1`` leaf on the other), keeping the optimal I/O at 1.
    """
    if memory < 8 or memory % 2:
        raise ValueError("figure 2(a) needs an even memory bound >= 8")
    h = memory // 2
    b = _Builder()
    # Innermost diamond over the two weight-M leaves.
    leaf1 = b.node(memory)
    join1 = b.node(1, leaf1)
    leaf2 = b.node(memory)
    join2 = b.node(1, leaf2)
    mid_r = b.node(h, join2)
    mid_l = b.node(h, join1)
    top = b.node(1, mid_l, mid_r)
    witness = [leaf1, join1, leaf2, join2, mid_r, mid_l, top]

    # Two caterpillar levels with an (M-1) leaf on the right.
    for _ in range(2):
        leaf = b.node(memory - 1)
        right = b.node(h, leaf)
        left = b.node(h, top)
        top = b.node(1, left, right)
        witness += [leaf, right, left, top]
    inst_tree_root = top

    for _ in range(extensions):
        left = b.node(h, inst_tree_root)
        leaf = b.node(memory - 1)
        right = b.node(h, leaf)
        inst_tree_root = b.node(1, left, right)
        witness += [leaf, right, left, inst_tree_root]

    return PaperInstance(
        name=f"figure_2a(M={memory}, ext={extensions})",
        tree=b.tree(inst_tree_root),
        memory=memory,
        witness_schedule=tuple(witness),
        witness_io=1,
    )


def figure_2b() -> PaperInstance:
    """Figure 2(b): two 4-node chains under a unit root, M = 6.

    Chain weights root→leaf: 3, 5, 2, 6.  Executing one chain after the
    other peaks at 9 with 3 I/Os; the minimum peak is 8 but then FiF pays
    4 I/Os.
    """
    b = _Builder()

    def chain() -> int:
        leaf = b.node(6)
        n2 = b.node(2, leaf)
        n5 = b.node(5, n2)
        return b.node(3, n5)

    left = chain()
    right = chain()
    root = b.node(1, left, right)
    tree = b.tree(root)
    # Witness: finish the left chain (nodes 0..3), then the right (4..7).
    witness = tuple(range(8)) + (root,)
    return PaperInstance(
        name="figure_2b",
        tree=tree,
        memory=6,
        witness_schedule=witness,
        witness_io=3,
    )


def figure_2c(k: int) -> PaperInstance:
    """Figure 2(c): two interleaved chains of length 2k+2, M = 4k.

    Each chain's weights, root→leaf, interleave ``2k, 2k-1, ..., k`` with
    ``3k, 3k+1, ..., 4k``.  Chain-after-chain costs 2k I/Os (the witness);
    the minimum-peak schedule alternates chains and pays ~k(k+1).
    """
    if k < 1:
        raise ValueError("figure 2(c) needs k >= 1")
    weights_top_down: list[int] = []
    for i in range(k + 1):
        weights_top_down.append(2 * k - i)
        weights_top_down.append(3 * k + i)

    b = _Builder()

    def chain() -> int:
        top = -1
        for w in reversed(weights_top_down):
            top = b.node(w) if top == -1 else b.node(w, top)
        return top

    left = chain()
    right = chain()
    root = b.node(1, left, right)
    tree = b.tree(root)
    m = 2 * k + 2  # chain length
    witness = tuple(range(2 * m)) + (root,)
    return PaperInstance(
        name=f"figure_2c(k={k})",
        tree=tree,
        memory=4 * k,
        witness_schedule=witness,
        witness_io=2 * k,
    )


def figure_6() -> PaperInstance:
    """Appendix A, Figure 6 (M = 10): FullRecExpand finds the optimum, 3 I/Os.

    Left branch root→leaf: 4, 8, 2 (node *a*), 9; right: 6, 4 (node *b*),
    10; unit root.  OptMinMem's peak-12 schedule pays 4 I/Os (2 on *a*,
    2 on *b*); writing 3 units of *b* is optimal.
    """
    b = _Builder()
    leaf_l = b.node(9)
    a = b.node(2, leaf_l)
    l2 = b.node(8, a)
    l1 = b.node(4, l2)
    leaf_r = b.node(10)
    node_b = b.node(4, leaf_r)
    r1 = b.node(6, node_b)
    root = b.node(1, l1, r1)
    witness = (leaf_r, node_b, leaf_l, a, l2, l1, r1, root)
    return PaperInstance(
        name="figure_6",
        tree=b.tree(root),
        memory=10,
        witness_schedule=witness,
        witness_io=3,
    )


def figure_7() -> PaperInstance:
    """Appendix A, Figure 7 (M = 7): the postorder wins with 3 I/Os.

    Node *c* (weight 3) consumes *a* (weight 2, over a weight-7 leaf) and
    a weight-3 leaf; node *b* (weight 4) consumes a weight-7 leaf; the
    unit root consumes *c* and *b*.  OptMinMem and FullRecExpand pay 4.
    """
    b = _Builder()
    leaf_a = b.node(7)
    a = b.node(2, leaf_a)
    leaf3 = b.node(3)
    c = b.node(3, a, leaf3)
    leaf_b = b.node(7)
    node_b = b.node(4, leaf_b)
    root = b.node(1, c, node_b)
    witness = (leaf_a, a, leaf3, c, leaf_b, node_b, root)
    return PaperInstance(
        name="figure_7",
        tree=b.tree(root),
        memory=7,
        witness_schedule=witness,
        witness_io=3,
    )
