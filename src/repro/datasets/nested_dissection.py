"""Nested dissection ordering (George), the multifrontal workhorse.

Nested dissection is the fill-reducing ordering that real multifrontal
codes (MUMPS via METIS/SCOTCH) use on large problems; its elimination
trees are the balanced, separator-topped trees on which the paper's TREES
dataset is heaviest.  This implementation is graph-based and from
scratch:

1. find a *pseudo-peripheral* vertex by repeated BFS (the standard
   Gibbs–Poole–Stockmeyer sweep);
2. build its BFS level structure and take the median level as a vertex
   separator;
3. order each remaining connected component recursively, then the
   separator vertices last (they become the subtree roots / fronts).

Small components fall back to the greedy minimum-degree ordering, like
the incomplete-nested-dissection variants used in practice.

The resulting permutation slots into :data:`repro.datasets.matrices.ORDERINGS`
(key ``"nd"``), so every downstream pipeline — elimination tree, symbolic
factorisation, multifrontal weights — works unchanged.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import scipy.sparse as sp

from .matrices import ORDERINGS, minimum_degree_ordering

__all__ = ["nested_dissection_ordering", "bfs_levels", "pseudo_peripheral_vertex"]


def _adjacency(a: sp.csr_matrix) -> list[np.ndarray]:
    a = sp.csr_matrix(a)
    out = []
    for i in range(a.shape[0]):
        row = a.indices[a.indptr[i] : a.indptr[i + 1]]
        out.append(row[row != i])
    return out


def bfs_levels(
    adj: list[np.ndarray], start: int, alive: np.ndarray
) -> list[list[int]]:
    """BFS level structure from ``start`` over the vertices where ``alive``."""
    levels: list[list[int]] = [[start]]
    seen = {start}
    frontier = [start]
    while frontier:
        nxt: list[int] = []
        for v in frontier:
            for u in adj[v]:
                u = int(u)
                if alive[u] and u not in seen:
                    seen.add(u)
                    nxt.append(u)
        if not nxt:
            break
        levels.append(nxt)
        frontier = nxt
    return levels


def pseudo_peripheral_vertex(
    adj: list[np.ndarray], start: int, alive: np.ndarray, *, sweeps: int = 4
) -> int:
    """A vertex of near-maximal eccentricity (repeated-BFS heuristic)."""
    v = start
    depth = -1
    for _ in range(sweeps):
        levels = bfs_levels(adj, v, alive)
        if len(levels) - 1 <= depth:
            break
        depth = len(levels) - 1
        last = levels[-1]
        # Tie-break toward low degree, the classic GPS refinement.
        v = min(last, key=lambda u: len(adj[u]))
    return v


def _components(adj: list[np.ndarray], vertices: list[int], alive: np.ndarray) -> list[list[int]]:
    comp: list[list[int]] = []
    unvisited = set(vertices)
    while unvisited:
        root = unvisited.pop()
        queue = deque([root])
        this = [root]
        while queue:
            v = queue.popleft()
            for u in adj[v]:
                u = int(u)
                if alive[u] and u in unvisited:
                    unvisited.discard(u)
                    this.append(u)
                    queue.append(u)
        comp.append(this)
    return comp


def nested_dissection_ordering(
    a: sp.csr_matrix,
    rng: np.random.Generator | None = None,
    *,
    leaf_size: int = 8,
) -> np.ndarray:
    """Nested dissection elimination order of a symmetric pattern.

    Parameters
    ----------
    a:
        symmetric sparse pattern (only the structure is used).
    rng:
        unused; accepted for :data:`ORDERINGS` interface compatibility.
    leaf_size:
        components at or below this size are ordered by minimum degree
        instead of being dissected further.

    Returns
    -------
    numpy.ndarray
        permutation ``order`` with ``order[k]`` = the vertex eliminated
        at step ``k`` (separators come after their components).
    """
    a = sp.csr_matrix(a)
    n = a.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    adj = _adjacency(a)
    alive = np.ones(n, dtype=bool)
    order: list[int] = []

    def order_leaf(vertices: list[int]) -> None:
        if len(vertices) == 1:
            order.append(vertices[0])
            return
        sub = sp.csr_matrix(a[vertices][:, vertices])
        local = minimum_degree_ordering(sub)
        order.extend(vertices[i] for i in local)

    # Explicit work stack instead of recursion: path-like graphs produce
    # dissection trees hundreds of levels deep, which must not lean on
    # the interpreter's recursion limit.  LIFO processing with reversed
    # pushes reproduces the recursive emission order exactly
    # (components in increasing size, separators after their parts).
    work: list[tuple[str, list[int]]] = [
        ("dissect", component)
        for component in reversed(
            sorted(_components(adj, list(range(n)), alive), key=len)
        )
    ]
    while work:
        action, vertices = work.pop()
        if action == "emit":
            order_leaf(vertices)
            continue
        if len(vertices) <= leaf_size:
            order_leaf(sorted(vertices))
            continue
        start = pseudo_peripheral_vertex(adj, vertices[0], alive)
        levels = bfs_levels(adj, start, alive)
        if len(levels) < 3:
            # No usable separator (near-clique component): stop dissecting.
            order_leaf(sorted(vertices))
            continue
        total = sum(len(lv) for lv in levels)
        cum = 0
        sep_idx = len(levels) // 2
        for i, lv in enumerate(levels):
            cum += len(lv)
            if cum * 2 >= total:
                sep_idx = min(max(i, 1), len(levels) - 2)
                break
        separator = levels[sep_idx]
        for v in separator:
            alive[v] = False
        rest = [v for v in vertices if alive[v]]
        work.append(("emit", sorted(separator)))
        for part in reversed(sorted(_components(adj, rest, alive), key=len)):
            work.append(("dissect", part))

    assert len(order) == n
    return np.asarray(order, dtype=np.int64)


# Make nested dissection available to every dataset/experiment pipeline.
ORDERINGS.setdefault("nd", nested_dissection_ordering)
