"""Synthetic tree generators (the paper's SYNTH dataset).

The paper draws 330 binary trees of 3 000 nodes "uniformly at random among
all binary trees" (via Catalan-number counting, cf. Mäkinen's survey) and
gives every task an output size uniform in ``[1, 100]``.

Uniform sampling over the :math:`C_n` binary trees is done here with
**Rémy's algorithm** — ``O(n)`` time, no big-integer arithmetic: grow a
uniform *full* binary tree with ``n`` internal nodes by repeatedly
grafting a new (internal, leaf) pair onto a uniformly-chosen vertex and
side, then delete the leaves.  Deleting the leaves of a full binary tree
with ``n`` internal nodes is a bijection onto binary trees with ``n``
nodes, so uniformity carries over.

A second generator samples uniform *plane trees* (unbounded arity, also
Catalan-counted) through the cycle lemma, for workloads with high-degree
joins.  Both are deterministic given their ``numpy`` random generator.

Huge-tree families
------------------

Assembly trees of real sparse matrices reach 10^5–10^6 nodes, so the
kernel layer (:mod:`repro.core.arraytree`) is exercised by a second set
of generators sized for that scale.  They return
:class:`~repro.core.arraytree.ArrayTree` directly — building a
``TaskTree`` at 10^6 nodes costs more than solving the instance — and
cover the shapes that stress different code paths:

* ``chain`` — maximal depth, the recursion-killer;
* ``star`` — maximal arity, the child-sort stress test;
* ``attachment`` — preferential attachment, heavy-tailed degrees like
  the fan-in of supernodal elimination trees;
* ``nd`` — a nested-dissection-shaped balanced binary separator tree
  with weights growing toward the root (the multifrontal profile);
* ``caterpillar`` — a prescribed-depth spine with random hair, the
  "deep random tree" regression shape.

All are ``O(n)`` and deterministic given a seed; see
:func:`huge_instance` for the dispatcher.
"""

from __future__ import annotations

import numpy as np

from ..core.arraytree import ArrayTree
from ..core.tree import TaskTree

__all__ = [
    "random_binary_tree",
    "random_plane_tree",
    "random_weights",
    "synth_instance",
    "synth_dataset",
    "HUGE_FAMILIES",
    "huge_chain",
    "huge_star",
    "random_attachment_tree",
    "nested_dissection_shaped_tree",
    "deep_random_tree",
    "huge_instance",
]


def random_binary_tree(n: int, rng: np.random.Generator) -> TaskTree:
    """A uniform random binary tree with ``n`` unit-weight nodes (Rémy).

    "Binary" in the Catalan sense: each node has an optional left and an
    optional right child (the paper's SYNTH trees).  Left/right only
    matters for uniform counting; the returned task tree keeps parent
    links only.
    """
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")

    # Full binary tree with n internal vertices and n+1 leaves.
    # Vertex arrays; vertex 0 starts as the lone leaf/root.
    size = 2 * n + 1
    parent = np.full(size, -1, dtype=np.int64)
    internal = np.zeros(size, dtype=bool)
    count = 1  # vertices so far
    root = 0

    # Random choices drawn in bulk: vertex pick is uniform over the current
    # 2k-1 vertices at step k, the side doubles the range.
    picks = rng.integers(0, 2 * np.arange(1, n + 1) - 1, dtype=np.int64)
    sides = rng.integers(0, 2, size=n)

    for k in range(n):
        v = int(picks[k])
        m = count  # new internal vertex
        f = count + 1  # new leaf
        count += 2
        internal[m] = True

        p = parent[v]
        parent[m] = p
        if p == -1:
            root = m
        # (child pointers are irrelevant for the in-tree; sides[k] only
        # re-randomises which of v/f is the left child, which does not
        # change parent links — kept for faithfulness to Rémy's process)
        _ = sides[k]
        parent[v] = m
        parent[f] = m

    # Delete leaves: keep internal vertices, re-index.
    ids = np.cumsum(internal) - 1
    parents: list[int] = []
    for v in range(count):
        if not internal[v]:
            continue
        p = parent[v]
        parents.append(-1 if p == -1 else int(ids[p]))
    return TaskTree(parents, [1] * n)


def random_plane_tree(n: int, rng: np.random.Generator) -> TaskTree:
    """A uniform random plane (ordered, any-arity) tree with ``n`` nodes.

    Via the cycle lemma: a uniform arrangement of ``n`` up-steps and
    ``n-1`` down-steps has exactly one rotation that is a Łukasiewicz
    excursion; reading it as a depth-first walk gives a uniform plane tree.
    """
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    if n == 1:
        return TaskTree([-1], [1])

    m = n - 1
    steps = np.concatenate([np.ones(m + 1, dtype=np.int64), -np.ones(m, dtype=np.int64)])
    rng.shuffle(steps)
    # The unique good rotation starts right after the *last* position where
    # the prefix sum attains its minimum.
    prefix = np.cumsum(steps)
    start = len(steps) - int(np.argmin(prefix[::-1]))
    rotated = np.concatenate([steps[start:], steps[:start]])
    # rotated[0] == +1; drop it and read the Dyck word as a DFS walk.
    word = rotated[1:]
    parents = [-1]
    stack = [0]
    next_id = 1
    for s in word:
        if s == 1:  # descend into a new child
            parents.append(stack[-1])
            stack.append(next_id)
            next_id += 1
        else:  # climb back up
            stack.pop()
    assert next_id == n
    return TaskTree(parents, [1] * n)


def random_weights(
    n: int, rng: np.random.Generator, low: int = 1, high: int = 100
) -> list[int]:
    """Independent uniform integer output sizes in ``[low, high]``."""
    if low < 0 or high < low:
        raise ValueError(f"bad weight range [{low}, {high}]")
    return [int(w) for w in rng.integers(low, high + 1, size=n)]


def synth_instance(
    n_nodes: int,
    seed: int,
    *,
    weight_range: tuple[int, int] = (1, 100),
    shape: str = "binary",
) -> TaskTree:
    """One SYNTH tree: uniform shape + uniform integer weights."""
    rng = np.random.default_rng(seed)
    if shape == "binary":
        tree = random_binary_tree(n_nodes, rng)
    elif shape == "plane":
        tree = random_plane_tree(n_nodes, rng)
    else:
        raise ValueError(f"unknown shape {shape!r}")
    return tree.with_weights(random_weights(n_nodes, rng, *weight_range))


def synth_dataset(
    num_trees: int = 330,
    n_nodes: int = 3000,
    *,
    seed: int = 20170208,  # the paper's HAL submission date
    weight_range: tuple[int, int] = (1, 100),
    shape: str = "binary",
) -> list[TaskTree]:
    """The SYNTH dataset: ``num_trees`` independent seeded instances."""
    return [
        synth_instance(n_nodes, seed + i, weight_range=weight_range, shape=shape)
        for i in range(num_trees)
    ]


# ----------------------------------------------------------------------
# huge-tree families (kernel-scale instances, returned as ArrayTree)
# ----------------------------------------------------------------------
def _huge_weights(
    n: int, rng: np.random.Generator, weight_range: tuple[int, int]
) -> np.ndarray:
    low, high = weight_range
    if low < 0 or high < low:
        raise ValueError(f"bad weight range [{low}, {high}]")
    return rng.integers(low, high + 1, size=n, dtype=np.int64)


def huge_chain(
    n: int, rng: np.random.Generator, *, weight_range: tuple[int, int] = (1, 100)
) -> ArrayTree:
    """A depth ``n-1`` chain (node 0 is the root) with random weights."""
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    parents = np.arange(-1, n - 1, dtype=np.int64)
    return ArrayTree(parents, _huge_weights(n, rng, weight_range))


def huge_star(
    n: int, rng: np.random.Generator, *, weight_range: tuple[int, int] = (1, 100)
) -> ArrayTree:
    """One root consuming ``n-1`` independent leaves, random weights."""
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    parents = np.zeros(n, dtype=np.int64)
    parents[0] = -1
    return ArrayTree(parents, _huge_weights(n, rng, weight_range))


def random_attachment_tree(
    n: int, rng: np.random.Generator, *, weight_range: tuple[int, int] = (1, 100)
) -> ArrayTree:
    """Preferential attachment: heavy-tailed in-degrees, depth ``O(log n)``.

    Node ``i`` attaches to a uniformly drawn *edge endpoint* among the
    earlier nodes (the classic Barabási–Albert list trick), so the
    probability of becoming a parent is proportional to ``degree + 1``.
    The result has a small number of very-high-arity joins — the shape
    of supernodal assembly trees after amalgamation.
    """
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    parents = [-1]
    if n > 1:
        # |endpoints| = 2(i-1) + 1 right before node i attaches.
        draws = rng.integers(0, 2 * np.arange(n - 1, dtype=np.int64) + 1)
        endpoints = [0]
        push = endpoints.append
        add_parent = parents.append
        for i in range(1, n):
            p = endpoints[draws[i - 1]]
            add_parent(p)
            push(p)
            push(i)
    return ArrayTree(parents, _huge_weights(n, rng, weight_range))


def nested_dissection_shaped_tree(
    n: int, rng: np.random.Generator, *, dimension: int = 2
) -> ArrayTree:
    """A balanced binary separator tree with multifrontal-style weights.

    Shape of the elimination tree that nested dissection produces on a
    ``dimension``-D mesh: complete binary tree; the node at depth ``d``
    stands for the separator of a region of ``~n / 2^d`` vertices, whose
    output (contribution block) scales like the separator size
    ``region^((dimension-1)/dimension)`` — big fronts at the root,
    unit leaves, ±20 % jitter.
    """
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    if dimension < 2:
        raise ValueError(f"dimension must be >= 2, got {dimension}")
    parents = np.empty(n, dtype=np.int64)
    parents[0] = -1
    if n > 1:
        ids = np.arange(1, n, dtype=np.int64)
        parents[1:] = (ids - 1) // 2
    depth = np.floor(np.log2(np.arange(n, dtype=np.float64) + 1.0))
    region = n / np.exp2(depth)
    base = np.power(region, (dimension - 1) / dimension)
    jitter = rng.uniform(0.8, 1.2, size=n)
    weights = np.maximum(1, np.rint(base * jitter)).astype(np.int64)
    return ArrayTree(parents, weights)


def deep_random_tree(
    n: int,
    depth: int,
    rng: np.random.Generator,
    *,
    weight_range: tuple[int, int] = (1, 100),
) -> ArrayTree:
    """A random tree of exactly the prescribed ``depth`` (a caterpillar).

    A spine of ``depth + 1`` nodes fixes the depth; the remaining
    ``n - depth - 1`` nodes attach as leaves to uniformly random spine
    nodes.  This is the regression shape for "deep but not degenerate":
    random structure everywhere, yet any recursive traversal dies.
    """
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    if not 0 <= depth <= n - 1 or (n > 1 and depth < 1):
        raise ValueError(f"depth {depth} impossible with {n} nodes")
    parents = np.empty(n, dtype=np.int64)
    spine = depth + 1
    parents[:spine] = np.arange(-1, depth, dtype=np.int64)
    extra = n - spine
    if extra > 0:
        # Hair may attach anywhere but the deepest spine node (a leaf
        # hanging off it would extend the path to depth + 1).
        parents[spine:] = rng.integers(0, spine - 1, size=extra)
    return ArrayTree(parents, _huge_weights(n, rng, weight_range))


#: the huge-tree families, keyed for :func:`huge_instance`.
HUGE_FAMILIES = ("chain", "star", "attachment", "nd", "caterpillar")


def huge_instance(
    family: str,
    n: int,
    seed: int,
    *,
    weight_range: tuple[int, int] = (1, 100),
    depth: int | None = None,
) -> ArrayTree:
    """One kernel-scale instance of a named family (see module docstring).

    ``depth`` applies to the ``caterpillar`` family only (default
    ``n // 2``), and ``weight_range`` to every family except ``nd``,
    whose whole point is multifrontal separator-scaled weights (see
    :func:`nested_dissection_shaped_tree`).  Everything is deterministic
    given ``(family, n, seed)``.
    """
    rng = np.random.default_rng(seed)
    if family == "chain":
        return huge_chain(n, rng, weight_range=weight_range)
    if family == "star":
        return huge_star(n, rng, weight_range=weight_range)
    if family == "attachment":
        return random_attachment_tree(n, rng, weight_range=weight_range)
    if family == "nd":
        return nested_dissection_shaped_tree(n, rng)
    if family == "caterpillar":
        d = depth if depth is not None else n // 2
        return deep_random_tree(n, d, rng, weight_range=weight_range)
    raise ValueError(f"unknown family {family!r}; available: {HUGE_FAMILIES}")
