"""Synthetic tree generators (the paper's SYNTH dataset).

The paper draws 330 binary trees of 3 000 nodes "uniformly at random among
all binary trees" (via Catalan-number counting, cf. Mäkinen's survey) and
gives every task an output size uniform in ``[1, 100]``.

Uniform sampling over the :math:`C_n` binary trees is done here with
**Rémy's algorithm** — ``O(n)`` time, no big-integer arithmetic: grow a
uniform *full* binary tree with ``n`` internal nodes by repeatedly
grafting a new (internal, leaf) pair onto a uniformly-chosen vertex and
side, then delete the leaves.  Deleting the leaves of a full binary tree
with ``n`` internal nodes is a bijection onto binary trees with ``n``
nodes, so uniformity carries over.

A second generator samples uniform *plane trees* (unbounded arity, also
Catalan-counted) through the cycle lemma, for workloads with high-degree
joins.  Both are deterministic given their ``numpy`` random generator.
"""

from __future__ import annotations

import numpy as np

from ..core.tree import TaskTree

__all__ = [
    "random_binary_tree",
    "random_plane_tree",
    "random_weights",
    "synth_instance",
    "synth_dataset",
]


def random_binary_tree(n: int, rng: np.random.Generator) -> TaskTree:
    """A uniform random binary tree with ``n`` unit-weight nodes (Rémy).

    "Binary" in the Catalan sense: each node has an optional left and an
    optional right child (the paper's SYNTH trees).  Left/right only
    matters for uniform counting; the returned task tree keeps parent
    links only.
    """
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")

    # Full binary tree with n internal vertices and n+1 leaves.
    # Vertex arrays; vertex 0 starts as the lone leaf/root.
    size = 2 * n + 1
    parent = np.full(size, -1, dtype=np.int64)
    internal = np.zeros(size, dtype=bool)
    count = 1  # vertices so far
    root = 0

    # Random choices drawn in bulk: vertex pick is uniform over the current
    # 2k-1 vertices at step k, the side doubles the range.
    picks = rng.integers(0, 2 * np.arange(1, n + 1) - 1, dtype=np.int64)
    sides = rng.integers(0, 2, size=n)

    for k in range(n):
        v = int(picks[k])
        m = count  # new internal vertex
        f = count + 1  # new leaf
        count += 2
        internal[m] = True

        p = parent[v]
        parent[m] = p
        if p == -1:
            root = m
        # (child pointers are irrelevant for the in-tree; sides[k] only
        # re-randomises which of v/f is the left child, which does not
        # change parent links — kept for faithfulness to Rémy's process)
        _ = sides[k]
        parent[v] = m
        parent[f] = m

    # Delete leaves: keep internal vertices, re-index.
    ids = np.cumsum(internal) - 1
    parents: list[int] = []
    for v in range(count):
        if not internal[v]:
            continue
        p = parent[v]
        parents.append(-1 if p == -1 else int(ids[p]))
    return TaskTree(parents, [1] * n)


def random_plane_tree(n: int, rng: np.random.Generator) -> TaskTree:
    """A uniform random plane (ordered, any-arity) tree with ``n`` nodes.

    Via the cycle lemma: a uniform arrangement of ``n`` up-steps and
    ``n-1`` down-steps has exactly one rotation that is a Łukasiewicz
    excursion; reading it as a depth-first walk gives a uniform plane tree.
    """
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    if n == 1:
        return TaskTree([-1], [1])

    m = n - 1
    steps = np.concatenate([np.ones(m + 1, dtype=np.int64), -np.ones(m, dtype=np.int64)])
    rng.shuffle(steps)
    # The unique good rotation starts right after the *last* position where
    # the prefix sum attains its minimum.
    prefix = np.cumsum(steps)
    start = len(steps) - int(np.argmin(prefix[::-1]))
    rotated = np.concatenate([steps[start:], steps[:start]])
    # rotated[0] == +1; drop it and read the Dyck word as a DFS walk.
    word = rotated[1:]
    parents = [-1]
    stack = [0]
    next_id = 1
    for s in word:
        if s == 1:  # descend into a new child
            parents.append(stack[-1])
            stack.append(next_id)
            next_id += 1
        else:  # climb back up
            stack.pop()
    assert next_id == n
    return TaskTree(parents, [1] * n)


def random_weights(
    n: int, rng: np.random.Generator, low: int = 1, high: int = 100
) -> list[int]:
    """Independent uniform integer output sizes in ``[low, high]``."""
    if low < 0 or high < low:
        raise ValueError(f"bad weight range [{low}, {high}]")
    return [int(w) for w in rng.integers(low, high + 1, size=n)]


def synth_instance(
    n_nodes: int,
    seed: int,
    *,
    weight_range: tuple[int, int] = (1, 100),
    shape: str = "binary",
) -> TaskTree:
    """One SYNTH tree: uniform shape + uniform integer weights."""
    rng = np.random.default_rng(seed)
    if shape == "binary":
        tree = random_binary_tree(n_nodes, rng)
    elif shape == "plane":
        tree = random_plane_tree(n_nodes, rng)
    else:
        raise ValueError(f"unknown shape {shape!r}")
    return tree.with_weights(random_weights(n_nodes, rng, *weight_range))


def synth_dataset(
    num_trees: int = 330,
    n_nodes: int = 3000,
    *,
    seed: int = 20170208,  # the paper's HAL submission date
    weight_range: tuple[int, int] = (1, 100),
    shape: str = "binary",
) -> list[TaskTree]:
    """The SYNTH dataset: ``num_trees`` independent seeded instances."""
    return [
        synth_instance(n_nodes, seed + i, weight_range=weight_range, shape=shape)
        for i in range(num_trees)
    ]
