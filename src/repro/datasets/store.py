"""Persist and reload tree collections (the dataset exchange format).

The paper-scale datasets take minutes to build (symbolic analysis of
many matrices); this module caches them as JSON-lines — one tree per
line, each a self-contained object with its metadata — so experiment
re-runs and external tools can share exactly the same instances.

Format (one per line)::

    {"name": "grid2d-16/nd", "parents": [...], "weights": [...],
     "meta": {...}}

``load_trees`` streams; a truncated or hand-edited file fails loudly
with the offending line number.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from ..core.tree import TaskTree

__all__ = ["StoredTree", "save_trees", "load_trees", "iter_trees"]


@dataclass(frozen=True)
class StoredTree:
    """A tree plus its provenance metadata."""

    name: str
    tree: TaskTree
    meta: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "name": self.name,
            "parents": list(self.tree.parents),
            "weights": list(self.tree.weights),
            "meta": dict(self.meta),
        }
        return json.dumps(payload, separators=(",", ":"))

    @staticmethod
    def from_json(line: str) -> "StoredTree":
        obj = json.loads(line)
        return StoredTree(
            name=str(obj["name"]),
            tree=TaskTree(obj["parents"], obj["weights"]),
            meta=obj.get("meta", {}),
        )


def save_trees(
    path: str | pathlib.Path,
    trees: Iterable[StoredTree | TaskTree],
) -> int:
    """Write a collection as JSON-lines; returns the number written.

    Bare :class:`TaskTree` items are wrapped with an index-based name.
    """
    path = pathlib.Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        for item in trees:
            if isinstance(item, TaskTree):
                item = StoredTree(name=f"tree-{count}", tree=item)
            fh.write(item.to_json())
            fh.write("\n")
            count += 1
    return count


def iter_trees(path: str | pathlib.Path) -> Iterator[StoredTree]:
    """Stream a JSON-lines collection, validating every line."""
    path = pathlib.Path(path)
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield StoredTree.from_json(line)
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(f"{path}:{lineno}: bad tree record") from exc


def load_trees(path: str | pathlib.Path) -> list[StoredTree]:
    """The whole collection as a list (see :func:`iter_trees` to stream)."""
    return list(iter_trees(path))
