"""Persist and reload tree collections, plus the experiment result cache.

The paper-scale datasets take minutes to build (symbolic analysis of
many matrices); this module caches them as JSON-lines — one tree per
line, each a self-contained object with its metadata — so experiment
re-runs and external tools can share exactly the same instances.

Format (one per line)::

    {"name": "grid2d-16/nd", "parents": [...], "weights": [...],
     "meta": {...}}

``load_trees`` streams; a truncated or hand-edited file fails loudly
with the offending line number.

The second half of the module is :class:`ResultCache`, the
content-addressed on-disk store underneath the batch experiment engine
(:mod:`repro.experiments.batch`), the scheduling service, and every
:mod:`repro.api` backend: each completed work unit (a shard of figure
instances, a counterexample, or one solve/paging/exact request) is
keyed by a SHA-256 digest of its *inputs* — tree structure, memory
bound, algorithm list, scale — derived through the one canonical path
in :mod:`repro.api.requests`, so re-running ``repro-ioschedule report``
only recomputes units whose inputs changed and a cache written by any
execution surface serves warm hits to all the others.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

import numpy as np

from ..core.tree import TaskTree

__all__ = [
    "StoredTree",
    "save_trees",
    "load_trees",
    "iter_trees",
    "ResultCache",
    "cache_key",
    "cache_key_buffers",
    "canonical_json",
]


@dataclass(frozen=True)
class StoredTree:
    """A tree plus its provenance metadata."""

    name: str
    tree: TaskTree
    meta: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "name": self.name,
            "parents": list(self.tree.parents),
            "weights": list(self.tree.weights),
            "meta": dict(self.meta),
        }
        return json.dumps(payload, separators=(",", ":"))

    @staticmethod
    def from_json(line: str) -> "StoredTree":
        obj = json.loads(line)
        return StoredTree(
            name=str(obj["name"]),
            tree=TaskTree(obj["parents"], obj["weights"]),
            meta=obj.get("meta", {}),
        )


def save_trees(
    path: str | pathlib.Path,
    trees: Iterable[StoredTree | TaskTree],
) -> int:
    """Write a collection as JSON-lines; returns the number written.

    Bare :class:`TaskTree` items are wrapped with an index-based name.
    """
    path = pathlib.Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        for item in trees:
            if isinstance(item, TaskTree):
                item = StoredTree(name=f"tree-{count}", tree=item)
            fh.write(item.to_json())
            fh.write("\n")
            count += 1
    return count


def iter_trees(path: str | pathlib.Path) -> Iterator[StoredTree]:
    """Stream a JSON-lines collection, validating every line."""
    path = pathlib.Path(path)
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield StoredTree.from_json(line)
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(f"{path}:{lineno}: bad tree record") from exc


def load_trees(path: str | pathlib.Path) -> list[StoredTree]:
    """The whole collection as a list (see :func:`iter_trees` to stream)."""
    return list(iter_trees(path))


def canonical_json(payload: Mapping[str, Any]) -> str:
    """The canonical JSON form every cache key hashes: sorted keys,
    fixed separators — logically equal payloads serialise identically
    regardless of insertion order.

    Exposed so hot paths can canonicalise **once** and reuse the string
    for both the key and any payload they persist, instead of
    re-serialising million-element columns per use.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(payload: Mapping[str, Any], *, canonical: str | None = None) -> str:
    """Content-address a work unit: SHA-256 of its canonical JSON.

    Parameters
    ----------
    payload:
        A JSON-serialisable description of everything that determines the
        unit's *output* — tree parents/weights, memory bound, algorithm
        names, scale, engine version.
    canonical:
        The precomputed :func:`canonical_json` of ``payload``, if the
        caller already has it (skips re-serialising large payloads).

    Returns
    -------
    str
        A 64-character lowercase hex digest, usable as a filename.

    For payloads dominated by large integer columns prefer
    :func:`cache_key_buffers`, which hashes the raw int64 buffers and
    skips JSON entirely.
    """
    if canonical is None:
        canonical = canonical_json(payload)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _canonical_int64(values: Any) -> bytes:
    """Canonical little-endian int64 bytes of an integer column.

    Accepts anything :func:`numpy.asarray` can make an integer array of
    — lists, tuples, ``array('q')``, numpy arrays — and produces
    identical bytes for equal *values*, regardless of container type or
    host byte order (so digests are portable across cache directories).

    Columns with values beyond int64 (the object engine supports
    arbitrary-precision weights) get a canonical decimal encoding
    instead — see :func:`_canonical_bigint` — so such trees are content-
    addressable too; int64-representable values always take the byte
    path whatever container they arrive in, keeping digests stable.
    """
    arr = np.asarray(values)
    if arr.dtype != np.int64:
        if arr.dtype == object:
            return _canonical_bigint(arr)
        if not (np.issubdtype(arr.dtype, np.integer) or arr.size == 0):
            raise TypeError(
                f"buffer column must be integral, got dtype {arr.dtype}"
            )
        if (
            arr.size
            and np.issubdtype(arr.dtype, np.unsignedinteger)
            and int(arr.max()) > np.iinfo(np.int64).max
        ):
            # uint64 values past int64 max would *wrap* under astype,
            # aliasing distinct columns onto one digest — decimal-encode
            # them like any other beyond-int64 column instead
            return _canonical_bigint(arr.astype(object))
        arr = arr.astype(np.int64)
    return np.ascontiguousarray(arr).astype("<i8", copy=False).tobytes()


def _canonical_bigint(arr: Any) -> bytes:
    """Canonical bytes of an integer column that overflows int64.

    A ``bigint:``-prefixed comma-joined decimal rendering: container-
    independent like the byte path, and structurally unambiguous
    against it — int64-path data is always a whole number of 8-byte
    words, so the bigint encoding is padded to a length that is *never*
    a multiple of 8 and the two can share no byte string.  Object
    columns whose values *do* fit int64 are routed back to the byte
    path, so equal values digest equally no matter how they were boxed;
    non-integer elements keep raising ``TypeError``.
    """
    items = arr.tolist()
    if not all(type(v) is int for v in items):
        raise TypeError(
            f"buffer column must be integral, got dtype {arr.dtype}"
        )
    try:
        narrowed = np.array(items, dtype=np.int64)
    except OverflowError:
        data = b"bigint:" + ",".join(map(str, items)).encode("ascii")
        if len(data) % 8 == 0:
            data += b";"
        return data
    return np.ascontiguousarray(narrowed).astype("<i8", copy=False).tobytes()


def cache_key_buffers(
    payload: Mapping[str, Any], buffers: Mapping[str, Any]
) -> str:
    """Content-address a unit whose identity is mostly integer columns.

    ``payload`` carries the small JSON-able parameters (kind, engine
    version, memory bound, algorithm names, ...); ``buffers`` maps
    column names to integer sequences (tree parents/weights, forest
    offsets).  The digest covers the canonical JSON of ``payload`` plus
    every buffer's canonical little-endian int64 bytes, framed by name
    and length so distinct column layouts can never collide.

    Hashing buffers instead of JSON-marshalled lists is what makes
    content-addressing cheap at forest scale: a million-node column is
    one ``memcpy``-sized pass, not a million ``int``→decimal
    conversions.  Equal values give equal digests no matter the
    container (list, tuple, ``array``, numpy) on any host.
    """
    h = hashlib.sha256()
    h.update(canonical_json(payload).encode("utf-8"))
    for name in sorted(buffers):
        data = _canonical_int64(buffers[name])
        h.update(b"\x00")
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
        h.update(len(data).to_bytes(8, "little"))
        h.update(data)
    return h.hexdigest()


class ResultCache:
    """Content-addressed on-disk cache of completed experiment work units.

    Each entry is one JSON file ``<root>/<k[:2]>/<k>.json`` (two-level
    fanout keeps directories small at paper scale), where ``k`` is the
    :func:`cache_key` of the unit's inputs.  Values are plain dictionaries;
    the cache never interprets them.  Corrupt or truncated entries are
    treated as misses and recomputed, never trusted.

    The instance counts hits and misses (a ``get`` that finds nothing);
    :meth:`stats` is what the batch engine surfaces into the report JSON.

    Parameters
    ----------
    root:
        Directory holding the cache; created lazily on first ``put``.
    """

    def __init__(self, root: str | pathlib.Path):
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        self._hit_counter = None  # registry mirrors, see bind_registry()
        self._miss_counter = None

    def bind_registry(self, registry) -> None:
        """Mirror hits/misses into a :class:`repro.obs.MetricsRegistry`.

        Hits count as ``cache_hits_total{tier="disk"}`` (the in-memory
        memo tier in front of this cache reports its own hits); the
        plain :attr:`hits`/:attr:`misses` attributes keep working for
        the batch engine's report provenance.
        """
        self._hit_counter = registry.counter(
            "cache_hits_total", "result-cache hits by tier"
        ).labels(tier="disk")
        self._miss_counter = registry.counter(
            "cache_misses_total", "result-cache misses"
        )

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """Return the cached value for ``key``, or ``None`` (a miss)."""
        path = self._path(key)
        try:
            value = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            if self._miss_counter is not None:
                self._miss_counter.inc()
            return None
        self.hits += 1
        if self._hit_counter is not None:
            self._hit_counter.inc()
        return value

    #: distinguishes temp files written by different threads of one process;
    #: the pid in the name distinguishes processes.
    _tmp_counter = itertools.count()

    def put(self, key: str, value: Mapping[str, Any]) -> None:
        """Store ``value`` under ``key`` (atomically: write + rename).

        The temp name is unique per writer (pid + in-process counter):
        with a shared suffix like ``.tmp``, two processes writing the
        same key race — one renames the file away and the other's rename
        fails, or worse, renames a half-written file into place.  Unique
        temp names make concurrent writers of the same key commute
        (last rename wins, every rename is of a fully written file).
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{next(self._tmp_counter)}.tmp"
        )
        try:
            tmp.write_text(
                json.dumps(dict(value), sort_keys=True), encoding="utf-8"
            )
            tmp.replace(path)
        except OSError:
            with contextlib.suppress(OSError):
                tmp.unlink(missing_ok=True)
            raise

    def stats(self) -> dict[str, int]:
        """Hit/miss counters since construction, for report provenance."""
        return {"hits": self.hits, "misses": self.misses}

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
