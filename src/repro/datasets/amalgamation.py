"""Relaxed node amalgamation (MUMPS-style tree coarsening).

Real multifrontal codes do not stop at fundamental supernodes: they
*relax* amalgamation, absorbing small fronts into their parents even
when that stores some explicit zeros, because tiny tasks cost more in
overhead than they save in memory.  At the task-tree level the effect
is precise:

* the absorbed child's output is **never stored** — it is produced and
  consumed inside the merged task (its weight disappears from every
  active set);
* the merged task inherits the child's children, so its fan-in (and
  hence ``wbar``) **grows** — the memory price of amalgamation.

This module implements that transformation generically (any tree, a
weight threshold), returning the coarsened tree plus the node mapping.
The amalgamation sweep in ``bench_amalgamation.py`` quantifies the
resulting trade-off: the feasibility bound ``LB`` rises while the tree
shrinks and scheduling (and its I/O) gets coarser.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tree import TaskTree

__all__ = ["AmalgamationResult", "amalgamate"]


@dataclass(frozen=True)
class AmalgamationResult:
    """A coarsened tree plus bookkeeping."""

    tree: TaskTree
    #: old node id -> new node id (absorbed nodes map to their absorber)
    node_map: tuple[int, ...]
    absorbed: int

    def group(self, new_node: int) -> list[int]:
        """The original nodes merged into ``new_node``."""
        return [v for v, m in enumerate(self.node_map) if m == new_node]


def amalgamate(
    tree: TaskTree,
    *,
    absorb_below: int,
    max_fan_in: int | None = None,
) -> AmalgamationResult:
    """Absorb every non-root node with ``weight < absorb_below`` into its parent.

    Parameters
    ----------
    absorb_below:
        nodes whose output is smaller than this are merged upward
        (``0`` disables and returns an isomorphic tree).
    max_fan_in:
        optional cap: skip an absorption that would push the absorber's
        total input volume above this value (a feasibility guard —
        unbounded amalgamation can inflate ``wbar`` past any memory).

    Notes
    -----
    Processing is bottom-up, so chains of small nodes collapse into one
    ancestor.  The root is never absorbed.
    """
    if absorb_below < 0:
        raise ValueError("absorb_below must be non-negative")
    n = tree.n
    # target[v]: the node that absorbs v (transitively resolved).
    target = list(range(n))

    def resolve(v: int) -> int:
        while target[v] != v:
            target[v] = target[target[v]]  # path compression
            v = target[v]
        return v

    # Current input volume per (surviving) node, maintained as we merge.
    fan_in = [sum(tree.weights[c] for c in kids) for kids in tree.children]

    for v in tree.bottom_up():
        p = tree.parents[v]
        if p == -1 or tree.weights[v] >= absorb_below:
            continue
        absorber = resolve(p)
        if max_fan_in is not None:
            # Absorbing v replaces its output by its (current) inputs.
            new_fan_in = fan_in[absorber] - tree.weights[v] + fan_in[v]
            if new_fan_in > max_fan_in:
                continue
        fan_in[absorber] = fan_in[absorber] - tree.weights[v] + fan_in[v]
        target[v] = absorber

    survivors = [v for v in range(n) if resolve(v) == v]
    new_id = {old: i for i, old in enumerate(survivors)}
    parents = []
    weights = []
    for old in survivors:
        p = tree.parents[old]
        parents.append(-1 if p == -1 else new_id[resolve(p)])
        weights.append(tree.weights[old])
    node_map = tuple(new_id[resolve(v)] for v in range(n))
    return AmalgamationResult(
        tree=TaskTree(parents, weights),
        node_map=node_map,
        absorbed=n - len(survivors),
    )
