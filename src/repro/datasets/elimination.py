"""Elimination trees and multifrontal task weights (the TREES substrate).

Sparse direct (multifrontal) factorisation organises its computation along
the **elimination tree** of the matrix: column ``j`` of the Cholesky factor
is a tree node whose parent is the row of its first sub-diagonal nonzero.
Each node assembles a dense *frontal matrix*, eliminates its pivot and
passes a dense **contribution block** to its parent — exactly the paper's
model where a task's output data is consumed by its parent.

This module implements the symbolic-analysis pipeline from scratch:

* :func:`elimination_tree` — Liu's near-linear algorithm (path-compressed
  ancestor forest), the same as CSparse's ``cs_etree``;
* :func:`factor_column_counts` — ``|L(:, j)|`` via row-subtree traversal;
* :func:`multifrontal_weights` — contribution-block sizes
  ``(cc_j - 1)²`` (clamped to ≥ 1 so every task produces data);
* :func:`fundamental_supernodes` / :func:`supernodal_task_tree` — chain
  amalgamation used by real solvers, which shortens the tree and grows the
  fronts (MUMPS-style node shapes).

Everything consumes only the symmetric *pattern*; numerical values never
matter (the paper assumes no pivoting).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..core.tree import TaskTree

__all__ = [
    "elimination_tree",
    "factor_column_counts",
    "multifrontal_weights",
    "etree_task_tree",
    "fundamental_supernodes",
    "supernodal_task_tree",
]


def _lower_pattern(a: sp.spmatrix) -> sp.csr_matrix:
    """Row-wise pattern of the strict lower triangle of ``A + Aᵀ``."""
    a = sp.csr_matrix(a)
    sym = (a + a.T).tocsr()
    return sp.tril(sym, k=-1, format="csr")


def elimination_tree(a: sp.spmatrix) -> np.ndarray:
    """Liu's elimination-tree algorithm; ``parent[j] = -1`` for roots.

    ``parent[j]`` is the smallest ``i > j`` with ``L[i, j] != 0`` in the
    Cholesky factor of (the pattern of) ``A``.  Runs in
    ``O(nnz * alpha(n))`` thanks to path compression over a virtual
    ancestor forest.
    """
    low = _lower_pattern(a)
    n = low.shape[0]
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    indptr, indices = low.indptr, low.indices

    for k in range(n):
        # Row k of the lower pattern lists the columns j < k with A[k,j]≠0.
        for j in indices[indptr[k] : indptr[k + 1]]:
            # Walk j's ancestor chain up to (but excluding) k, compressing.
            i = int(j)
            while i != -1 and i < k:
                nxt = int(ancestor[i])
                ancestor[i] = k
                if nxt == -1:
                    parent[i] = k
                i = nxt
    return parent


def factor_column_counts(a: sp.spmatrix, parent: np.ndarray) -> np.ndarray:
    """Nonzero counts of each factor column ``L(:, j)`` (diagonal included).

    Row-subtree method: the nonzeros of row ``i`` of ``L`` are the nodes on
    the etree paths from each ``j`` (with ``A[i, j] != 0``, ``j < i``) up
    to ``i``; each visited node gains one nonzero in its column.
    ``O(|L|)`` time using per-row markers.
    """
    low = _lower_pattern(a)
    n = low.shape[0]
    counts = np.ones(n, dtype=np.int64)  # the diagonal entries
    mark = np.full(n, -1, dtype=np.int64)
    indptr, indices = low.indptr, low.indices

    for i in range(n):
        mark[i] = i
        for j in indices[indptr[i] : indptr[i + 1]]:
            k = int(j)
            while mark[k] != i:
                counts[k] += 1
                mark[k] = i
                k = int(parent[k])
                if k == -1:  # defensive: cannot happen, paths end at i
                    break
    return counts


def multifrontal_weights(column_counts: np.ndarray) -> np.ndarray:
    """Contribution-block sizes: the data a front passes to its parent.

    A front for column ``j`` has order ``cc_j``; after eliminating the
    pivot, the dense Schur complement of order ``cc_j - 1`` is stored until
    the parent assembles it.  Roots still produce their factor column, so
    sizes are clamped to at least 1.
    """
    cb = (np.asarray(column_counts, dtype=np.int64) - 1) ** 2
    return np.maximum(cb, 1)


def etree_task_tree(a: sp.spmatrix) -> TaskTree:
    """Matrix pattern → multifrontal task tree (one node per column).

    If the elimination tree is a forest (reducible matrix), a unit-weight
    virtual root joins the components, preserving every traversal's cost
    structure.
    """
    parent = elimination_tree(a)
    counts = factor_column_counts(a, parent)
    weights = multifrontal_weights(counts)
    return _to_task_tree(parent, weights)


def _to_task_tree(parent: np.ndarray, weights: np.ndarray) -> TaskTree:
    n = len(parent)
    roots = np.flatnonzero(parent == -1)
    if len(roots) == 1:
        return TaskTree(parent.tolist(), weights.tolist())
    parents = parent.tolist() + [-1]
    for r in roots:
        parents[int(r)] = n
    return TaskTree(parents, weights.tolist() + [1])


def fundamental_supernodes(parent: np.ndarray, column_counts: np.ndarray) -> np.ndarray:
    """Map column → supernode id for fundamental supernodes.

    Column ``j+1`` joins ``j``'s supernode iff it is ``j``'s parent, its
    column pattern is ``j``'s minus the pivot (``cc[j+1] == cc[j] - 1``)
    and ``j`` is its only child — the usual chain-amalgamation rule.
    """
    n = len(parent)
    child_count = np.zeros(n, dtype=np.int64)
    for j in range(n):
        if parent[j] != -1:
            child_count[parent[j]] += 1

    snode = np.empty(n, dtype=np.int64)
    current = -1
    for j in range(n):
        starts_new = True
        if j > 0 and parent[j - 1] == j:
            if column_counts[j] == column_counts[j - 1] - 1 and child_count[j] == 1:
                starts_new = False
        if starts_new:
            current += 1
        snode[j] = current
    return snode


def supernodal_task_tree(a: sp.spmatrix) -> TaskTree:
    """Like :func:`etree_task_tree` but with fundamental supernodes merged.

    The supernode's output is the contribution block of its *top* column
    (that is what survives once the whole pivot block is eliminated).
    """
    parent = elimination_tree(a)
    counts = factor_column_counts(a, parent)
    snode = fundamental_supernodes(parent, counts)
    num = int(snode[-1]) + 1 if len(snode) else 0

    sn_parent = np.full(num, -1, dtype=np.int64)
    sn_top_count = np.zeros(num, dtype=np.int64)
    for j in range(len(parent)):
        s = snode[j]
        sn_top_count[s] = counts[j]  # last assignment = top column of s
        p = parent[j]
        if p != -1 and snode[p] != s:
            sn_parent[s] = snode[p]
    weights = multifrontal_weights(sn_top_count)
    return _to_task_tree(sn_parent, weights)
