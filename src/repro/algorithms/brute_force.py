"""Exhaustive oracles for small instances.

The MinIO problem's complexity is open (Section 4.5), so the test suite
pins every heuristic against ground truth computed by brute force on small
trees:

* :func:`min_io_brute` — optimum over *all* topological orders (the I/O
  function of each order is itself optimal by Theorem 1 / FiF);
* :func:`min_peak_brute` — MinMem optimum over all topological orders
  (validates Liu's algorithm);
* :func:`min_io_postorder_brute` / :func:`min_peak_postorder_brute` —
  optima over all postorders (validate the best-postorder algorithms).

All enumerations raise :class:`SearchBudgetExceeded` beyond ``max_orders``
schedules, so a mis-sized test fails loudly instead of hanging.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..core.simulator import schedule_peak_memory, simulate_fif
from ..core.tree import TaskTree

__all__ = [
    "SearchBudgetExceeded",
    "iter_topological_orders",
    "iter_postorders",
    "min_io_brute",
    "min_peak_brute",
    "min_io_postorder_brute",
    "min_peak_postorder_brute",
]

_DEFAULT_BUDGET = 500_000


class SearchBudgetExceeded(RuntimeError):
    """The instance has more schedules than the enumeration budget."""


def iter_topological_orders(tree: TaskTree) -> Iterator[list[int]]:
    """Yield every topological order (children before parents) of the tree.

    Backtracking over the "available" frontier: a node becomes available
    once all its children are scheduled.  The backtracking runs on an
    explicit frame stack (depth equals the node count, so a deep chain
    must not recurse); the enumeration order is identical to the natural
    recursive formulation.
    """
    n = tree.n
    parents = tree.parents
    remaining_children = [len(c) for c in tree.children]
    available = [v for v in range(n) if remaining_children[v] == 0]
    prefix: list[int] = []

    # One frame per depth: [next candidate index, frontier size at entry].
    frames: list[list[int]] = [[0, len(available)]]
    # Moves applied to descend past each frame: (node, index, activated).
    moves: list[tuple[int, int, bool]] = []
    while frames:
        frame = frames[-1]
        i, width = frame
        if i == 0 and len(prefix) == n:
            yield list(prefix)
        if i < width:
            frame[0] = i + 1
            # Apply candidate i: swap-pop it off the frontier.
            v = available[i]
            available[i] = available[-1]
            available.pop()
            prefix.append(v)
            p = parents[v]
            activated = False
            if p != -1:
                remaining_children[p] -= 1
                if remaining_children[p] == 0:
                    available.append(p)
                    activated = True
            moves.append((v, i, activated))
            frames.append([0, len(available)])
        else:
            frames.pop()
            if moves:
                v, i, activated = moves.pop()
                if activated:
                    available.pop()
                p = parents[v]
                if p != -1:
                    remaining_children[p] += 1
                prefix.pop()
                available.append(v)
                available[i], available[-1] = available[-1], available[i]


def iter_postorders(tree: TaskTree) -> Iterator[list[int]]:
    """Yield every postorder of the tree (all children permutations).

    Subtree postorder lists are combined bottom-up over the canonical
    topological order (no recursion, so deep chains are fine); only the
    root's combinations stay lazy, so the ``max_orders`` budget of the
    callers kicks in before the full top-level product materialises.
    """
    from itertools import permutations

    def combine(child_lists: list[list[list[int]]], v: int):
        for perm in permutations(range(len(child_lists))):
            acc_lists: list[list[int]] = [[]]
            for idx in perm:
                acc_lists = [
                    acc + sub for acc in acc_lists for sub in child_lists[idx]
                ]
            for acc in acc_lists:
                yield acc + [v]

    lists: list[list[list[int]] | None] = [None] * tree.n
    root = tree.root
    for v in tree.bottom_up():
        kids = tree.children[v]
        if v == root:
            break
        if not kids:
            lists[v] = [[v]]
        else:
            child_lists = [lists[c] for c in kids]
            lists[v] = list(combine(child_lists, v))
            for c in kids:
                lists[c] = None  # consumed exactly once; free early

    kids = tree.children[root]
    if not kids:
        yield [root]
        return
    yield from combine([lists[c] for c in kids], root)


def _best_over(
    tree: TaskTree,
    orders: Iterator[list[int]],
    evaluate,
    max_orders: int,
) -> tuple[int, list[int]]:
    best_value: int | None = None
    best_schedule: list[int] | None = None
    count = 0
    for schedule in orders:
        count += 1
        if count > max_orders:
            raise SearchBudgetExceeded(
                f"more than {max_orders} schedules; raise max_orders explicitly"
            )
        value = evaluate(schedule)
        if best_value is None or value < best_value:
            best_value = value
            best_schedule = schedule
    assert best_value is not None and best_schedule is not None
    return best_value, best_schedule


def min_io_brute(
    tree: TaskTree, memory: int, *, max_orders: int = _DEFAULT_BUDGET
) -> tuple[int, list[int]]:
    """Exact MinIO optimum ``(io, schedule)`` over all topological orders."""
    return _best_over(
        tree,
        iter_topological_orders(tree),
        lambda s: simulate_fif(tree, s, memory).io_volume,
        max_orders,
    )


def min_peak_brute(
    tree: TaskTree, *, max_orders: int = _DEFAULT_BUDGET
) -> tuple[int, list[int]]:
    """Exact MinMem optimum ``(peak, schedule)`` over all topological orders."""
    return _best_over(
        tree,
        iter_topological_orders(tree),
        lambda s: schedule_peak_memory(tree, s),
        max_orders,
    )


def min_io_postorder_brute(
    tree: TaskTree, memory: int, *, max_orders: int = _DEFAULT_BUDGET
) -> tuple[int, list[int]]:
    """Exact MinIO optimum restricted to postorders."""
    return _best_over(
        tree,
        iter_postorders(tree),
        lambda s: simulate_fif(tree, s, memory).io_volume,
        max_orders,
    )


def min_peak_postorder_brute(
    tree: TaskTree, *, max_orders: int = _DEFAULT_BUDGET
) -> tuple[int, list[int]]:
    """Exact MinMem optimum restricted to postorders."""
    return _best_over(
        tree,
        iter_postorders(tree),
        lambda s: schedule_peak_memory(tree, s),
        max_orders,
    )
