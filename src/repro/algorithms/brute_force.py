"""Exhaustive oracles for small instances.

The MinIO problem's complexity is open (Section 4.5), so the test suite
pins every heuristic against ground truth computed by brute force on small
trees:

* :func:`min_io_brute` — optimum over *all* topological orders (the I/O
  function of each order is itself optimal by Theorem 1 / FiF);
* :func:`min_peak_brute` — MinMem optimum over all topological orders
  (validates Liu's algorithm);
* :func:`min_io_postorder_brute` / :func:`min_peak_postorder_brute` —
  optima over all postorders (validate the best-postorder algorithms).

All enumerations raise :class:`SearchBudgetExceeded` beyond ``max_orders``
schedules, so a mis-sized test fails loudly instead of hanging.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..core.simulator import schedule_peak_memory, simulate_fif
from ..core.tree import TaskTree

__all__ = [
    "SearchBudgetExceeded",
    "iter_topological_orders",
    "iter_postorders",
    "min_io_brute",
    "min_peak_brute",
    "min_io_postorder_brute",
    "min_peak_postorder_brute",
]

_DEFAULT_BUDGET = 500_000


class SearchBudgetExceeded(RuntimeError):
    """The instance has more schedules than the enumeration budget."""


def iter_topological_orders(tree: TaskTree) -> Iterator[list[int]]:
    """Yield every topological order (children before parents) of the tree.

    Backtracking over the "available" frontier: a node becomes available
    once all its children are scheduled.
    """
    n = tree.n
    remaining_children = [len(c) for c in tree.children]
    available = [v for v in range(n) if remaining_children[v] == 0]
    prefix: list[int] = []

    def backtrack() -> Iterator[list[int]]:
        if len(prefix) == n:
            yield list(prefix)
            return
        # Iterate over a snapshot: `available` mutates during recursion.
        for i in range(len(available)):
            v = available[i]
            available[i] = available[-1]
            available.pop()
            prefix.append(v)
            p = tree.parents[v]
            activated = False
            if p != -1:
                remaining_children[p] -= 1
                if remaining_children[p] == 0:
                    available.append(p)
                    activated = True
            yield from backtrack()
            if activated:
                available.pop()
            if p != -1:
                remaining_children[p] += 1
            prefix.pop()
            available.append(v)
            available[i], available[-1] = available[-1], available[i]

    yield from backtrack()


def iter_postorders(tree: TaskTree) -> Iterator[list[int]]:
    """Yield every postorder of the tree (all children permutations)."""
    from itertools import permutations

    # Recursively combine child subtree postorders in every order.
    def orders(v: int) -> Iterator[list[int]]:
        kids = tree.children[v]
        if not kids:
            yield [v]
            return
        child_lists = [list(orders(c)) for c in kids]
        for perm in permutations(range(len(kids))):
            stack: list[list[int]] = [[]]
            for idx in perm:
                stack = [acc + sub for acc in stack for sub in child_lists[idx]]
            for acc in stack:
                yield acc + [v]

    yield from orders(tree.root)


def _best_over(
    tree: TaskTree,
    orders: Iterator[list[int]],
    evaluate,
    max_orders: int,
) -> tuple[int, list[int]]:
    best_value: int | None = None
    best_schedule: list[int] | None = None
    count = 0
    for schedule in orders:
        count += 1
        if count > max_orders:
            raise SearchBudgetExceeded(
                f"more than {max_orders} schedules; raise max_orders explicitly"
            )
        value = evaluate(schedule)
        if best_value is None or value < best_value:
            best_value = value
            best_schedule = schedule
    assert best_value is not None and best_schedule is not None
    return best_value, best_schedule


def min_io_brute(
    tree: TaskTree, memory: int, *, max_orders: int = _DEFAULT_BUDGET
) -> tuple[int, list[int]]:
    """Exact MinIO optimum ``(io, schedule)`` over all topological orders."""
    return _best_over(
        tree,
        iter_topological_orders(tree),
        lambda s: simulate_fif(tree, s, memory).io_volume,
        max_orders,
    )


def min_peak_brute(
    tree: TaskTree, *, max_orders: int = _DEFAULT_BUDGET
) -> tuple[int, list[int]]:
    """Exact MinMem optimum ``(peak, schedule)`` over all topological orders."""
    return _best_over(
        tree,
        iter_topological_orders(tree),
        lambda s: schedule_peak_memory(tree, s),
        max_orders,
    )


def min_io_postorder_brute(
    tree: TaskTree, memory: int, *, max_orders: int = _DEFAULT_BUDGET
) -> tuple[int, list[int]]:
    """Exact MinIO optimum restricted to postorders."""
    return _best_over(
        tree,
        iter_postorders(tree),
        lambda s: simulate_fif(tree, s, memory).io_volume,
        max_orders,
    )


def min_peak_postorder_brute(
    tree: TaskTree, *, max_orders: int = _DEFAULT_BUDGET
) -> tuple[int, list[int]]:
    """Exact MinMem optimum restricted to postorders."""
    return _best_over(
        tree,
        iter_postorders(tree),
        lambda s: schedule_peak_memory(tree, s),
        max_orders,
    )
