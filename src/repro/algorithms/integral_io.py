"""The whole-node (integral) I/O variant.

Before allowing partial writes, the authors studied the variant where an
output is either kept entirely in memory or written entirely to disk
(Jacquelin, Marchal, Robert & Uçar, IPDPS'11 — reference [3] of the
paper).  That variant is NP-complete by reduction from PARTITION, and the
present paper's introduction motivates paging (fractional I/O) as the
tractable-in-practice alternative.

This module implements the integral variant so the two models can be
compared quantitatively:

* :func:`whole_node_fif` — the natural greedy for a fixed schedule: evict
  *whole* outputs in furthest-in-the-future order.  Unlike the fractional
  case (Theorem 1), this greedy is **not** optimal — it can overshoot,
  which is exactly where the NP-hardness lives.
* :func:`min_whole_node_io_given_schedule` — exact optimum for a fixed
  schedule by branch-and-bound over eviction sets (small instances).
* :func:`min_whole_node_io_brute` — exact optimum over all schedules.
* :func:`integrality_gap` — integral-vs-fractional comparison on one
  instance.

Invariants tested in the suite: integral ≥ fractional everywhere; the
greedy ≥ the exact integral optimum; the greedy respects validity.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from ..core.simulator import InfeasibleSchedule, simulate_fif
from .brute_force import SearchBudgetExceeded, iter_topological_orders

__all__ = [
    "WholeNodeResult",
    "whole_node_fif",
    "min_whole_node_io_given_schedule",
    "min_whole_node_io_brute",
    "integrality_gap",
]


@dataclass(frozen=True)
class WholeNodeResult:
    """Outcome of a whole-node simulation: which outputs hit the disk."""

    evicted: frozenset[int]
    io_volume: int
    peak_memory: int


def whole_node_fif(tree, schedule: Sequence[int], memory: int) -> WholeNodeResult:
    """Greedy whole-node eviction, furthest parent first, for ``schedule``.

    Matches the fractional simulator's structure, but a victim's entire
    output leaves memory at once, possibly overshooting the needed room.

    Raises :class:`InfeasibleSchedule` when a step cannot fit even with
    every other active output evicted (``wbar > M``).
    """
    weights = tree.weights
    parents = tree.parents
    children = tree.children
    pos = {v: t for t, v in enumerate(schedule)}
    horizon = len(schedule)

    resident: dict[int, int] = {}  # active node -> 0 (evicted) or w
    evicted: set[int] = set()
    heap: list[tuple[int, int]] = []
    resident_total = 0
    io_total = 0
    peak = 0

    for t, v in enumerate(schedule):
        inputs = 0
        for c in children[v]:
            inputs += weights[c]
            share = resident.pop(c, None)
            if share:
                resident_total -= share
        wbar_v = max(weights[v], inputs)
        need = wbar_v + resident_total
        if need > memory:
            if wbar_v > memory:
                raise InfeasibleSchedule(
                    f"node {v} alone needs wbar={wbar_v} > M={memory}"
                )
            while need > memory:
                while heap:
                    _, k = heap[0]
                    if resident.get(k, 0) > 0:
                        break
                    heapq.heappop(heap)
                if not heap:
                    raise InfeasibleSchedule(
                        f"step {t}: nothing left to evict, still over M"
                    )
                k = heapq.heappop(heap)[1]
                freed = resident[k]
                resident[k] = 0
                resident_total -= freed
                io_total += freed
                evicted.add(k)
                need -= freed
            need = wbar_v + resident_total
        if need > peak:
            peak = need

        if weights[v]:
            resident[v] = weights[v]
            resident_total += weights[v]
            heapq.heappush(heap, (-pos.get(parents[v], horizon), v))
        else:
            resident[v] = 0

    return WholeNodeResult(
        evicted=frozenset(evicted), io_volume=io_total, peak_memory=peak
    )


def _feasible_eviction_exact(
    tree, schedule: Sequence[int], memory: int
) -> tuple[int, frozenset[int]]:
    """Exact minimum whole-node eviction for a fixed schedule.

    Branch-and-bound over the eviction decision of each active output,
    taken lazily: walk the schedule; when a step overflows, branch on
    which active node to evict (any of them could be right — the knapsack
    nature of the problem).  The search runs on an explicit stack (depth
    is the schedule length plus the eviction count, which would blow the
    interpreter's recursion limit on deep chains); exploration order and
    pruning match the natural recursive formulation exactly, so ties
    resolve to the same eviction set.
    """
    weights = tree.weights
    children = tree.children
    pos = {v: t for t, v in enumerate(schedule)}

    # Active windows: node -> (birth step, death step).
    windows = {}
    for v in schedule:
        p = tree.parents[v]
        death = pos.get(p, len(schedule))
        if death > pos[v] + 1 or p == -1:
            windows[v] = (pos[v], death)

    horizon = len(schedule)
    best_cost = float("inf")
    best_set: frozenset[int] = frozenset()

    stack: list[tuple[int, frozenset[int], int]] = [(0, frozenset(), 0)]
    while stack:
        t, evicted, cost = stack.pop()
        if cost >= best_cost:
            continue
        if t == horizon:
            best_cost = cost
            best_set = evicted
            continue
        v = schedule[t]
        inputs = sum(weights[c] for c in children[v])
        wbar_v = max(weights[v], inputs)
        active = [
            k
            for k, (birth, death) in windows.items()
            if birth < t < death and k not in evicted and weights[k] > 0
        ]
        need = wbar_v + sum(weights[k] for k in active)
        if need <= memory:
            stack.append((t + 1, evicted, cost))
            continue
        if wbar_v > memory or not active:
            continue  # dead branch
        # Must evict someone: branch over every active candidate
        # (reversed push so the pop order equals the loop order).
        for k in reversed(active):
            stack.append((t, evicted | {k}, cost + weights[k]))

    if best_cost == float("inf"):
        raise InfeasibleSchedule("no whole-node eviction set fits the schedule")
    return int(best_cost), best_set


def min_whole_node_io_given_schedule(
    tree, schedule: Sequence[int], memory: int
) -> WholeNodeResult:
    """Exact integral optimum for one schedule (exponential; small trees)."""
    cost, evicted = _feasible_eviction_exact(tree, schedule, memory)
    return WholeNodeResult(evicted=evicted, io_volume=cost, peak_memory=-1)


def min_whole_node_io_brute(
    tree, memory: int, *, max_orders: int = 200_000
) -> tuple[int, list[int]]:
    """Exact integral MinIO over all schedules (tiny trees only)."""
    best: int | None = None
    best_schedule: list[int] | None = None
    count = 0
    for schedule in iter_topological_orders(tree):
        count += 1
        if count > max_orders:
            raise SearchBudgetExceeded(f"more than {max_orders} schedules")
        try:
            cost, _ = _feasible_eviction_exact(tree, schedule, memory)
        except InfeasibleSchedule:
            continue
        if best is None or cost < best:
            best, best_schedule = cost, schedule
    if best is None:
        raise InfeasibleSchedule("no schedule fits at all")
    return best, best_schedule


@dataclass(frozen=True)
class IntegralityGap:
    """Fractional vs integral I/O for one (tree, schedule, memory)."""

    fractional: int
    integral_greedy: int
    integral_exact: int | None

    @property
    def gap(self) -> int:
        base = self.integral_exact if self.integral_exact is not None else self.integral_greedy
        return base - self.fractional


def integrality_gap(
    tree, schedule: Sequence[int], memory: int, *, exact: bool = False
) -> IntegralityGap:
    """How much the whole-node restriction costs on a fixed schedule."""
    fractional = simulate_fif(tree, schedule, memory).io_volume
    greedy = whole_node_fif(tree, schedule, memory).io_volume
    exact_cost = (
        min_whole_node_io_given_schedule(tree, schedule, memory).io_volume
        if exact
        else None
    )
    return IntegralityGap(
        fractional=fractional, integral_greedy=greedy, integral_exact=exact_cost
    )
