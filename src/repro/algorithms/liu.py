"""Liu's optimal peak-memory tree traversal (``OPTMINMEM``).

Reference: J. W. H. Liu, *An application of generalized tree pebbling to
sparse matrix factorization*, SIAM J. Algebraic Discrete Methods 8(3), 1987
— the algorithm the paper calls ``OPTMINMEM`` (Section 3.3) and uses both
as a baseline MinIO strategy (Section 4.4) and as the engine of the
RecExpand heuristics (Section 5).

Hill–valley segment algebra
---------------------------

The minimum-memory traversal of the subtree rooted at ``v`` is represented
by a canonical sequence of *segments* ``[(h_1, t_1), ..., (h_s, t_s)]``:

* segment ``i`` executes a contiguous group of nodes, reaching peak
  (*hill*) ``h_i`` and ending with ``t_i`` units resident (*valley*);
* canonically, hills strictly decrease and valleys strictly increase
  (any other cut point is dominated and merged away).

To combine the children of ``v``, each child's segments are turned into
**deltas** relative to the child's previous valley —
``(X_i, Y_i) = (h_i - t_{i-1}, t_i - t_{i-1})`` with ``t_0 = 0`` — because
a child's later segments *replace* its earlier residual rather than adding
to it.  Executing the merged deltas on a running base then reproduces the
true memory profile, and Liu's rearrangement lemma (Theorem 3 of the
paper) applies to deltas: the peak of the merged sequence is minimised by
sorting by decreasing ``X - Y = h_i - t_i``, which is strictly decreasing
within each child, so a global merge never violates per-child order.

Finally the execution of ``v`` itself appends a segment with hill
``max(sum of children outputs, w_v) = wbar_v`` and valley ``w_v``, and the
whole sequence is re-canonicalised.

Segments carry the executed nodes as a *rope* (nested pairs, flattened on
demand) so that schedule extraction stays linear even on deep chains.

The solver memoises segments per subtree and supports invalidating a
root-ward path, which makes the RecExpand inner loop (re-solve after a
single node expansion) cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core import kernels
from ..core.engine import array_tree_or_none
from ..core.tree import TaskTree

__all__ = ["Segment", "LiuSolver", "opt_min_mem", "min_peak_memory"]


# A rope is an int (single node) or a pair of ropes; flattening is
# iterative and shared with the flat kernels (one encoding, one
# flattener — see repro.core.kernels.flatten_rope).
Rope = object

_flatten_rope = kernels.flatten_rope


@dataclass(frozen=True)
class Segment:
    """One canonical hill–valley segment of a subtree traversal."""

    hill: int
    valley: int
    nodes: Rope  # the tasks executed by this segment, in order

    def node_list(self) -> list[int]:
        out: list[int] = []
        _flatten_rope(self.nodes, out)
        return out


class LiuSolver:
    """Memoised bottom-up solver for the MinMem problem.

    Works on any object following the tree protocol (``weights``,
    ``children``, ``parents``, ``root``), including the mutable
    :class:`~repro.core.expansion.ExpansionTree`.
    """

    def __init__(self, tree):
        self.tree = tree
        self._segs: dict[int, list[Segment]] = {}

    # ------------------------------------------------------------------
    def segments(self, v: int | None = None) -> list[Segment]:
        """Canonical segments of the subtree rooted at ``v`` (default: root)."""
        if v is None:
            v = self.tree.root
        segs = self._segs
        cached = segs.get(v)
        if cached is not None:
            return cached
        children = self.tree.children
        stack = [v]
        while stack:
            u = stack[-1]
            if u in segs:
                stack.pop()
                continue
            missing = [c for c in children[u] if c not in segs]
            if missing:
                stack.extend(missing)
            else:
                segs[u] = self._combine(u)
                stack.pop()
        return segs[v]

    def peak(self, v: int | None = None) -> int:
        """Minimum peak memory to execute the subtree rooted at ``v``."""
        return self.segments(v)[0].hill

    def schedule(self, v: int | None = None) -> list[int]:
        """An optimal-peak execution order of the subtree rooted at ``v``."""
        out: list[int] = []
        for seg in self.segments(v):
            _flatten_rope(seg.nodes, out)
        return out

    def invalidate_from(self, v: int) -> None:
        """Drop cached segments of ``v`` and all its ancestors.

        Call after mutating the weight or children of ``v`` (the subtrees
        hanging below ``v`` are unaffected and stay cached).
        """
        parents = self.tree.parents
        segs = self._segs
        u = v
        while u != -1:
            segs.pop(u, None)
            u = parents[u]

    # ------------------------------------------------------------------
    def _combine(self, v: int) -> list[Segment]:
        tree = self.tree
        kids = tree.children[v]
        w_v = tree.weights[v]
        if not kids:
            return [Segment(w_v, w_v, v)]

        # Delta segments of all children, merged by decreasing h - t.
        # (rank, idx) make the sort deterministic: construction order of the
        # children breaks ties, which is also what the paper's figures use.
        items: list[tuple[int, int, int, int, int, Rope]] = []
        segs = self._segs
        for rank, c in enumerate(kids):
            prev_valley = 0
            for idx, seg in enumerate(segs[c]):
                items.append(
                    (
                        -(seg.hill - seg.valley),
                        rank,
                        idx,
                        seg.hill - prev_valley,  # X
                        seg.valley - prev_valley,  # Y
                        seg.nodes,
                    )
                )
                prev_valley = seg.valley
        items.sort(key=lambda it: (it[0], it[1], it[2]))

        # Replay the merged deltas on a running base, then execute v itself.
        raw: list[tuple[int, int, Rope]] = []
        base = 0
        for _, _, _, x, y, nodes in items:
            hill = base + x
            base += y
            raw.append((hill, base, nodes))
        raw.append((max(base, w_v), w_v, v))  # base == sum of children outputs

        # Canonicalise: hills strictly decreasing, valleys strictly
        # increasing; a violating segment is merged with its predecessor
        # (hill = max of both, valley = the later one).
        out: list[Segment] = []
        for hill, valley, nodes in raw:
            while out and (hill >= out[-1].hill or valley <= out[-1].valley):
                top = out.pop()
                if top.hill > hill:
                    hill = top.hill
                nodes = (top.nodes, nodes)
            out.append(Segment(hill, valley, nodes))
        return out


def opt_min_mem(tree: TaskTree, *, engine: str | None = None) -> tuple[list[int], int]:
    """``OPTMINMEM``: an optimal-peak schedule and its peak memory.

    ``engine`` overrides the kernel engine (see :mod:`repro.core.engine`);
    the flat kernel reproduces :class:`LiuSolver`'s schedule exactly.
    """
    at = array_tree_or_none(tree, engine)
    if at is not None:
        return kernels.liu_schedule(at)
    solver = LiuSolver(tree)
    return solver.schedule(), solver.peak()


def min_peak_memory(tree: TaskTree, *, engine: str | None = None) -> int:
    """The in-core peak memory lower bound ``Peak_incore`` of a tree."""
    at = array_tree_or_none(tree, engine)
    if at is not None:
        return kernels.liu_peak(at)
    return LiuSolver(tree).peak()
