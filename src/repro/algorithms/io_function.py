"""Theorem 2: from an I/O function back to a schedule.

Given a tree ``G``, a memory bound ``M`` and an I/O function ``tau`` for
which *some* valid schedule exists, a valid schedule can be computed in
polynomial time: expand every node with ``tau(i) > 0`` (making the writes
and reads explicit tasks, :mod:`repro.core.expansion`) and run the optimal
MinMem algorithm on the expanded tree.  The expanded execution uses as
little memory as any schedule constrained to ``tau`` can, so it fits in
``M`` exactly when ``tau`` is feasible.
"""

from __future__ import annotations

from typing import Sequence

from ..core.expansion import expand_tree
from ..core.traversal import Traversal
from ..core.tree import TaskTree
from .liu import LiuSolver

__all__ = ["schedule_for_io_function"]


def schedule_for_io_function(
    tree: TaskTree, io: Sequence[int], memory: int
) -> Traversal | None:
    """A valid traversal ``(sigma, tau=io)``, or ``None`` if none exists.

    Implements Theorem 2.  The returned traversal uses exactly the given
    I/O function; its schedule is the restriction of Liu's optimal
    schedule on the expanded tree to the original nodes.
    """
    expanded, bookkeeping = expand_tree(tree, io)
    solver = LiuSolver(expanded)
    if solver.peak() > memory:
        return None
    schedule = bookkeeping.restrict_schedule(solver.schedule())
    return Traversal(tuple(schedule), tuple(io))
