"""Scheduling algorithms: the paper's strategies plus exact oracles."""

from .brute_force import (
    SearchBudgetExceeded,
    iter_postorders,
    iter_topological_orders,
    min_io_brute,
    min_io_postorder_brute,
    min_peak_brute,
    min_peak_postorder_brute,
)
from .homogeneous import HomogeneousLabels, homogeneous_labels, optimal_io, postorder_schedule
from .integral_io import (
    integrality_gap,
    min_whole_node_io_brute,
    min_whole_node_io_given_schedule,
    whole_node_fif,
)
from .io_function import schedule_for_io_function
from .liu import LiuSolver, Segment, min_peak_memory, opt_min_mem
from .postorder import PostorderResult, postorder_min_io, postorder_min_mem
from .rec_expand import RecExpandResult, full_rec_expand, rec_expand

__all__ = [
    "LiuSolver",
    "Segment",
    "opt_min_mem",
    "min_peak_memory",
    "PostorderResult",
    "postorder_min_io",
    "postorder_min_mem",
    "rec_expand",
    "full_rec_expand",
    "RecExpandResult",
    "homogeneous_labels",
    "postorder_schedule",
    "optimal_io",
    "HomogeneousLabels",
    "schedule_for_io_function",
    "min_io_brute",
    "min_peak_brute",
    "min_io_postorder_brute",
    "min_peak_postorder_brute",
    "iter_topological_orders",
    "iter_postorders",
    "SearchBudgetExceeded",
    "whole_node_fif",
    "min_whole_node_io_given_schedule",
    "min_whole_node_io_brute",
    "integrality_gap",
]
