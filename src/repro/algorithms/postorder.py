"""Best postorder traversals for peak memory and for I/O volume.

Two classic algorithms, both running in ``O(n log n)``:

* ``POSTORDERMINMEM`` (Liu 1986): among all postorders, minimise the peak
  memory.  At every node the children subtrees are visited by decreasing
  ``S_j - w_j``, where ``S_j`` is the subtree's own postorder peak.

* ``POSTORDERMINIO`` (Agullo 2008, adapted — Section 4.1 / Algorithm 1 of
  the paper): among all postorders, minimise the I/O volume under memory
  ``M`` with FiF evictions.  Children are visited by decreasing
  ``A_j - w_j`` with ``A_j = min(M, S_j)`` the amount of *main* memory the
  subtree's out-of-core execution uses, and the I/O volume obeys

  .. math::

     V_i = \\max\\Bigl(0,\\; \\max_j \\bigl(A_j + \\sum_{k<j} w_k\\bigr) - M\\Bigr)
           + \\sum_j V_j .

  Both orderings are instances of Liu's rearrangement lemma (Theorem 3):
  sorting pairs ``(x_j, y_j)`` by decreasing ``x_j - y_j`` minimises
  ``max_j (x_j + sum_{k<j} y_k)``.

The predicted ``V_root`` must coincide with the FiF simulator's measure of
the produced schedule — an invariant exercised by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import kernels
from ..core.engine import array_tree_or_none
from ..core.tree import TaskTree

__all__ = [
    "PostorderResult",
    "postorder_min_mem",
    "postorder_min_io",
    "postorder_with_child_key",
    "CHILD_ORDER_KEYS",
    "postorder_schedule_with_orders",
]


@dataclass(frozen=True)
class PostorderResult:
    """A postorder schedule plus the quantities its construction predicts."""

    schedule: tuple[int, ...]
    #: postorder peak memory of each subtree (``S_i``)
    storage: tuple[int, ...]
    #: predicted peak memory of the whole schedule (``S_root``)
    peak_memory: int
    #: predicted I/O volume (``V_root``; 0 for the MinMem variant)
    predicted_io: int


def postorder_schedule_with_orders(
    tree: TaskTree, child_order: list[list[int]]
) -> list[int]:
    """Emit the postorder defined by per-node children visit orders."""
    return tree.postorder(lambda v: child_order[v])


#: child-ordering keys for the ablation benchmarks.  Each maps
#: (storage S_c, weight w_c, memory M) -> sort key; children are visited by
#: *decreasing* key.  ``None`` means "keep the input order".
CHILD_ORDER_KEYS = {
    "A-w": lambda s, w, m: min(m, s) - w,  # the paper's PostOrderMinIO key
    "S-w": lambda s, w, m: s - w,  # Liu's MinMem key
    "A": lambda s, w, m: min(m, s),  # ignore the residue
    "-w": lambda s, w, m: -w,  # lightest residue first
    "input-order": None,
}


def _best_postorder(
    tree: TaskTree, memory: int | None, key_fn=None
) -> PostorderResult:
    """Shared engine: ``memory=None`` → MinMem keys, otherwise MinIO keys.

    ``key_fn`` overrides the child-ordering key (ablations); the ``S_i``
    and ``V_i`` recursions stay valid for *any* postorder, only the
    optimality of the result depends on the key.
    """
    n = tree.n
    weights = tree.weights
    storage = [0] * n  # S_i
    vio = [0] * n  # V_i (only meaningful when memory is not None)
    child_order: list[list[int]] = [[] for _ in range(n)]

    for v in tree.bottom_up():
        kids = tree.children[v]
        if not kids:
            storage[v] = weights[v]
            continue

        if key_fn is not None:
            key = lambda c: key_fn(storage[c], weights[c], memory)
        elif memory is None:
            key = lambda c: storage[c] - weights[c]
        else:
            key = lambda c: min(memory, storage[c]) - weights[c]
        ordered = sorted(kids, key=lambda c: (-key(c), c))
        child_order[v] = ordered

        peak = weights[v]
        worst_active = 0  # max_j (A_j + sum_{k<j} w_k)
        prefix = 0
        for c in ordered:
            peak = max(peak, storage[c] + prefix)
            if memory is not None:
                worst_active = max(worst_active, min(memory, storage[c]) + prefix)
            prefix += weights[c]
        storage[v] = peak
        if memory is not None:
            vio[v] = max(0, worst_active - memory) + sum(vio[c] for c in kids)

    schedule = postorder_schedule_with_orders(tree, child_order)
    return PostorderResult(
        schedule=tuple(schedule),
        storage=tuple(storage),
        peak_memory=storage[tree.root],
        predicted_io=vio[tree.root],
    )


def _array_result(at, memory: int | None) -> PostorderResult:
    schedule, storage, vio = kernels.best_postorder(at, memory)
    return PostorderResult(
        schedule=tuple(schedule),
        storage=tuple(storage),
        peak_memory=storage[at.root],
        predicted_io=vio[at.root],
    )


def postorder_min_mem(tree: TaskTree, *, engine: str | None = None) -> PostorderResult:
    """``POSTORDERMINMEM``: the peak-memory-optimal postorder (Liu 1986).

    ``engine`` overrides the kernel engine (see :mod:`repro.core.engine`);
    both engines return identical results.
    """
    at = array_tree_or_none(tree, engine)
    if at is not None:
        return _array_result(at, None)
    return _best_postorder(tree, None)


def postorder_min_io(
    tree: TaskTree, memory: int, *, engine: str | None = None
) -> PostorderResult:
    """``POSTORDERMINIO`` (Algorithm 1): the I/O-optimal postorder.

    ``predicted_io`` is Agullo's ``V_root`` — by Theorem 4 this is the
    overall optimum on homogeneous trees, and on general trees it equals
    the FiF cost of the returned schedule.  ``engine`` overrides the
    kernel engine; both engines return identical results.
    """
    if memory <= 0:
        raise ValueError(f"memory bound must be positive, got {memory}")
    at = array_tree_or_none(tree, engine)
    if at is not None:
        return _array_result(at, memory)
    return _best_postorder(tree, memory)


def postorder_with_child_key(
    tree: TaskTree, memory: int, key: str
) -> PostorderResult:
    """A postorder using one of the :data:`CHILD_ORDER_KEYS` orderings.

    With ``key="A-w"`` this *is* ``POSTORDERMINIO``; the other keys exist
    to quantify how much Theorem 3's ordering matters (ablation benches).
    """
    try:
        key_fn = CHILD_ORDER_KEYS[key]
    except KeyError:
        raise KeyError(
            f"unknown child order key {key!r}; available: {sorted(CHILD_ORDER_KEYS)}"
        ) from None
    if key_fn is None:
        key_fn = lambda s, w, m: 0  # stable sort keeps input order
    return _best_postorder(tree, memory, key_fn)
