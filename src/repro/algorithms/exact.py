"""Exact MinIO by branch-and-bound with antichain memoization.

The paper leaves the complexity of MINIO open (Section 4.5); no
polynomial algorithm is known.  This module provides an *exact* solver
that is far stronger than naive enumeration of all ``n!`` topological
orders, making optimality gaps measurable on instances of 15–25 nodes:

* **State space.**  After executing a set ``S`` of tasks, the *active*
  nodes (executed, parent not executed) form an antichain that uniquely
  determines ``S`` (``S`` is the union of their subtrees), so search
  states are keyed by the active antichain alone.
* **Lazy, concentrated evictions.**  It is never beneficial to evict
  before memory overflows, and for any *fixed* completion the optimal
  eviction pattern is Furthest-in-the-Future (Theorem 1), which always
  empties some victims completely and at most one partially.  Branching
  over these "concentrated" outcomes — a fully-evicted subset plus one
  partial victim — therefore covers an optimal solution.
* **Dominance.**  Two partial solutions over the same antichain compare
  by (cost so far, per-node resident amounts): less cost *and* pointwise
  less resident data is never worse, because every future step's memory
  pressure is pointwise lower.  Dominated states are pruned.
* **Bounding.**  The incumbent starts at the best heuristic solution
  (RecExpand / PostOrderMinIO / OptMinMem), and the global lower bound
  ``max(0, Peak_incore − M)`` (any schedule's peak is at least Liu's
  optimum, and memory above ``M`` must be evicted) allows early proof of
  optimality.

The solver is exponential in the worst case — use :func:`exact_min_io`
for trees up to a few dozen nodes, as an oracle for tests and gap
studies, not inside dataset sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..core.simulator import fif_traversal
from ..core.traversal import Traversal
from ..core.tree import TaskTree
from .liu import LiuSolver, min_peak_memory
from .postorder import postorder_min_io
from .rec_expand import rec_expand

__all__ = ["ExactResult", "SearchLimit", "exact_min_io", "optimality_gap"]

#: hard ceiling on accepted instances, independent of ``node_limit``:
#: the DFS recurses once per scheduled node, so this keeps the depth far
#: below the interpreter's recursion limit.  Instances anywhere near it
#: are unreachable in practice anyway (the state space is exponential
#: and ``max_states`` fires long before).
MAX_EXACT_NODES = 600


class SearchLimit(RuntimeError):
    """Raised when the state budget is exhausted before proving optimality."""


@dataclass(frozen=True)
class ExactResult:
    """Outcome of the exact search."""

    traversal: Traversal
    io_volume: int
    optimal: bool
    states_expanded: int
    lower_bound: int

    def certificate(self) -> str:
        status = "optimal" if self.optimal else "best-found (limit hit)"
        return (
            f"io={self.io_volume} [{status}], lower bound {self.lower_bound}, "
            f"{self.states_expanded} states expanded"
        )


def _heuristic_incumbent(tree: TaskTree, memory: int) -> Traversal:
    """The best of the three polynomial strategies seeds the incumbent."""
    candidates = [
        fif_traversal(tree, LiuSolver(tree).schedule(), memory),
        fif_traversal(tree, postorder_min_io(tree, memory).schedule, memory),
        rec_expand(tree, memory).traversal,
    ]
    return min(candidates, key=lambda t: t.io_volume)


def exact_min_io(
    tree: TaskTree,
    memory: int,
    *,
    max_states: int = 2_000_000,
    node_limit: int = 64,
) -> ExactResult:
    """Solve MINIO exactly on ``tree`` under the bound ``memory``.

    Parameters
    ----------
    max_states:
        abort with :class:`SearchLimit` after expanding this many states
        (the incumbent found so far is attached to the exception).
    node_limit:
        refuse trees larger than this outright — the search is
        exponential, and a silent multi-hour run helps nobody.

    Raises
    ------
    ValueError
        if the tree exceeds ``node_limit`` or ``memory`` is infeasible.
    SearchLimit
        if ``max_states`` is exhausted before the search space is.
    """
    n = tree.n
    if n > node_limit:
        raise ValueError(
            f"tree has {n} nodes > node_limit={node_limit}; the exact solver "
            "is exponential — raise node_limit explicitly if you mean it"
        )
    if n > MAX_EXACT_NODES:
        raise ValueError(
            f"tree has {n} nodes > the exact solver's hard ceiling "
            f"{MAX_EXACT_NODES} (its search recurses once per node; anything "
            "this large is out of reach for an exponential search anyway)"
        )
    lb_feasible = tree.min_feasible_memory()
    if memory < lb_feasible:
        raise ValueError(f"memory {memory} < feasibility bound {lb_feasible}")

    weights = tree.weights
    children = tree.children
    parents = tree.parents
    wbar = tree.wbar

    incumbent = _heuristic_incumbent(tree, memory)
    best_cost = incumbent.io_volume
    best_schedule: tuple[int, ...] = incumbent.schedule
    lower_bound = max(0, min_peak_memory(tree) - memory)
    if best_cost <= lower_bound:
        return ExactResult(incumbent, best_cost, True, 0, lower_bound)

    # DFS branch order: follow Liu's schedule so good incumbents come early.
    liu_pos = {v: t for t, v in enumerate(LiuSolver(tree).schedule())}

    # Pareto memo: active antichain -> list of (cost, residency-tuple),
    # residency aligned with the sorted antichain.
    memo: dict[frozenset[int], list[tuple[int, tuple[int, ...]]]] = {}
    states_expanded = 0

    def dominated(key: frozenset[int], cost: int, res: tuple[int, ...]) -> bool:
        entries = memo.setdefault(key, [])
        for c, r in entries:
            if c <= cost and all(a <= b for a, b in zip(r, res)):
                return True
        entries[:] = [
            (c, r)
            for c, r in entries
            if not (cost <= c and all(a <= b for a, b in zip(res, r)))
        ]
        entries.append((cost, res))
        return False

    def search(
        active: dict[int, int],  # node -> resident amount (w - tau so far)
        remaining_children: list[int],  # per-node count of unexecuted children
        executed_count: int,
        cost: int,
        schedule: list[int],
    ) -> None:
        nonlocal best_cost, best_schedule, states_expanded
        if cost >= best_cost:
            return
        if executed_count == n:
            best_cost = cost
            best_schedule = tuple(schedule)
            return

        states_expanded += 1
        if states_expanded > max_states:
            raise SearchLimit(
                f"exact search exceeded {max_states} states "
                f"(incumbent io={best_cost})"
            )

        key = frozenset(active)
        res_vec = tuple(active[v] for v in sorted(active))
        if dominated(key, cost, res_vec):
            return

        # Executable nodes: unexecuted with every child already executed.
        candidates = [
            v
            for v in range(n)
            if remaining_children[v] == 0 and v not in schedule_set
        ]
        candidates.sort(key=lambda v: liu_pos[v])

        for v in candidates:
            kids = children[v]
            others = [k for k in active if parents[k] != v]
            resident_others = sum(active[k] for k in others)
            need = wbar[v] + resident_others
            excess = need - memory

            # Enumerate eviction outcomes (possibly just "no eviction").
            outcomes: list[tuple[int, dict[int, int]]] = []
            if excess <= 0:
                outcomes.append((0, {}))
            else:
                evictable = [k for k in others if active[k] > 0]
                total_evictable = sum(active[k] for k in evictable)
                if total_evictable < excess:
                    continue  # this move is infeasible right now
                evictable.sort(key=lambda k: -active[k])
                for size in range(len(evictable) + 1):
                    for subset in combinations(evictable, size):
                        full = sum(active[k] for k in subset)
                        if full >= excess:
                            if full == excess:
                                outcomes.append(
                                    (excess, {k: active[k] for k in subset})
                                )
                            continue
                        part = excess - full
                        for j in evictable:
                            if j in subset or active[j] < part:
                                continue
                            ev = {k: active[k] for k in subset}
                            ev[j] = part
                            outcomes.append((excess, ev))

            for extra, evictions in outcomes:
                new_cost = cost + extra
                if new_cost >= best_cost:
                    continue
                # Apply: evict, consume children, produce v.
                saved = {k: active[k] for k in evictions}
                for k, amount in evictions.items():
                    active[k] -= amount
                consumed = {k: active.pop(k) for k in kids}
                if parents[v] != -1:
                    active[v] = weights[v]
                remaining_children_parent_dec = False
                p = parents[v]
                if p != -1:
                    remaining_children[p] -= 1
                    remaining_children_parent_dec = True
                schedule.append(v)
                schedule_set.add(v)

                search(active, remaining_children, executed_count + 1, new_cost, schedule)

                # Undo.
                schedule_set.discard(v)
                schedule.pop()
                if remaining_children_parent_dec:
                    remaining_children[p] += 1
                active.pop(v, None)
                active.update(consumed)
                for k, amount in saved.items():
                    active[k] = amount

    remaining = [len(children[v]) for v in range(n)]
    schedule_set: set[int] = set()
    try:
        search({}, remaining, 0, 0, [])
    except SearchLimit:
        traversal = fif_traversal(tree, best_schedule, memory)
        raise SearchLimit(
            f"state budget exhausted; best found io={traversal.io_volume}"
        ) from None

    traversal = fif_traversal(tree, best_schedule, memory)
    # FiF on the recorded schedule can only improve on the branch costs.
    assert traversal.io_volume <= best_cost
    return ExactResult(
        traversal=traversal,
        io_volume=traversal.io_volume,
        optimal=True,
        states_expanded=states_expanded,
        lower_bound=lower_bound,
    )


def optimality_gap(tree: TaskTree, memory: int, io_volume: int, **kwargs) -> float:
    """Relative gap of a heuristic's ``io_volume`` to the exact optimum.

    Returns 0.0 when the heuristic is optimal; uses the paper's
    ``(M + io) / M`` performance normalisation so a gap of 0.05 means the
    heuristic's performance is 5 % above optimal.
    """
    opt = exact_min_io(tree, memory, **kwargs).io_volume
    return (memory + io_volume) / (memory + opt) - 1.0
