"""The paper's novel heuristics: ``FULLRECEXPAND`` and ``RECEXPAND``.

Algorithm 2 (Section 5).  Idea: ``OPTMINMEM`` is a good scheduler but a
poor I/O planner — when its schedule overflows the memory, the FiF policy
reveals *where* I/O is unavoidable.  The heuristic makes that I/O explicit
by *expanding* the victim node inside the tree (see
:mod:`repro.core.expansion`) and re-runs ``OPTMINMEM``, which can now plan
around the eviction.  Processing the tree bottom-up (each subtree first
made I/O-free by its own expansions) keeps decisions local.

Per node ``r`` of the original tree (children before parents)::

    while OPTMINMEM(subtree of r) needs more than M:
        tau  <- FiF I/O function of the OPTMINMEM schedule
        i    <- node with tau(i) > 0 whose parent is scheduled latest
        expand i by tau(i)

``FULLRECEXPAND`` iterates until the subtree fits — possibly a
pseudo-polynomial number of iterations (the paper notes the loop count can
depend on the weights, not just on ``n``).  ``RECEXPAND`` caps the loop at
**2 iterations per node**; the resulting tree may still need I/O, which is
simply left to the FiF policy of the final schedule.

The reported solution transposes the final ``OPTMINMEM`` schedule of the
expanded tree back to the original nodes and re-derives the I/O function
with FiF on the *original* tree.  This never costs more than the sum of
expansions plus the residual FiF I/O on the expanded tree (the expanded
execution is a witness for the original one with the same write volume,
and FiF is optimal for a fixed schedule — Theorem 1); both accountings are
returned so the invariant can be tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.expansion import ExpansionTree
from ..core.simulator import simulate_fif
from ..core.traversal import Traversal
from ..core.tree import TaskTree
from .liu import LiuSolver

__all__ = [
    "RecExpandResult",
    "full_rec_expand",
    "rec_expand",
    "VICTIM_RULES",
    "ExpansionLimitExceeded",
]


class ExpansionLimitExceeded(RuntimeError):
    """Safety valve: FULLRECEXPAND exceeded its global iteration budget."""


@dataclass(frozen=True)
class RecExpandResult:
    """Everything the heuristic produced.

    ``traversal.io_volume`` (FiF on the original tree under the final
    schedule) is the headline number; ``expanded_io + residual_io`` is the
    paper's accounting (sum of expansions, plus — for RecExpand only —
    whatever FiF still pays on the expanded tree).
    """

    traversal: Traversal
    #: I/O volume of the returned traversal (the reported performance)
    io_volume: int
    #: total volume forced through expansions
    expanded_io: int
    #: FiF I/O remaining on the final expanded tree (0 for FullRecExpand)
    residual_io: int
    #: number of expansion operations applied
    expansions: int
    #: total while-loop iterations over all nodes
    iterations: int
    #: node count of the final expanded tree
    expanded_tree_size: int


#: victim-selection rules for the Line-6 choice of Algorithm 2; each maps
#: (FiF io dict, schedule positions, expansion tree) -> victim node.
VICTIM_RULES = {
    # the paper's rule: the node whose parent is scheduled the latest
    "parent-latest": lambda io, pos, xt: max(io, key=lambda v: pos[xt.parents[v]]),
    # the node evicted first (parent scheduled earliest)
    "parent-earliest": lambda io, pos, xt: min(io, key=lambda v: pos[xt.parents[v]]),
    # the node carrying the largest I/O amount
    "largest-io": lambda io, pos, xt: max(io, key=lambda v: (io[v], pos[xt.parents[v]])),
    # arbitrary but deterministic: smallest node id
    "first": lambda io, pos, xt: min(io),
}


def _expand_subtree(
    xt: ExpansionTree,
    solver: LiuSolver,
    subroot: int,
    memory: int,
    iteration_cap: int | None,
    global_budget: list[int],
    victim_rule,
) -> int:
    """Run the while-loop of Algorithm 2 at one node.  Returns iterations."""
    iterations = 0
    while iteration_cap is None or iterations < iteration_cap:
        if solver.peak(subroot) <= memory:
            break
        if global_budget[0] <= 0:
            raise ExpansionLimitExceeded(
                "FULLRECEXPAND used up its global iteration budget; "
                "pass a larger max_total_iterations"
            )
        global_budget[0] -= 1
        iterations += 1

        schedule = solver.schedule(subroot)
        result = simulate_fif(xt, schedule, memory)
        pos = {v: t for t, v in enumerate(schedule)}
        victim = victim_rule(result.io, pos, xt)
        dirty = xt.expand(victim, result.io[victim])
        solver.invalidate_from(dirty)
    return iterations


def full_rec_expand(
    tree: TaskTree,
    memory: int,
    *,
    iteration_cap: int | None = None,
    max_total_iterations: int | None = None,
    victim_rule: str = "parent-latest",
) -> RecExpandResult:
    """``FULLRECEXPAND`` (Algorithm 2); ``iteration_cap`` yields the variants.

    Parameters
    ----------
    tree, memory:
        the instance.  ``memory`` must be at least ``max wbar_i``.
    iteration_cap:
        per-node while-loop bound; ``None`` reproduces FULLRECEXPAND,
        ``2`` reproduces RECEXPAND (use :func:`rec_expand`).
    max_total_iterations:
        global safety budget for the uncapped variant (default
        ``50 * n + 1000``); exceeding it raises
        :class:`ExpansionLimitExceeded` rather than looping unboundedly.
    victim_rule:
        which node to expand among those with ``tau > 0`` (see
        :data:`VICTIM_RULES`); the paper's choice is ``"parent-latest"``.
        The alternatives exist for the ablation benchmarks.
    """
    if memory < tree.min_feasible_memory():
        raise ValueError(
            f"M={memory} below the minimal feasible memory "
            f"{tree.min_feasible_memory()}"
        )
    try:
        rule = VICTIM_RULES[victim_rule]
    except KeyError:
        raise KeyError(
            f"unknown victim rule {victim_rule!r}; available: {sorted(VICTIM_RULES)}"
        ) from None

    xt = ExpansionTree(tree)
    solver = LiuSolver(xt)
    if max_total_iterations is None:
        max_total_iterations = 50 * tree.n + 1000
    budget = [max_total_iterations]

    iterations = 0
    # Children before parents == the recursion order of Algorithm 2.  When
    # node r is processed, everything below it is already expanded and, for
    # the uncapped variant, I/O-free; expansions triggered at r splice new
    # nodes strictly below r, so cached segments of untouched subtrees stay
    # valid and only the path to r is re-solved per iteration.
    for r in tree.bottom_up():
        iterations += _expand_subtree(
            xt, solver, r, memory, iteration_cap, budget, rule
        )

    final_schedule = solver.schedule(xt.root)
    residual = simulate_fif(xt, final_schedule, memory).io_volume
    original_schedule = xt.restrict_schedule(final_schedule)
    final = simulate_fif(tree, original_schedule, memory)

    return RecExpandResult(
        traversal=Traversal(tuple(original_schedule), final.io_list(tree.n)),
        io_volume=final.io_volume,
        expanded_io=xt.expanded_io,
        residual_io=residual,
        expansions=xt.num_expansions,
        iterations=iterations,
        expanded_tree_size=xt.n,
    )


def rec_expand(tree: TaskTree, memory: int) -> RecExpandResult:
    """``RECEXPAND``: Algorithm 2 with the while-loop capped at 2 iterations.

    Polynomial (at most ``2n`` expansions) and, per the paper's Section 6,
    within a few percent of ``FULLRECEXPAND`` on the SYNTH dataset.
    """
    return full_rec_expand(tree, memory, iteration_cap=2)
