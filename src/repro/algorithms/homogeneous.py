"""The homogeneous-tree theory of Section 4.2 (Theorem 4).

When every output has unit size, the best postorder is *globally* optimal
for MinIO.  The proof machinery defines four labels, all computed here:

* ``l(v)`` — the minimum memory to execute the subtree of ``v`` without
  any I/O.  Leaves have ``l = 1`` (one slot for their output; the paper's
  recursive definition lists 0 for leaves but its own Lemmas 1–2 use 1,
  and only 1 makes ``l`` equal the no-I/O peak).  Internal nodes order
  children by non-increasing ``l`` and take ``max_i (l(v_i) + i - 1)``.
* ``c(v_i)`` — 1 iff the POSTORDER traversal must write a (unit-size)
  sibling to disk during the subtree of ``v_i``.
* ``w(v) = sum_i c(v_i)`` and ``W(T) = sum_v w(v)`` — the total I/O volume
  of POSTORDER, and by Lemma 5 a lower bound for *every* traversal.

Hence ``W(T)`` is the exact optimum, and this module doubles as an oracle
for the general algorithms on homogeneous instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tree import TaskTree

__all__ = ["HomogeneousLabels", "homogeneous_labels", "postorder_schedule", "optimal_io"]


def _check_homogeneous(tree: TaskTree) -> None:
    if any(w != 1 for w in tree.weights):
        raise ValueError("tree is not homogeneous (all weights must equal 1)")


@dataclass(frozen=True)
class HomogeneousLabels:
    """The ``l``/``c``/``m``/``w`` labels of Section 4.2 for one tree."""

    memory: int
    l: tuple[int, ...]  # noqa: E741  (paper notation)
    c: tuple[int, ...]
    w: tuple[int, ...]
    #: total optimal I/O volume ``W(T)``
    total: int
    #: children of each node sorted by non-increasing ``l``
    child_order: tuple[tuple[int, ...], ...]


def homogeneous_labels(tree: TaskTree, memory: int) -> HomogeneousLabels:
    """Compute every label of the Section 4.2 machinery.

    ``memory`` is the bound ``M``; it must allow each single task to run
    (``M >= wbar_i``, i.e. ``M >=`` the maximum child count and ``>= 1``).
    """
    _check_homogeneous(tree)
    if memory < tree.min_feasible_memory():
        raise ValueError(
            f"M={memory} below the minimal feasible memory "
            f"{tree.min_feasible_memory()}"
        )

    n = tree.n
    l = [1] * n  # noqa: E741
    child_order: list[tuple[int, ...]] = [()] * n

    for v in tree.bottom_up():
        kids = tree.children[v]
        if not kids:
            continue
        ordered = sorted(kids, key=lambda u: (-l[u], u))
        child_order[v] = tuple(ordered)
        l[v] = max(l[u] + i for i, u in enumerate(ordered))

    c = [0] * n
    w = [0] * n
    for v in range(n):
        ordered = child_order[v]
        if not ordered:
            continue
        in_memory = 0  # m(v_i): siblings of v_i fully kept so far
        for i, u in enumerate(ordered):
            if i == 0 or l[u] + in_memory <= memory:
                c[u] = 0
            else:
                c[u] = 1
            in_memory += 1 - c[u]
        w[v] = sum(c[u] for u in ordered)

    return HomogeneousLabels(
        memory=memory,
        l=tuple(l),
        c=tuple(c),
        w=tuple(w),
        total=sum(w),
        child_order=tuple(child_order),
    )


def postorder_schedule(tree: TaskTree) -> list[int]:
    """The POSTORDER schedule: children by non-increasing ``l`` labels."""
    labels = homogeneous_labels(tree, max(tree.min_feasible_memory(), tree.n))
    order = labels.child_order
    return tree.postorder(lambda v: order[v] if order[v] else tree.children[v])


def optimal_io(tree: TaskTree, memory: int) -> int:
    """The exact minimum I/O volume ``W(T)`` of a homogeneous tree."""
    return homogeneous_labels(tree, memory).total
