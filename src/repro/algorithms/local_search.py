"""Local search over schedules: a post-optimizer for any strategy.

The paper's heuristics commit to one schedule; Figure 7 proves none of
them is always right.  A cheap, generic way to claw back some of the gap
is hill-climbing on the schedule under the FiF objective (Theorem 1
makes the objective well-defined per schedule):

* **swap** — transpose adjacent tasks when no dependency forbids it;
* **shift** — move one task as early as its children allow, or as late
  as its parent allows (block moves that swaps alone reach slowly);
* **gather** — make one subtree's steps contiguous (ending at its root's
  current position).  In a tree the only dependency leaving a subtree is
  its root's edge, so gathering is always valid; it is the move that
  de-interleaves Figure 2(c)-style schedules, which no sequence of
  improving single-task moves can repair.

First-improvement, round-based, budget-capped: the FiF evaluation is
``O(n log n)``, so the search costs ``O(rounds * n^2 log n)`` at worst —
a post-pass for moderate trees, not a dataset-sweep algorithm.  The
result never regresses below the starting schedule (tested invariant).

Finding (documented in EXPERIMENTS.md): started from RecExpand the
search rarely improves — RecExpand sits in a deep local optimum — while
started from PostOrderMinIO it recovers a large share of the postorder
gap.  That asymmetry is itself evidence for the paper's design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.simulator import fif_traversal, simulate_fif
from ..core.traversal import Traversal
from ..core.tree import TaskTree

__all__ = ["LocalSearchResult", "local_search"]


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of one hill-climbing run."""

    traversal: Traversal
    start_io: int
    evaluations: int
    rounds: int

    @property
    def io_volume(self) -> int:
        return self.traversal.io_volume

    @property
    def improvement(self) -> int:
        """I/O units saved relative to the starting schedule."""
        return self.start_io - self.io_volume


def _earliest_position(tree: TaskTree, schedule: list[int], i: int) -> int:
    """Earliest index task ``schedule[i]`` may move to (after its children)."""
    v = schedule[i]
    children = set(tree.children[v])
    earliest = 0
    for j in range(i - 1, -1, -1):
        if schedule[j] in children:
            earliest = j + 1
            break
    return earliest


def _latest_position(tree: TaskTree, schedule: list[int], i: int) -> int:
    """Latest index task ``schedule[i]`` may move to (before its parent)."""
    v = schedule[i]
    parent = tree.parents[v]
    latest = len(schedule) - 1
    if parent == -1:
        return latest
    for j in range(i + 1, len(schedule)):
        if schedule[j] == parent:
            return j - 1
    return latest


def local_search(
    tree: TaskTree,
    memory: int,
    schedule: Sequence[int] | None = None,
    *,
    neighborhoods: Sequence[str] = ("swap", "shift", "gather"),
    max_rounds: int = 8,
    max_evaluations: int = 20_000,
) -> LocalSearchResult:
    """Hill-climb ``schedule`` (default: RecExpand's) under the FiF cost.

    Parameters
    ----------
    neighborhoods:
        any subset of ``{"swap", "shift", "gather"}``; applied in the
        given order within each round.
    max_rounds:
        stop after this many full passes even if still improving.
    max_evaluations:
        global budget of FiF evaluations (the dominant cost).

    Returns
    -------
    LocalSearchResult
        whose traversal is always at least as good as the input schedule.
    """
    unknown = set(neighborhoods) - {"swap", "shift", "gather"}
    if unknown:
        raise ValueError(f"unknown neighborhoods: {sorted(unknown)}")
    if schedule is None:
        from .rec_expand import rec_expand

        schedule = rec_expand(tree, memory).traversal.schedule
    current = list(schedule)
    n = len(current)
    if sorted(current) != list(range(tree.n)):
        raise ValueError("schedule is not a permutation of the nodes")

    evaluations = 0

    def cost(s: list[int]) -> int:
        nonlocal evaluations
        evaluations += 1
        return simulate_fif(tree, s, memory).io_volume

    best_io = start_io = cost(current)
    rounds = 0
    improved = True
    while improved and rounds < max_rounds and evaluations < max_evaluations:
        improved = False
        rounds += 1
        if "swap" in neighborhoods:
            for i in range(n - 1):
                if evaluations >= max_evaluations:
                    break
                a, b = current[i], current[i + 1]
                # Invalid only if b consumes a.
                if tree.parents[a] == b:
                    continue
                current[i], current[i + 1] = b, a
                io = cost(current)
                if io < best_io:
                    best_io = io
                    improved = True
                else:
                    current[i], current[i + 1] = a, b
        if "shift" in neighborhoods:
            for i in range(n):
                if evaluations >= max_evaluations:
                    break
                for target in (_earliest_position(tree, current, i),
                               _latest_position(tree, current, i)):
                    if target == i:
                        continue
                    v = current.pop(i)
                    current.insert(target, v)
                    io = cost(current)
                    if io < best_io:
                        best_io = io
                        improved = True
                        break
                    current.pop(target)
                    current.insert(i, v)
        if "gather" in neighborhoods:
            for v in range(tree.n):
                if evaluations >= max_evaluations:
                    break
                if not tree.children[v]:
                    continue
                subtree = set(tree.subtree_nodes(v))
                pos_v = current.index(v)
                block = [u for u in current[:pos_v + 1] if u in subtree]
                if len(block) == pos_v + 1:
                    continue  # already a prefix — gathering is a no-op
                candidate = [u for u in current[:pos_v + 1] if u not in subtree]
                candidate.extend(block)
                candidate.extend(current[pos_v + 1:])
                if candidate == current:
                    continue
                io = cost(candidate)
                if io < best_io:
                    best_io = io
                    current = candidate
                    improved = True

    traversal = fif_traversal(tree, current, memory)
    assert traversal.io_volume == best_io
    return LocalSearchResult(
        traversal=traversal,
        start_io=start_io,
        evaluations=evaluations,
        rounds=rounds,
    )
