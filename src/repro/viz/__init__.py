"""SVG/ASCII visualisation of profiles, memory timelines and trees.

Matplotlib-free renderers producing standalone SVG files:

* :func:`~repro.viz.charts.profile_chart` — the paper's performance
  profile figures;
* :func:`~repro.viz.charts.memory_timeline_chart` — resident memory per
  execution step under one or more schedules;
* :func:`~repro.viz.charts.io_sweep_chart` — I/O volume across a tree's
  whole memory regime;
* :func:`~repro.viz.charts.schedule_trace_chart` — one request's
  schedule trace (memory hill-valley curve + cumulative I/O), the view
  the service dashboard drills down into;
* :func:`~repro.viz.treeviz.tree_chart` — annotated node-link tree
  diagrams (the Figure 2/6/7 style).
"""

from .charts import (
    io_sweep_chart,
    memory_timeline_chart,
    profile_chart,
    schedule_trace_chart,
)
from .gantt import gantt_chart
from .svg import PALETTE, LineChart, Series
from .treeviz import tree_ascii, tree_chart

__all__ = [
    "LineChart",
    "PALETTE",
    "Series",
    "gantt_chart",
    "io_sweep_chart",
    "memory_timeline_chart",
    "profile_chart",
    "schedule_trace_chart",
    "tree_ascii",
    "tree_chart",
]
