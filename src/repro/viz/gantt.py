"""Gantt charts of parallel out-of-core executions.

Renders a :class:`~repro.parallel.engine.ParallelReport` as an SVG
timeline: one lane per processor, one bar per task (labelled with the
node id), bars shaded by how much of their span was spent blocked on
reads — the picture that makes the activation-window trade-off visible
at a glance.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from ..parallel.engine import ParallelReport
from .svg import PALETTE

__all__ = ["gantt_chart"]

_LANE_H = 26
_BAR_H = 18
_LEFT = 64
_RIGHT = 16
_TOP = 36
_BOTTOM = 36


def gantt_chart(
    report: ParallelReport,
    *,
    title: str = "",
    width: int = 760,
    min_label_px: float = 18.0,
) -> str:
    """The report's events as an SVG Gantt chart.

    Parameters
    ----------
    min_label_px:
        bars narrower than this many pixels stay unlabelled (legibility).
    """
    if not report.events:
        raise ValueError("report has no events to draw")
    processors = len(report.busy_time)
    makespan = report.makespan or max(e.end for e in report.events)
    plot_w = width - _LEFT - _RIGHT
    height = _TOP + processors * _LANE_H + _BOTTOM

    def sx(t: float) -> float:
        return _LEFT + (t / makespan) * plot_w if makespan else _LEFT

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="Helvetica,Arial,sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        out.append(
            f'<text x="{width / 2:.0f}" y="18" text-anchor="middle" '
            f'font-weight="bold">{escape(title)}</text>'
        )

    for p in range(processors):
        y = _TOP + p * _LANE_H
        out.append(
            f'<text x="{_LEFT - 8}" y="{y + _BAR_H - 4}" '
            f'text-anchor="end">P{p}</text>'
        )
        out.append(
            f'<line x1="{_LEFT}" y1="{y + _LANE_H - 3}" '
            f'x2="{_LEFT + plot_w}" y2="{y + _LANE_H - 3}" '
            'stroke="#eeeeee"/>'
        )

    for ev in report.events:
        color = PALETTE[ev.node % len(PALETTE)]
        x0, x1 = sx(ev.start), sx(ev.end)
        y = _TOP + ev.processor * _LANE_H
        bar_w = max(x1 - x0, 1.0)
        out.append(
            f'<rect x="{x0:.1f}" y="{y}" width="{bar_w:.1f}" '
            f'height="{_BAR_H}" fill="{color}" fill-opacity="0.75" '
            'stroke="#333333" stroke-width="0.6"/>'
        )
        if ev.read_volume and ev.end > ev.start:
            # Shade the leading read-stall fraction of the bar.
            span = ev.end - ev.start
            stall_frac = min(1.0, ev.read_volume / max(span, 1e-12) / 100.0)
            out.append(
                f'<rect x="{x0:.1f}" y="{y}" '
                f'width="{max(bar_w * stall_frac, 1.0):.1f}" '
                f'height="{_BAR_H}" fill="#000000" fill-opacity="0.25"/>'
            )
        if bar_w >= min_label_px:
            out.append(
                f'<text x="{(x0 + x1) / 2:.1f}" y="{y + _BAR_H - 5}" '
                f'text-anchor="middle" fill="white">{ev.node}</text>'
            )

    # Time axis.
    axis_y = _TOP + processors * _LANE_H + 12
    out.append(
        f'<line x1="{_LEFT}" y1="{axis_y}" x2="{_LEFT + plot_w}" '
        f'y2="{axis_y}" stroke="#333333"/>'
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = makespan * frac
        x = sx(t)
        out.append(
            f'<line x1="{x:.1f}" y1="{axis_y}" x2="{x:.1f}" '
            f'y2="{axis_y + 4}" stroke="#333333"/>'
        )
        out.append(
            f'<text x="{x:.1f}" y="{axis_y + 16}" '
            f'text-anchor="middle">{t:g}</text>'
        )
    out.append(
        f'<text x="{_LEFT + plot_w / 2:.0f}" y="{axis_y + 30}" '
        f'text-anchor="middle">time (makespan {makespan:g}, '
        f'io {report.io_volume}, utilisation {report.utilisation():.0%})</text>'
    )
    out.append("</svg>")
    return "\n".join(out)
