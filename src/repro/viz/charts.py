"""Paper-style figures from reproduction data structures.

Three renderers, all returning SVG strings:

* :func:`profile_chart` — a Dolan–Moré performance profile, the format of
  every evaluation figure in the paper (4, 5, 8–11);
* :func:`memory_timeline_chart` — resident memory per execution step for
  one or more traversals of a tree, with the bound ``M`` drawn in;
* :func:`io_sweep_chart` — I/O volume of several strategies as a function
  of the memory bound across a tree's whole I/O regime.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..analysis.profiles import PerformanceProfile
from ..core.simulator import simulate_fif
from ..core.tree import TaskTree
from .svg import LineChart

__all__ = [
    "profile_chart",
    "memory_timeline_chart",
    "io_sweep_chart",
    "schedule_trace_chart",
]


def profile_chart(
    profile: PerformanceProfile,
    *,
    title: str = "",
    max_threshold: float | None = None,
    width: int = 640,
    height: int = 420,
) -> str:
    """Render profile curves exactly like the paper's evaluation figures:
    x = maximal overhead vs the best strategy, y = fraction of test cases."""
    observed = [t for c in profile.curves for t in c.thresholds]
    hi = max_threshold if max_threshold is not None else (max(observed) or 0.01)
    chart = LineChart(
        title=title,
        x_label="Maximal overhead",
        y_label="Fraction of test cases",
        width=width,
        height=height,
        x_range=(0.0, hi),
        y_range=(0.0, 1.0),
        x_percent=True,
    )
    for curve in profile.curves:
        xs = [t for t in curve.thresholds if t <= hi]
        ys = list(curve.fractions[: len(xs)])
        if not xs or xs[0] > 0.0:
            xs.insert(0, 0.0)
            ys.insert(0, curve.fraction_at(0.0))
        chart.add(curve.algorithm, xs, ys, step=True)
    return chart.render()


def memory_timeline_chart(
    tree: TaskTree,
    schedules: Mapping[str, Sequence[int]],
    memory: int | None = None,
    *,
    title: str = "",
    width: int = 640,
    height: int = 420,
) -> str:
    """Resident-memory trajectory of each schedule, step by step.

    With ``memory`` set, the FiF simulator enforces the bound (the curves
    saturate at ``M`` and the dashed line shows the limit); without it the
    curves show the unbounded-memory peaks (the MinMem view).
    """
    chart = LineChart(
        title=title,
        x_label="Execution step",
        y_label="Resident memory (units)",
        width=width,
        height=height,
    )
    for name, schedule in schedules.items():
        result = simulate_fif(tree, schedule, memory, trace=True)
        xs = list(range(len(result.steps)))
        ys = [s.resident_after for s in result.steps]
        label = f"{name} (io={result.io_volume})" if memory is not None else name
        chart.add(label, xs, ys)
    if memory is not None:
        last = max(len(s) for s in schedules.values())
        chart.add(f"M = {memory}", [0, last - 1], [memory, memory], dash="6,4",
                  color="#888888")
    return chart.render()


def schedule_trace_chart(
    trace: Mapping[str, Sequence[int]],
    memory: int | None = None,
    *,
    title: str = "",
    width: int = 640,
    height: int = 420,
) -> str:
    """Render one per-request schedule trace (see
    :func:`repro.obs.schedule_trace`): the resident-memory hill-valley
    curve and the cumulative I/O staircase over the schedule's events,
    with the peak and the bound ``M`` marked.
    """
    mem = list(trace["memory"])
    cum = list(trace["cumulative_io"])
    xs = list(range(len(mem)))
    chart = LineChart(
        title=title,
        x_label="Schedule event",
        y_label="Memory / cumulative I/O (units)",
        width=width,
        height=height,
    )
    peak = trace.get("peak_memory", max(mem) if mem else 0)
    chart.add(f"resident memory (peak={peak})", xs, mem)
    chart.add(f"cumulative I/O (total={trace.get('io_volume', 0)})",
              xs, cum, step=True)
    if memory is not None and xs:
        chart.add(f"M = {memory}", [xs[0], xs[-1]], [memory, memory],
                  dash="6,4", color="#888888")
    return chart.render()


def io_sweep_chart(
    tree: TaskTree,
    io_by_algorithm: Mapping[str, Sequence[int]],
    memories: Sequence[int],
    *,
    title: str = "",
    width: int = 640,
    height: int = 420,
) -> str:
    """I/O volume versus memory bound, one curve per strategy."""
    chart = LineChart(
        title=title,
        x_label="Memory bound M",
        y_label="I/O volume",
        width=width,
        height=height,
    )
    for name, volumes in io_by_algorithm.items():
        if len(volumes) != len(memories):
            raise ValueError(
                f"{name}: {len(volumes)} volumes for {len(memories)} memories"
            )
        chart.add(name, list(memories), list(volumes))
    return chart.render()
