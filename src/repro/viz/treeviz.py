"""Node-link SVG diagrams of task trees (the paper's Figure 2/6/7 style).

Uses the classic tidy-tree layout (Reingold–Tilford simplified to
subtree-width packing): leaves get unit-width slots, internal nodes are
centred over their children.  Node labels show the output weight; an
optional schedule annotates execution steps next to the nodes, matching
how the paper prints counterexample traversals.
"""

from __future__ import annotations

from typing import Mapping, Sequence
from xml.sax.saxutils import escape

from ..core.tree import TaskTree

__all__ = ["tree_chart", "tree_ascii"]

_NODE_R = 16
_X_GAP = 46
_Y_GAP = 64


def _layout(tree: TaskTree) -> dict[int, tuple[float, int]]:
    """x (in leaf slots) and depth for every node, iteratively."""
    depth = [0] * tree.n
    for v in tree.topological_order():
        p = tree.parents[v]
        if p != -1:
            depth[v] = depth[p] + 1

    x: dict[int, float] = {}
    next_slot = 0.0
    for v in tree.bottom_up():
        kids = tree.children[v]
        if not kids:
            x[v] = next_slot
            next_slot += 1.0
        else:
            x[v] = sum(x[c] for c in kids) / len(kids)
    return {v: (x[v], depth[v]) for v in range(tree.n)}


def tree_chart(
    tree: TaskTree,
    *,
    schedule: Sequence[int] | None = None,
    io: Mapping[int, int] | None = None,
    title: str = "",
) -> str:
    """Render the tree as SVG; weights inside nodes, steps/IO beside them."""
    pos = _layout(tree)
    max_slot = max(x for x, _ in pos.values())
    max_depth = max(d for _, d in pos.values())
    width = int((max_slot + 1) * _X_GAP + 2 * _NODE_R + 20)
    height = int((max_depth + 1) * _Y_GAP + 2 * _NODE_R + (30 if title else 10))
    y_off = 30 if title else 10

    def px(v: int) -> tuple[float, float]:
        x, d = pos[v]
        return (x * _X_GAP + _NODE_R + 10, d * _Y_GAP + _NODE_R + y_off)

    step_of = {v: t for t, v in enumerate(schedule)} if schedule else {}

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="Helvetica,Arial,sans-serif" '
        'font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        out.append(
            f'<text x="{width / 2:.0f}" y="18" text-anchor="middle" '
            f'font-weight="bold">{escape(title)}</text>'
        )
    # Edges first (under the nodes).
    for v in range(tree.n):
        p = tree.parents[v]
        if p == -1:
            continue
        x1, y1 = px(v)
        x2, y2 = px(p)
        out.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            'stroke="#666666" stroke-width="1.2"/>'
        )
    for v in range(tree.n):
        cx, cy = px(v)
        evicted = io.get(v, 0) if io else 0
        fill = "#ffd9c2" if evicted else "#e8f0fe"
        out.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{_NODE_R}" fill="{fill}" '
            'stroke="#333333" stroke-width="1.2"/>'
        )
        out.append(
            f'<text x="{cx:.1f}" y="{cy + 4:.1f}" '
            f'text-anchor="middle">{tree.weights[v]}</text>'
        )
        annotations = []
        if v in step_of:
            annotations.append(f"#{step_of[v] + 1}")
        if evicted:
            annotations.append(f"io={evicted}")
        if annotations:
            out.append(
                f'<text x="{cx + _NODE_R + 3:.1f}" y="{cy - 6:.1f}" '
                f'fill="#aa3300">{escape(" ".join(annotations))}</text>'
            )
    out.append("</svg>")
    return "\n".join(out)


def tree_ascii(tree: TaskTree, *, max_nodes: int = 200) -> str:
    """A quick indented text rendering (root first) for terminals."""
    if tree.n > max_nodes:
        raise ValueError(f"tree too large for ASCII rendering ({tree.n} nodes)")
    lines: list[str] = []
    # Depth-first with explicit stack; children in construction order.
    stack: list[tuple[int, int]] = [(tree.root, 0)]
    while stack:
        v, depth = stack.pop()
        lines.append(f"{'  ' * depth}{v} (w={tree.weights[v]})")
        for c in reversed(tree.children[v]):
            stack.append((c, depth + 1))
    return "\n".join(lines)
