"""A minimal dependency-free SVG chart writer.

Matplotlib is not available in the reproduction environment, so the
figures are emitted as hand-rolled SVG: enough of a chart library for
step curves (performance profiles), line series (memory timelines) and
annotated node-link diagrams (small trees).  Deliberately tiny — axes,
ticks, legend, polyline/step series — but producing standalone files any
browser renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence
from xml.sax.saxutils import escape

__all__ = ["Series", "LineChart", "PALETTE"]

#: colour-blind-safe palette (Okabe–Ito)
PALETTE = (
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#E69F00",
    "#56B4E9",
    "#F0E442",
    "#000000",
)


@dataclass
class Series:
    """One plotted curve."""

    label: str
    xs: Sequence[float]
    ys: Sequence[float]
    #: draw as a right-continuous staircase (performance profiles)
    step: bool = False
    color: str | None = None
    dash: str | None = None  # e.g. "6,3"


def _ticks(lo: float, hi: float, count: int = 5) -> list[float]:
    """Human-friendly tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(count, 1)
    magnitude = 10 ** int(f"{raw:e}".split("e")[1])
    for mult in (1, 2, 2.5, 5, 10):
        if mult * magnitude >= raw:
            step = mult * magnitude
            break
    else:  # pragma: no cover - unreachable given the candidates
        step = raw
    first = lo - (lo % step) if lo % step else lo
    ticks = []
    t = first
    while t <= hi + 1e-9:
        if t >= lo - 1e-9:
            ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


@dataclass
class LineChart:
    """Accumulates series, then renders one SVG document."""

    title: str = ""
    x_label: str = ""
    y_label: str = ""
    width: int = 640
    height: int = 420
    x_range: tuple[float, float] | None = None
    y_range: tuple[float, float] | None = None
    x_percent: bool = False  # format x ticks as percentages
    series: list[Series] = field(default_factory=list)

    _MARGIN = (58, 16, 42, 44)  # left, right, bottom, top

    def add(
        self,
        label: str,
        xs: Sequence[float],
        ys: Sequence[float],
        *,
        step: bool = False,
        color: str | None = None,
        dash: str | None = None,
    ) -> None:
        if len(xs) != len(ys):
            raise ValueError(f"series {label!r}: {len(xs)} xs vs {len(ys)} ys")
        if not xs:
            raise ValueError(f"series {label!r} is empty")
        self.series.append(Series(label, list(xs), list(ys), step, color, dash))

    # ------------------------------------------------------------------
    def _extent(self) -> tuple[float, float, float, float]:
        if not self.series:
            raise ValueError("no series to plot")
        xs = [x for s in self.series for x in s.xs]
        ys = [y for s in self.series for y in s.ys]
        x0, x1 = self.x_range if self.x_range else (min(xs), max(xs))
        y0, y1 = self.y_range if self.y_range else (min(ys), max(ys))
        if x1 <= x0:
            x1 = x0 + 1.0
        if y1 <= y0:
            y1 = y0 + 1.0
        return x0, x1, y0, y1

    def render(self) -> str:
        """The chart as a standalone SVG document string."""
        left, right, bottom, top = self._MARGIN
        x0, x1, y0, y1 = self._extent()
        plot_w = self.width - left - right
        plot_h = self.height - top - bottom

        def sx(x: float) -> float:
            return left + (x - x0) / (x1 - x0) * plot_w

        def sy(y: float) -> float:
            return top + plot_h - (y - y0) / (y1 - y0) * plot_h

        out: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            'font-family="Helvetica,Arial,sans-serif" font-size="12">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
        ]
        if self.title:
            out.append(
                f'<text x="{self.width / 2:.1f}" y="{top - 24}" text-anchor="middle" '
                f'font-size="14" font-weight="bold">{escape(self.title)}</text>'
            )

        # Grid + ticks.
        for tx in _ticks(x0, x1):
            px = sx(tx)
            out.append(
                f'<line x1="{px:.1f}" y1="{top}" x2="{px:.1f}" '
                f'y2="{top + plot_h}" stroke="#dddddd" stroke-width="1"/>'
            )
            label = f"{tx * 100:g}%" if self.x_percent else f"{tx:g}"
            out.append(
                f'<text x="{px:.1f}" y="{top + plot_h + 16}" '
                f'text-anchor="middle">{escape(label)}</text>'
            )
        for ty in _ticks(y0, y1):
            py = sy(ty)
            out.append(
                f'<line x1="{left}" y1="{py:.1f}" x2="{left + plot_w}" '
                f'y2="{py:.1f}" stroke="#dddddd" stroke-width="1"/>'
            )
            out.append(
                f'<text x="{left - 6}" y="{py + 4:.1f}" '
                f'text-anchor="end">{ty:g}</text>'
            )

        # Axes frame.
        out.append(
            f'<rect x="{left}" y="{top}" width="{plot_w}" height="{plot_h}" '
            'fill="none" stroke="#333333" stroke-width="1"/>'
        )
        if self.x_label:
            out.append(
                f'<text x="{left + plot_w / 2:.1f}" y="{self.height - 8}" '
                f'text-anchor="middle">{escape(self.x_label)}</text>'
            )
        if self.y_label:
            cx, cy = 14, top + plot_h / 2
            out.append(
                f'<text x="{cx}" y="{cy:.1f}" text-anchor="middle" '
                f'transform="rotate(-90 {cx} {cy:.1f})">{escape(self.y_label)}</text>'
            )

        # Series.
        for i, s in enumerate(self.series):
            color = s.color or PALETTE[i % len(PALETTE)]
            points: list[tuple[float, float]] = []
            prev_y: float | None = None
            for x, y in zip(s.xs, s.ys):
                if s.step and prev_y is not None:
                    points.append((sx(x), sy(prev_y)))
                points.append((sx(x), sy(y)))
                prev_y = y
            if s.step and prev_y is not None:
                points.append((sx(x1), sy(prev_y)))
            path = " ".join(f"{px:.1f},{py:.1f}" for px, py in points)
            dash = f' stroke-dasharray="{s.dash}"' if s.dash else ""
            out.append(
                f'<polyline points="{path}" fill="none" stroke="{color}" '
                f'stroke-width="2"{dash}/>'
            )

        # Legend (top-left inside the plot).
        lx, ly = left + 10, top + 14
        for i, s in enumerate(self.series):
            color = s.color or PALETTE[i % len(PALETTE)]
            y = ly + i * 17
            out.append(
                f'<line x1="{lx}" y1="{y - 4}" x2="{lx + 22}" y2="{y - 4}" '
                f'stroke="{color}" stroke-width="2"/>'
            )
            out.append(f'<text x="{lx + 28}" y="{y}">{escape(s.label)}</text>')

        out.append("</svg>")
        return "\n".join(out)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.render())
