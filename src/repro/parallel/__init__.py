"""Parallel out-of-core tree scheduling (the paper's future-work direction).

The paper studies the sequential problem because "one cannot hope to
achieve good results for the minimization of I/O volume in a parallel
setting until the sequential problem is well understood" (Section 1).
This subpackage builds that next step: an event-driven simulator for
``p`` processors sharing one memory of size ``M``, with priority-list
scheduling driven by the sequential schedules, FiF-style eviction, and
makespan/I/O accounting.
"""

from .activation import simulate_activation, window_sweep
from .engine import ParallelEvent, ParallelReport, simulate_parallel
from .strategies import (
    critical_path_priority,
    priority_from_schedule,
    priority_from_strategy,
)

__all__ = [
    "simulate_parallel",
    "simulate_activation",
    "window_sweep",
    "ParallelReport",
    "ParallelEvent",
    "critical_path_priority",
    "priority_from_schedule",
    "priority_from_strategy",
]
