"""Activation-window parallel scheduling (memory-booked parallelism).

The paper's companion work on *in-core* parallel tree scheduling
(Eyraud-Dubois, Marchal, Sinnen, Vivien, TOPC 2015) controls memory by
only *activating* tasks in the order of a memory-efficient sequential
traversal: processors may run any ready task among the first ``window``
not-yet-started tasks of that order.  This module transplants the idea
to the out-of-core model:

* ``window = 1`` serialises execution into exactly the sequential
  traversal — same I/O volume as the FiF simulator (tested reduction);
* ``window = n`` degenerates to plain priority-list scheduling, the
  memory-oblivious extreme (also a tested reduction);
* in between, the window caps how far execution can run ahead of the
  sequential order, trading makespan for I/O.

The sweep over ``window`` is the paper's "future work: parallel
out-of-core" question made measurable; ``bench_extensions.py`` plots it.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.tree import TaskTree
from .engine import ParallelReport, simulate_parallel
from .strategies import priority_from_schedule

__all__ = ["simulate_activation", "window_sweep"]


def simulate_activation(
    tree: TaskTree,
    memory: int,
    processors: int,
    order: Sequence[int],
    *,
    window: int,
    durations: Mapping[int, float] | Sequence[float] | None = None,
    bandwidth: float = 0.0,
) -> ParallelReport:
    """Priority-list execution gated by an activation window over ``order``.

    Parameters
    ----------
    order:
        a sequential schedule (topological); both the priorities and the
        activation sequence derive from it.
    window:
        a ready task may start only if it is among the first ``window``
        not-yet-started tasks of ``order``.  Must be >= 1.
    """
    n = tree.n
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if sorted(order) != list(range(n)):
        raise ValueError("order is not a permutation of the nodes")

    position = {v: i for i, v in enumerate(order)}
    started = [False] * n
    # `cursor` scans `order`; unstarted_positions keeps the window frontier.
    frontier: list[int] = []  # positions (in order) of unstarted tasks, sorted
    cursor = 0

    def refill() -> None:
        nonlocal cursor
        while len(frontier) < window and cursor < n:
            if not started[order[cursor]]:
                frontier.append(cursor)
            cursor += 1

    refill()

    def gate(v: int) -> bool:
        return position[v] in frontier[:window]

    def on_start(v: int) -> None:
        started[v] = True
        pos = position[v]
        if pos in frontier:
            frontier.remove(pos)
        refill()

    return simulate_parallel(
        tree,
        memory,
        processors,
        priority_from_schedule(order),
        durations=durations,
        bandwidth=bandwidth,
        gate=gate,
        on_start=on_start,
    )


def window_sweep(
    tree: TaskTree,
    memory: int,
    processors: int,
    order: Sequence[int],
    windows: Sequence[int],
    *,
    durations: Mapping[int, float] | Sequence[float] | None = None,
    bandwidth: float = 0.0,
) -> dict[int, ParallelReport]:
    """Run :func:`simulate_activation` across several window sizes."""
    return {
        w: simulate_activation(
            tree,
            memory,
            processors,
            order,
            window=w,
            durations=durations,
            bandwidth=bandwidth,
        )
        for w in windows
    }
