"""Priority builders for the parallel engine.

The parallel simulator is priority-list driven; these helpers derive the
priorities from the sequential world, which is exactly how practical
solvers bolt parallelism onto a good sequential traversal.
"""

from __future__ import annotations

from typing import Sequence

from ..core.tree import TaskTree
from ..experiments.registry import get_algorithm

__all__ = [
    "priority_from_schedule",
    "priority_from_strategy",
    "critical_path_priority",
]


def priority_from_schedule(schedule: Sequence[int]) -> list[int]:
    """Rank tasks by their position in a sequential schedule."""
    rank = [0] * len(schedule)
    for t, v in enumerate(schedule):
        rank[v] = t
    return rank


def priority_from_strategy(tree: TaskTree, memory: int, name: str) -> list[int]:
    """Ranks from a registered sequential strategy (e.g. ``"RecExpand"``)."""
    traversal = get_algorithm(name)(tree, memory)
    return priority_from_schedule(traversal.schedule)


def critical_path_priority(
    tree: TaskTree, durations: Sequence[float] | None = None
) -> list[int]:
    """Classic HLF ranks: longer remaining path to the root goes first.

    Returned as ranks (lower = earlier), consistent with the other
    builders.  A makespan-oriented baseline that ignores memory — useful
    to show why memory-aware priorities matter out of core.
    """
    if durations is None:
        durations = [float(w) for w in tree.wbar]
    level = [0.0] * tree.n
    for v in tree.topological_order():  # root first: parents before children
        p = tree.parents[v]
        level[v] = durations[v] + (level[p] if p != -1 else 0.0)
    order = sorted(range(tree.n), key=lambda v: -level[v])
    rank = [0] * tree.n
    for i, v in enumerate(order):
        rank[v] = i
    return rank
