"""Event-driven simulator for parallel out-of-core tree execution.

Model
-----
* ``p`` identical processors share one memory of size ``M`` and one
  unbounded disk; task ``i`` runs for ``durations[i]`` seconds on one
  processor (tree parallelism only, as in the paper's terminology).
* While task ``i`` runs it holds its execution footprint ``wbar_i``;
  the outputs of completed tasks stay resident (partially evictable)
  until their parent *starts*, exactly as in the sequential model.
* Scheduling is priority-list: whenever a processor is free, the ready
  task with the best (lowest) priority rank that can be *made* to fit —
  by evicting resident outputs in furthest-consumer-first order — is
  started.  Evicted data is read back right before the consumer starts,
  and reads/writes extend the affected tasks (blocking-disk model, no
  contention between processors).

Reductions tested in the suite: with ``p = 1`` and the priority taken
from a sequential schedule ``sigma``, the simulator executes exactly
``sigma`` and performs exactly the FiF I/O volume of ``sigma`` — the
parallel engine is a strict generalisation of the sequential model.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..core.tree import TaskTree

__all__ = ["ParallelEvent", "ParallelReport", "simulate_parallel"]


@dataclass(frozen=True)
class ParallelEvent:
    """One task execution: processor, time window, I/O it waited on."""

    node: int
    processor: int
    start: float
    end: float
    read_volume: int


@dataclass(frozen=True)
class ParallelReport:
    """Outcome of a parallel simulation."""

    makespan: float
    io_volume: int
    peak_memory: int
    events: tuple[ParallelEvent, ...]
    busy_time: tuple[float, ...]  # per processor

    @property
    def order(self) -> list[int]:
        """Tasks by start time (ties by priority handling order)."""
        return [e.node for e in self.events]

    def utilisation(self) -> float:
        if self.makespan == 0:
            return 1.0
        return sum(self.busy_time) / (len(self.busy_time) * self.makespan)


def simulate_parallel(
    tree: TaskTree,
    memory: int,
    processors: int,
    priority: Sequence[int],
    *,
    durations: Mapping[int, float] | Sequence[float] | None = None,
    bandwidth: float = 0.0,
    gate: Callable[[int], bool] | None = None,
    on_start: Callable[[int], None] | None = None,
) -> ParallelReport:
    """Run the priority-list parallel execution.

    Parameters
    ----------
    priority:
        rank per node; lower rank starts earlier among ready tasks.  Use
        :func:`repro.parallel.strategies.priority_from_schedule` to derive
        it from any sequential schedule.
    durations:
        seconds per task (default: ``wbar_i`` — unit-speed processing of
        the footprint).
    bandwidth:
        disk units/second; ``0`` means transfers are instantaneous (pure
        volume accounting).  When positive, reading evicted inputs back
        is charged to the consuming task (blocking reads); writes are
        treated as asynchronous and only counted in the volume.
    gate:
        optional admission predicate: a ready task may only start while
        ``gate(node)`` is true.  This is the hook behind the activation
        window of :mod:`repro.parallel.activation`; the caller must
        guarantee progress (some ready task eventually admissible).
    on_start:
        optional callback invoked with the node id at the instant a task
        starts (lets gates track the set of started tasks).

    Raises
    ------
    ValueError
        for invalid processor counts or memory below the feasibility
        bound ``max wbar``.
    """
    n = tree.n
    if processors < 1:
        raise ValueError(f"need at least one processor, got {processors}")
    if len(priority) != n:
        raise ValueError("priority is not index-aligned with the tree")
    if memory < tree.min_feasible_memory():
        raise ValueError(
            f"M={memory} below the minimal feasible memory "
            f"{tree.min_feasible_memory()}"
        )
    if durations is None:
        durations = {v: float(tree.wbar[v]) for v in range(n)}

    weights = tree.weights
    children = tree.children
    parents = tree.parents

    # --- state ---------------------------------------------------------
    remaining_children = [len(children[v]) for v in range(n)]
    ready: list[tuple[int, int]] = []  # (rank, node)
    for v in range(n):
        if remaining_children[v] == 0:
            heapq.heappush(ready, (priority[v], v))

    resident: dict[int, int] = {}  # completed output -> resident share
    written: dict[int, int] = {}  # completed output -> evicted share
    running: dict[int, tuple[float, int]] = {}  # node -> (end time, proc)
    free_procs = list(range(processors - 1, -1, -1))
    reserved = 0  # sum of wbar of running tasks
    resident_total = 0
    io_total = 0
    peak = 0
    now = 0.0
    busy = [0.0] * processors
    events: list[ParallelEvent] = []
    completions: list[tuple[float, int, int]] = []  # (end, node, proc)

    def try_start() -> bool:
        """Start the best ready task that fits (evicting if needed)."""
        nonlocal reserved, resident_total, io_total, peak, now
        if not free_procs or not ready:
            return False
        # Candidates in rank order; start the first that can fit.
        deferred: list[tuple[int, int]] = []
        started = False
        while ready:
            rank, v = heapq.heappop(ready)
            if gate is not None and not gate(v):
                deferred.append((rank, v))
                continue
            inputs = sum(weights[c] for c in children[v])
            wbar_v = max(weights[v], inputs)
            # Inputs of v leave the resident pool (accounted in wbar now).
            freed = sum(resident.get(c, 0) for c in children[v])
            need = wbar_v + reserved + (resident_total - freed)
            evictable = [
                (k, share)
                for k, share in resident.items()
                if share > 0 and parents[k] != -1 and k not in children[v]
            ]
            max_evict = sum(share for _, share in evictable)
            if need - max_evict > memory:
                deferred.append((rank, v))
                continue
            # Evict furthest-consumer-first until it fits.
            overflow = need - memory
            if overflow > 0:
                evictable.sort(key=lambda kv: -priority[parents[kv[0]]])
                for k, share in evictable:
                    if overflow <= 0:
                        break
                    take = min(share, overflow)
                    resident[k] -= take
                    written[k] = written.get(k, 0) + take
                    resident_total -= take
                    io_total += take
                    overflow -= take
            # Consume the inputs, reserve the footprint, start the task.
            read_volume = sum(written.pop(c, 0) for c in children[v])
            for c in children[v]:
                resident_total -= resident.pop(c, 0)
            reserved += wbar_v
            peak_now = reserved + resident_total
            nonlocal_peak(peak_now)
            proc = free_procs.pop()
            io_time = (read_volume / bandwidth) if bandwidth > 0 else 0.0
            duration = io_time + float(durations[v])
            end = now + duration
            running[v] = (end, proc)
            busy[proc] += duration
            heapq.heappush(completions, (end, v, proc))
            events.append(
                ParallelEvent(
                    node=v, processor=proc, start=now, end=end, read_volume=read_volume
                )
            )
            if on_start is not None:
                on_start(v)
            started = True
            break
        for item in deferred:
            heapq.heappush(ready, item)
        return started

    def nonlocal_peak(value: int) -> None:
        nonlocal peak
        if value > peak:
            peak = value

    done = 0
    while done < n:
        # Start as many tasks as possible at the current time.
        while try_start():
            pass
        if not completions:
            raise AssertionError(
                "deadlock: no running task and nothing startable "
                "(cannot happen when M >= max wbar)"
            )
        # Advance to the next completion.
        now, v, proc = heapq.heappop(completions)
        del running[v]
        free_procs.append(proc)
        wbar_v = max(weights[v], sum(weights[c] for c in children[v]))
        reserved -= wbar_v
        if parents[v] != -1:
            resident[v] = weights[v]
            resident_total += weights[v]
            remaining_children[parents[v]] -= 1
            if remaining_children[parents[v]] == 0:
                heapq.heappush(ready, (priority[parents[v]], parents[v]))
        done += 1
        nonlocal_peak(reserved + resident_total)

    # Stable sort: simultaneous starts keep the order try_start issued
    # them in (the documented "ties by priority handling order").
    events.sort(key=lambda e: e.start)
    return ParallelReport(
        makespan=now,
        io_volume=io_total,
        peak_memory=peak,
        events=tuple(events),
        busy_time=tuple(busy),
    )
