"""Command-line interface: inspect trees, run strategies, regenerate figures.

Examples
--------
::

    repro-ioschedule demo
    repro-ioschedule info --tree tree.json
    repro-ioschedule solve --tree tree.json --memory 64 --algorithm RecExpand
    repro-ioschedule figure --id fig4 --scale tiny --svg fig4.svg
    repro-ioschedule instance --name figure_2b --algorithm OptMinMem
    repro-ioschedule paging --tree tree.json --memory 64 --page-size 4
    repro-ioschedule exact --tree tree.json --memory 64
    repro-ioschedule parallel --tree tree.json --memory 64 --processors 4
    repro-ioschedule draw --tree tree.json --out tree.svg
    repro-ioschedule report --scale tiny --outdir results
    repro-ioschedule report --scale small --jobs 4 --cache-dir results/cache
    repro-ioschedule serve --port 8177 --workers 4
    repro-ioschedule submit --tree tree.json --memory 64 --algorithm RecExpand

Exit codes: 0 on success, 2 on bad arguments or invalid input (including
requests the service rejects as malformed), 1 on transport or internal
failures when talking to a server.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Mapping, Sequence

from . import __version__
from .analysis.bounds import memory_bounds
from .analysis.profiles import render_ascii, to_csv
from .api.errors import EXIT_BAD_INPUT, ApiError
from .core.engine import ENGINES, set_default_engine
from .core.traversal import validate
from .core.tree import TaskTree, TreeError
from .datasets import instances as paper_instances
from .experiments.figures import FIGURES
from .experiments.registry import ALGORITHMS, get_algorithm, strategy_names

__all__ = ["main"]


def _load_tree(path: str) -> TaskTree:
    with open(path) as fh:
        return TaskTree.from_dict(json.load(fh))


def _cmd_info(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    bounds = memory_bounds(tree)
    print(f"nodes           : {tree.n}")
    print(f"depth           : {tree.depth()}")
    print(f"leaves          : {len(tree.leaves())}")
    print(f"total weight    : {tree.total_weight()}")
    print(f"LB (max wbar)   : {bounds.lb}")
    print(f"Peak_incore     : {bounds.peak_incore}")
    print(f"I/O regime      : {'[%d, %d]' % (bounds.m1, bounds.m2) if bounds.has_io_regime else 'none'}")
    return 0


def _print_solve(
    algorithm: str,
    memory: int,
    io_volume: int,
    performance: float,
    schedule: Sequence[int],
    io: Mapping[int, int],
    *,
    show_schedule: bool,
) -> None:
    """Shared by ``solve`` (offline) and ``submit`` (served) so the two
    render byte-identical output for the same request."""
    print(f"algorithm   : {algorithm}")
    print(f"memory      : {memory}")
    print(f"io volume   : {io_volume}")
    print(f"performance : {performance:.4f}")
    if show_schedule:
        print("schedule    :", " ".join(map(str, schedule)))
        nonzero = {v: a for v, a in io.items() if a}
        print("io function :", nonzero if nonzero else "(no I/O)")


def _cmd_solve(args: argparse.Namespace) -> int:
    from .api import LocalBackend, SolveRequest

    # One typed request, executed through the LocalBackend view of the
    # API.  Built directly rather than via parse_request: _load_tree
    # already ran the full structural validation and argparse pinned
    # algorithm/engine to known choices, and the wire-schema caps
    # (MAX_NODES, the 10^15 memory ceiling) protect the *service* — the
    # offline path must keep taking million-node trees and the
    # beyond-int64 memory bounds the object engine supports.  An
    # infeasible memory still fails as "unsolvable" (exit 2) like every
    # other backend.
    tree = _load_tree(args.tree)
    request = SolveRequest(
        parents=tree.parents,
        weights=tree.weights,
        memory=args.memory,
        algorithm=args.algorithm,
        engine=args.engine,
    )
    outcome = LocalBackend().submit(request).raise_for_error()
    result = outcome.result
    _print_solve(
        result["algorithm"],
        result["memory"],
        result["io_volume"],
        result["performance"],
        result["schedule"],
        {int(v): a for v, a in result["io"].items()},
        show_schedule=args.show_schedule,
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    builder = FIGURES[args.id]
    result = builder(args.scale)
    print(result.summary())
    print()
    print(render_ascii(result.profile, max_threshold=args.max_overhead))
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(to_csv(result.profile))
        print(f"\ncurves written to {args.csv}")
    if args.svg:
        from .viz import profile_chart

        with open(args.svg, "w") as fh:
            fh.write(
                profile_chart(
                    result.profile,
                    title=result.name,
                    max_threshold=args.max_overhead,
                )
            )
        print(f"figure written to {args.svg}")
    return 0


def _cmd_paging(args: argparse.Namespace) -> int:
    from .io import HDD, estimate_time, paged_io

    tree = _load_tree(args.tree)
    schedule = get_algorithm(args.algorithm)(tree, args.memory).schedule
    print(
        f"schedule from {args.algorithm}; memory {args.memory}, "
        f"page size {args.page_size}"
    )
    print(f"{'policy':<10} {'writes':>8} {'reads':>8} {'units':>8} {'est. time':>10}")
    for policy in args.policy or ("belady", "lru", "random", "pessimal"):
        res = paged_io(
            tree,
            schedule,
            args.memory,
            page_size=args.page_size,
            policy=policy,
            seed=args.seed,
            trace=True,
        )
        t = estimate_time(res.events, HDD)
        print(
            f"{policy:<10} {res.write_pages:>8} {res.read_pages:>8} "
            f"{res.write_units:>8} {t.seconds:>9.3f}s"
        )
    return 0


def _cmd_exact(args: argparse.Namespace) -> int:
    from .algorithms.exact import exact_min_io
    from .experiments.registry import PAPER_ALGORITHMS

    tree = _load_tree(args.tree)
    result = exact_min_io(
        tree, args.memory, max_states=args.max_states, node_limit=args.node_limit
    )
    print(f"exact optimum : {result.certificate()}")
    for name in PAPER_ALGORITHMS:
        io = get_algorithm(name)(tree, args.memory).io_volume
        gap = (args.memory + io) / (args.memory + result.io_volume) - 1.0
        print(f"  {name:<16} io = {io:6d}   gap = {gap:7.2%}")
    return 0


def _cmd_parallel(args: argparse.Namespace) -> int:
    from .parallel import simulate_activation, simulate_parallel
    from .parallel.strategies import priority_from_schedule

    tree = _load_tree(args.tree)
    order = get_algorithm(args.algorithm)(tree, args.memory).schedule
    if args.window:
        report = simulate_activation(
            tree, args.memory, args.processors, order,
            window=args.window, bandwidth=args.bandwidth,
        )
    else:
        report = simulate_parallel(
            tree, args.memory, args.processors,
            priority_from_schedule(order), bandwidth=args.bandwidth,
        )
    print(f"processors  : {args.processors}"
          + (f"   window : {args.window}" if args.window else ""))
    print(f"makespan    : {report.makespan:.2f}")
    print(f"io volume   : {report.io_volume}")
    print(f"peak memory : {report.peak_memory}")
    print(f"utilisation : {report.utilisation():.1%}")
    if args.gantt:
        from .viz import gantt_chart

        with open(args.gantt, "w") as fh:
            fh.write(gantt_chart(report, title=f"p={args.processors}, M={args.memory}"))
        print(f"gantt chart : {args.gantt}")
    return 0


def _cmd_draw(args: argparse.Namespace) -> int:
    from .viz import tree_chart

    tree = _load_tree(args.tree)
    schedule = None
    io = None
    if args.algorithm and args.memory is not None:
        traversal = get_algorithm(args.algorithm)(tree, args.memory)
        schedule = traversal.schedule
        io = {v: a for v, a in enumerate(traversal.io) if a}
    svg = tree_chart(tree, schedule=schedule, io=io, title=args.title or "")
    with open(args.out, "w") as fh:
        fh.write(svg)
    print(f"tree diagram written to {args.out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    from .datasets.store import ResultCache
    from .experiments.batch import run_batch_report
    from .experiments.runner import report_to_text

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    cache = None
    if not args.no_cache:
        cache_dir = pathlib.Path(args.cache_dir) if args.cache_dir else outdir / "cache"
        if cache_dir.exists() and not cache_dir.is_dir():
            print(f"error: --cache-dir {cache_dir} exists and is not a directory",
                  file=sys.stderr)
            return 2
        cache = ResultCache(cache_dir)
    report = run_batch_report(
        args.scale,
        jobs=args.jobs,
        cache=cache,
        engine=args.engine,
        forest=args.forest,
        progress=print,
    )
    json_path = outdir / f"experiments_{args.scale}.json"
    json_path.write_text(report.to_json())
    print(report_to_text(report))
    if cache is not None:
        stats = cache.stats()
        print(
            f"\ncache: {stats['hits']} hits, {stats['misses']} misses "
            f"({cache.root})"
        )
    print(f"report written to {json_path}")
    return 0


def _cmd_instance(args: argparse.Namespace) -> int:
    builder = getattr(paper_instances, args.name)
    if args.name == "figure_2a":
        inst = builder(extensions=args.k)
    elif args.name == "figure_2c":
        inst = builder(args.k)
    else:
        inst = builder()
    print(f"instance : {inst.name}   (n={inst.tree.n}, M={inst.memory})")
    for name in args.algorithm or sorted(ALGORITHMS):
        traversal = get_algorithm(name)(inst.tree, inst.memory)
        validate(inst.tree, traversal, inst.memory)
        print(f"  {name:<16} io = {traversal.io_volume}")
    if inst.witness_io is not None:
        print(f"  {'paper witness':<16} io = {inst.witness_io}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.server import ServerConfig, ServiceServer

    # Server-side default for requests that do not pin an engine.  The
    # env var covers spawn-started workers (they re-import and read it);
    # the in-process default covers inline threads and fork-started
    # workers, which copy module state.  "auto" (the flag default) means
    # "no preference" and must not clobber a user-set REPRO_ENGINE.
    if args.engine != "auto":
        import os

        os.environ["REPRO_ENGINE"] = args.engine
        set_default_engine(args.engine)
    cache_dir = None if args.no_cache else (args.cache_dir or "results/service-cache")
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        request_timeout=args.timeout,
        cache_dir=cache_dir,
        shm_transport=args.forest,
        keepalive_timeout=args.keepalive_timeout,
        max_pipeline=args.max_pipeline,
        dashboard=args.dashboard,
    )
    server = ServiceServer(config)
    server.pool.warm_up()
    print(
        f"serving on http://{config.host}:{config.port} "
        f"(workers={config.workers or f'inline:{config.inline_threads}'}, "
        f"queue={config.queue_limit}, window={config.batch_window_ms}ms, "
        f"cache={cache_dir or 'off'})",
        flush=True,
    )
    if config.dashboard:
        print(
            f"dashboard on http://{config.host}:{config.port}/dash", flush=True
        )
    try:
        server.run()
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def _build_submit_request(args: argparse.Namespace) -> dict[str, Any]:
    with open(args.tree) as fh:
        tree = json.load(fh)
    request: dict[str, Any] = {
        "kind": args.kind,
        "tree": {"parents": tree["parents"], "weights": tree["weights"]},
        "memory": args.memory,
    }
    if args.timeout:
        request["timeout"] = args.timeout
    if args.engine != "auto":
        request["engine"] = args.engine
    if args.kind in ("solve", "paging"):
        request["algorithm"] = args.algorithm
    if args.kind == "paging":
        request["page_size"] = args.page_size
        request["seed"] = args.seed
        if args.policy:
            request["policies"] = list(args.policy)
    if args.kind == "exact":
        request["max_states"] = args.max_states
        request["node_limit"] = args.node_limit
    if getattr(args, "trace_schedule", False):
        from .obs import new_trace_id

        # the full observability round trip: a trace id for the stage
        # breakdown plus the schedule-trace flag for the memory curve
        request["trace_schedule"] = True
        request["trace"] = new_trace_id()
    return request


def _cmd_submit(args: argparse.Namespace) -> int:
    from .api import RemoteBackend, parse_request

    if args.probe:
        from .service.client import ServiceClient

        info = ServiceClient(args.host, args.port).health()
        versions = info.get("versions", {})
        print(f"server ok (protocol v{info.get('protocol', '?')})")
        for name in ("repro", "protocol", "wire", "engine"):
            if name in versions:
                print(f"  {name:<9} {versions[name]}")
        return 0
    if args.tree is None or args.memory is None:
        print(
            "error: --tree and --memory are required (unless --probe)",
            file=sys.stderr,
        )
        return EXIT_BAD_INPUT
    if args.trace_schedule and args.kind != "solve":
        print("error: --trace-schedule applies to solve requests only",
              file=sys.stderr)
        return EXIT_BAD_INPUT

    # The same typed request the offline commands build; validation
    # failures are caught here, before any bytes hit the network, with
    # the same codes the server would answer.
    request = parse_request(_build_submit_request(args))
    backend = RemoteBackend(args.host, args.port, wire=args.wire)
    outcome = backend.submit(request).raise_for_error()
    if args.json:
        print(json.dumps(outcome.to_envelope(), indent=2, sort_keys=True))
        return 0
    result = outcome.result
    if args.kind == "solve":
        _print_solve(
            result["algorithm"],
            result["memory"],
            result["io_volume"],
            result["performance"],
            result["schedule"],
            {int(v): a for v, a in result["io"].items()},
            show_schedule=args.show_schedule,
        )
        if "schedule_trace" in result:
            trace = result["schedule_trace"]
            print(
                f"schedule trace: {len(trace['memory'])} events, "
                f"peak memory {trace['peak_memory']}, "
                f"cumulative io {trace['io_volume']}"
            )
        if outcome.timings:
            stages = "  ".join(
                f"{name}={seconds * 1000.0:.2f}ms"
                for name, seconds in sorted(outcome.timings.items())
            )
            print(f"stage timings : {stages}")
    elif args.kind == "paging":
        print(
            f"schedule from {result['algorithm']}; memory {result['memory']}, "
            f"page size {result['page_size']}"
        )
        print(f"{'policy':<10} {'writes':>8} {'reads':>8} {'units':>8} {'est. time':>10}")
        for row in result["policies"]:
            print(
                f"{row['policy']:<10} {row['write_pages']:>8} {row['read_pages']:>8} "
                f"{row['write_units']:>8} {row['est_seconds']:>9.3f}s"
            )
    else:  # exact
        print(f"exact optimum : {result['certificate']}")
        for name, row in result["gaps"].items():
            print(f"  {name:<16} io = {row['io_volume']:6d}   gap = {row['gap']:7.2%}")
    if outcome.cached:
        print("(served from result cache)", file=sys.stderr)
    return 0


def _print_dash_once(client) -> None:
    metrics = client.metrics()
    req = metrics["requests"]
    cache = metrics["cache"]
    latency = metrics["latency_ms"]
    looked = cache["hits"] + cache["misses"]
    hit_rate = f"{100.0 * cache['hits'] / looked:.1f}%" if looked else "n/a"
    by_encoding = req.get("by_encoding", {})
    print(
        f"up {metrics['uptime_seconds']:.0f}s   "
        f"queue {metrics['queue_depth']}   inflight {metrics['inflight']}"
    )
    print(
        f"requests  {req['received']} received "
        f"({by_encoding.get('json', 0)} json / "
        f"{by_encoding.get('binary', 0)} binary), "
        f"{req['completed']} completed, {req['computed']} computed, "
        f"{req['deduped_inflight']} deduped"
    )
    print(
        f"errors    {req['errors']} errors, {req['rejected']} rejected, "
        f"{req['timeouts']} timeouts"
    )
    print(
        f"cache     {hit_rate} hit rate "
        f"({cache['hits']} hits / {cache['misses']} misses, "
        f"{cache.get('memo_hits', 0)} memo)"
    )
    print(
        f"latency   p50 {latency['p50']:.2f}ms  p90 {latency['p90']:.2f}ms  "
        f"p99 {latency['p99']:.2f}ms  max {latency['max']:.2f}ms  "
        f"({latency['count']} in window)"
    )
    by_strategy = req.get("by_strategy", {})
    if by_strategy:
        print("by strategy:")
        for name, count in sorted(by_strategy.items()):
            print(f"  {name:<20} {count}")


def _cmd_dash(args: argparse.Namespace) -> int:
    import time as _time

    from .service.client import ServiceClient

    client = ServiceClient(args.host, args.port)
    if args.watch <= 0:
        _print_dash_once(client)
        return 0
    try:
        while True:
            print(f"--- {args.host}:{args.port} ---")
            _print_dash_once(client)
            _time.sleep(args.watch)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.lint.cli import run_from_args

    return run_from_args(args)


def _cmd_demo(args: argparse.Namespace) -> int:
    from .datasets.synth import synth_instance

    # Find a small instance that actually has an I/O regime.
    for seed in range(7, 100):
        tree = synth_instance(60, seed=seed)
        bounds = memory_bounds(tree)
        if bounds.has_io_regime:
            break
    memory = bounds.mid
    print(f"demo tree: n={tree.n}, LB={bounds.lb}, Peak={bounds.peak_incore}, M={memory}")
    for name in ("PostOrderMinIO", "OptMinMem", "RecExpand", "FullRecExpand"):
        traversal = get_algorithm(name)(tree, memory)
        validate(tree, traversal, memory)
        print(f"  {name:<16} io = {traversal.io_volume:6d}   perf = {traversal.performance(memory):.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ioschedule",
        description="Out-of-core task-tree scheduling (Marchal et al., 2017 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    # Resolved at parser-build time (not import time) so strategies
    # registered after import are accepted everywhere the CLI takes
    # an --algorithm, matching the service's lazy protocol validation.
    _ALL_STRATEGIES = strategy_names()

    p = sub.add_parser("info", help="print model quantities of a tree JSON file")
    p.add_argument("--tree", required=True)
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("solve", help="schedule a tree with one strategy")
    p.add_argument("--tree", required=True)
    p.add_argument("--memory", type=int, required=True)
    p.add_argument("--algorithm", default="RecExpand", choices=_ALL_STRATEGIES)
    p.add_argument("--show-schedule", action="store_true")
    p.add_argument(
        "--engine", default="auto", choices=ENGINES,
        help="kernel engine: flat-array kernels or per-node objects "
             "(auto picks by tree size; results are identical)",
    )
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("figure", help="regenerate an evaluation figure")
    p.add_argument("--id", required=True, choices=sorted(FIGURES))
    p.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    p.add_argument("--csv", help="also write the curves as CSV")
    p.add_argument("--svg", help="also render the profile as SVG")
    p.add_argument("--max-overhead", type=float, default=None)
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser("paging", help="page-level policy comparison on a tree")
    p.add_argument("--tree", required=True)
    p.add_argument("--memory", type=int, required=True)
    p.add_argument("--algorithm", default="RecExpand", choices=_ALL_STRATEGIES)
    p.add_argument("--page-size", type=int, default=1)
    p.add_argument("--policy", action="append", help="repeatable; default: the standard four")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_paging)

    p = sub.add_parser("exact", help="exact optimum + heuristic gaps (small trees)")
    p.add_argument("--tree", required=True)
    p.add_argument("--memory", type=int, required=True)
    p.add_argument("--max-states", type=int, default=2_000_000)
    p.add_argument("--node-limit", type=int, default=24)
    p.set_defaults(func=_cmd_exact)

    p = sub.add_parser("parallel", help="parallel out-of-core simulation")
    p.add_argument("--tree", required=True)
    p.add_argument("--memory", type=int, required=True)
    p.add_argument("--processors", type=int, default=2)
    p.add_argument("--algorithm", default="RecExpand", choices=_ALL_STRATEGIES)
    p.add_argument("--window", type=int, default=0, help="activation window (0 = ungated)")
    p.add_argument("--bandwidth", type=float, default=0.0)
    p.add_argument("--gantt", help="write the execution timeline as SVG")
    p.set_defaults(func=_cmd_parallel)

    p = sub.add_parser("draw", help="render a tree as an SVG diagram")
    p.add_argument("--tree", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--algorithm", choices=_ALL_STRATEGIES)
    p.add_argument("--memory", type=int)
    p.add_argument("--title")
    p.set_defaults(func=_cmd_draw)

    p = sub.add_parser("report", help="run the full evaluation and save the report")
    p.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    p.add_argument("--outdir", default="results")
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the batch engine (default: 1, in-process)",
    )
    p.add_argument(
        "--cache-dir",
        help="result-cache directory (default: <outdir>/cache)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache entirely",
    )
    p.add_argument(
        "--engine", default="auto", choices=ENGINES,
        help="kernel engine for the figure shards (results are identical)",
    )
    p.add_argument(
        "--forest", dest="forest", action="store_true", default=True,
        help="solve shards through the forest batch kernels (default)",
    )
    p.add_argument(
        "--no-forest", dest="forest", action="store_false",
        help="dispatch the per-tree engine for every instance instead",
    )
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("instance", help="run strategies on a paper instance")
    p.add_argument(
        "--name",
        required=True,
        choices=("figure_2a", "figure_2b", "figure_2c", "figure_6", "figure_7"),
    )
    p.add_argument("--k", type=int, default=4, help="parameter for the scaled families")
    p.add_argument("--algorithm", action="append")
    p.set_defaults(func=_cmd_instance)

    p = sub.add_parser(
        "serve", help="run the scheduling service (JSON + binary frames over HTTP)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8177, help="0 picks an ephemeral port")
    p.add_argument(
        "--workers", type=int, default=2,
        help="worker processes (0 = in-process threads; default: 2)",
    )
    p.add_argument(
        "--queue-limit", type=int, default=64,
        help="admission-queue capacity before 429 rejections (default: 64)",
    )
    p.add_argument(
        "--batch-window-ms", type=float, default=5.0,
        help="micro-batching window in milliseconds (default: 5)",
    )
    p.add_argument(
        "--max-batch", type=int, default=16,
        help="maximum requests per micro-batch (default: 16)",
    )
    p.add_argument(
        "--timeout", type=float, default=60.0,
        help="default per-request deadline in seconds (default: 60)",
    )
    p.add_argument(
        "--cache-dir",
        help="result-cache directory (default: results/service-cache)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache (in-flight dedup stays on)",
    )
    p.add_argument(
        "--engine", default="auto", choices=ENGINES,
        help="default kernel engine for requests that do not pin one",
    )
    p.add_argument(
        "--forest", dest="forest", action="store_true", default=True,
        help="ship micro-batches to workers as shared-memory forest "
             "buffers (default; ignored in inline mode)",
    )
    p.add_argument(
        "--no-forest", dest="forest", action="store_false",
        help="pickle micro-batch payloads to workers instead",
    )
    p.add_argument(
        "--keepalive-timeout", type=float, default=75.0,
        help="seconds an idle keep-alive connection stays open "
             "(<= 0 closes after every response; default: 75)",
    )
    p.add_argument(
        "--max-pipeline", type=int, default=32,
        help="pipelined requests in flight per connection (default: 32)",
    )
    p.add_argument(
        "--dashboard", action="store_true",
        help="serve the live ops dashboard at /dash",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("submit", help="submit one request to a running service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8177)
    p.add_argument("--kind", default="solve", choices=("solve", "paging", "exact"))
    p.add_argument("--tree", help="tree JSON file (required unless --probe)")
    p.add_argument("--memory", type=int, help="memory bound (required unless --probe)")
    p.add_argument("--algorithm", default="RecExpand", choices=_ALL_STRATEGIES)
    p.add_argument("--show-schedule", action="store_true")
    p.add_argument("--page-size", type=int, default=1)
    p.add_argument("--policy", action="append", help="paging only; repeatable")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-states", type=int, default=2_000_000)
    p.add_argument("--node-limit", type=int, default=24)
    p.add_argument(
        "--timeout", type=float, default=0.0,
        help="per-request deadline in seconds (0 = server default)",
    )
    p.add_argument(
        "--engine", default="auto", choices=ENGINES,
        help="kernel engine the server should use for this request",
    )
    p.add_argument("--json", action="store_true", help="print the raw JSON envelope")
    p.add_argument(
        "--wire", default="auto", choices=("auto", "binary", "json"),
        help="submit encoding: binary frames with JSON fallback (auto, "
             "the default), frames only, or JSON only",
    )
    p.add_argument(
        "--probe", action="store_true",
        help="just check the server: print its version info and exit",
    )
    p.add_argument(
        "--trace-schedule", action="store_true",
        help="solve only: return the schedule trace (memory curve + "
             "cumulative I/O) and the per-stage timing breakdown",
    )
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "dash", help="one-shot terminal view of a running server's metrics"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8177)
    p.add_argument(
        "--watch", type=float, default=0.0,
        help="refresh every N seconds instead of printing once",
    )
    p.set_defaults(func=_cmd_dash)

    p = sub.add_parser(
        "lint",
        help="AST invariant checker: the repo's hand-audited rules as a "
             "gated lint pass (0 clean, 1 findings, 2 bad usage)",
    )
    from .analysis.lint.cli import add_lint_arguments

    add_lint_arguments(p)
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("demo", help="quick end-to-end demonstration")
    p.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Parse and dispatch; exit codes are part of the CLI contract.

    0 success · 2 bad arguments or invalid input (file missing, bad tree
    JSON, schema violation — whether caught locally or rejected by a
    server) · 1 transport/overload/internal failure talking to a server.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except TreeError as exc:
        print(f"error: invalid tree: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    except ApiError as exc:
        # one taxonomy for every backend: the exception knows its exit
        # code (client fault → 2, transport/overload/internal → 1)
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT


if __name__ == "__main__":
    sys.exit(main())
