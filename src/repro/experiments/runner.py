"""End-to-end experiment runner producing a machine-readable report.

This is the programmatic backbone behind ``EXPERIMENTS.md`` and the
``repro-ioschedule report`` CLI subcommand: it regenerates every
evaluation figure of the paper (4, 5, 8–11), replays the counterexample
constructions (2a–2c, 6, 7), and packages everything — per-algorithm
profile statistics, win rates, raw I/O volumes, wall-clock — into plain
dictionaries that serialise to JSON.

The report intentionally stores *summaries with provenance* (scale, seed,
instance counts) rather than every traversal, so a full run at the default
scale stays small enough to commit next to the paper numbers.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..core.traversal import validate
from ..datasets import instances as paper_instances
from .figures import FIGURES, FigureResult
from .registry import ALGORITHMS, get_algorithm

__all__ = [
    "ExperimentReport",
    "figure_summary",
    "run_counterexamples",
    "run_figures",
    "run_all",
    "report_to_text",
]

#: thresholds at which every profile curve is sampled for the report
REPORT_THRESHOLDS = (0.0, 0.02, 0.05, 0.10, 0.25, 0.50, 1.00, 2.00)


@dataclass
class ExperimentReport:
    """A JSON-serialisable record of one full evaluation run.

    ``batch`` is the execution-provenance block filled in by the batch
    engine (:mod:`repro.experiments.batch`): shard size, unit counts and
    cache hit/miss counters.  It is ``None`` for plain serial runs and
    deliberately excludes the worker count, so reports from ``--jobs 1``
    and ``--jobs N`` runs of the same inputs differ only in timing
    fields.
    """

    scale: str
    started_at: float
    figures: dict[str, Any] = field(default_factory=dict)
    counterexamples: dict[str, Any] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    batch: dict[str, Any] | None = None

    def to_json(self, **dump_kwargs: Any) -> str:
        dump_kwargs.setdefault("indent", 2)
        dump_kwargs.setdefault("sort_keys", True)
        return json.dumps(asdict(self), **dump_kwargs)


def figure_summary(result: FigureResult) -> dict[str, Any]:
    """Distil a :class:`FigureResult` into plain numbers.

    For every algorithm: the fraction of instances where it matches the
    best observed performance, curve samples at the report thresholds,
    and mean/max relative overhead versus the per-instance best.
    """
    perfs = result.profile.performances
    algorithms = list(result.algorithms)
    n = result.num_instances
    best = [min(perfs[a][i] for a in algorithms) for i in range(n)]

    per_algorithm: dict[str, Any] = {}
    for a in algorithms:
        overheads = [perfs[a][i] / best[i] - 1.0 for i in range(n)]
        curve = result.profile.curve(a)
        per_algorithm[a] = {
            "wins": sum(1 for o in overheads if o <= 1e-12) / n,
            "mean_overhead": sum(overheads) / n,
            "max_overhead": max(overheads),
            "curve": {
                f"{t:.2f}": curve.fraction_at(t) for t in REPORT_THRESHOLDS
            },
            "total_io": sum(result.io_volumes[a]),
        }
    return {
        "name": result.name,
        "bound": result.bound,
        "instances": n,
        "mean_memory": sum(result.memories) / n,
        "mean_nodes": sum(result.instance_sizes) / n,
        "algorithms": per_algorithm,
    }


def run_figures(
    scale: str = "small",
    *,
    figure_ids: Sequence[str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Regenerate the requested figures (all by default) at ``scale``."""
    out: dict[str, Any] = {}
    for fid in figure_ids or sorted(FIGURES):
        t0 = time.perf_counter()
        result = FIGURES[fid](scale)
        summary = figure_summary(result)
        summary["seconds"] = time.perf_counter() - t0
        # The paper's right-hand plots for the TREES dataset restrict to
        # the instances on which the heuristics disagree.
        try:
            summary["differing"] = figure_summary(result.differing_subset())
        except ValueError:
            summary["differing"] = None
        out[fid] = summary
        if progress is not None:
            progress(f"{fid}: {summary['instances']} instances in {summary['seconds']:.1f}s")
    return out


def _run_instance(inst: paper_instances.PaperInstance) -> dict[str, Any]:
    row: dict[str, Any] = {
        "n": inst.tree.n,
        "memory": inst.memory,
        "witness_io": inst.witness_io,
        "io": {},
    }
    for name in sorted(ALGORITHMS):
        traversal = get_algorithm(name)(inst.tree, inst.memory)
        validate(inst.tree, traversal, inst.memory)
        row["io"][name] = traversal.io_volume
    return row


def run_counterexamples(
    *,
    fig2a_extensions: Sequence[int] = (0, 2, 4),
    fig2c_ks: Sequence[int] = (1, 2, 4, 8),
) -> dict[str, Any]:
    """Replay the hand-crafted instances of Figures 2, 6 and 7."""
    out: dict[str, Any] = {}
    for ext in fig2a_extensions:
        inst = paper_instances.figure_2a(extensions=ext)
        out[f"fig2a_ext{ext}"] = _run_instance(inst)
    out["fig2b"] = _run_instance(paper_instances.figure_2b())
    for k in fig2c_ks:
        out[f"fig2c_k{k}"] = _run_instance(paper_instances.figure_2c(k))
    out["fig6"] = _run_instance(paper_instances.figure_6())
    out["fig7"] = _run_instance(paper_instances.figure_7())
    return out


def run_all(
    scale: str = "small",
    *,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    cache: "Any | None" = None,
) -> ExperimentReport:
    """The whole evaluation: all figures plus all counterexamples.

    With ``jobs > 1`` or a :class:`~repro.datasets.store.ResultCache`
    instance as ``cache``, the run is delegated to the sharded batch
    engine (:func:`repro.experiments.batch.run_batch_report`), which
    produces the same summaries plus the ``batch`` provenance block.
    """
    if jobs > 1 or cache is not None:
        from .batch import run_batch_report

        return run_batch_report(scale, jobs=jobs, cache=cache, progress=progress)
    report = ExperimentReport(scale=scale, started_at=time.time())
    t0 = time.perf_counter()
    report.counterexamples = run_counterexamples()
    if progress is not None:
        progress("counterexamples done")
    report.figures = run_figures(scale, progress=progress)
    report.elapsed_seconds = time.perf_counter() - t0
    return report


def report_to_text(report: ExperimentReport | Mapping[str, Any]) -> str:
    """Render a report as the text tables EXPERIMENTS.md embeds."""
    data = asdict(report) if isinstance(report, ExperimentReport) else dict(report)
    lines = [f"scale: {data['scale']}   elapsed: {data['elapsed_seconds']:.1f}s", ""]

    lines.append("== counterexamples (I/O volumes) ==")
    header = None
    for name, row in data["counterexamples"].items():
        algs = sorted(row["io"])
        if header is None:
            header = f"{'instance':<14} {'n':>5} {'M':>5} {'witness':>8} " + " ".join(
                f"{a:>15}" for a in algs
            )
            lines.append(header)
        witness = "-" if row["witness_io"] is None else str(row["witness_io"])
        lines.append(
            f"{name:<14} {row['n']:>5} {row['memory']:>5} {witness:>8} "
            + " ".join(f"{row['io'][a]:>15}" for a in algs)
        )

    for fid, summary in data["figures"].items():
        lines.append("")
        lines.append(
            f"== {fid} ({summary['name']}; {summary['instances']} instances, "
            f"bound {summary['bound']}) =="
        )
        lines.append(
            f"{'algorithm':<16} {'wins':>7} {'<=5%':>7} {'<=50%':>7} "
            f"{'mean ovh':>9} {'max ovh':>9} {'total IO':>10}"
        )
        for a, stats in summary["algorithms"].items():
            lines.append(
                f"{a:<16} {stats['wins']:>7.1%} {stats['curve']['0.05']:>7.1%} "
                f"{stats['curve']['0.50']:>7.1%} {stats['mean_overhead']:>9.3f} "
                f"{stats['max_overhead']:>9.3f} {stats['total_io']:>10}"
            )
        if summary.get("differing"):
            diff = summary["differing"]
            lines.append(f"  -- differing subset: {diff['instances']} instances --")
            for a, stats in diff["algorithms"].items():
                lines.append(
                    f"  {a:<14} {stats['wins']:>7.1%} {stats['curve']['0.05']:>7.1%} "
                    f"{stats['curve']['0.50']:>7.1%} {stats['mean_overhead']:>9.3f}"
                )
    return "\n".join(lines)
