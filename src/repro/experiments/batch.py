"""Parallel batch experiment engine with content-addressed result caching.

The serial runner (:mod:`repro.experiments.runner`) regenerates every
figure by walking its instance list one tree at a time.  This module
turns that walk into a **batch of independent work units**:

* every figure's instance list is cut into contiguous *shards* of at
  most ``shard_size`` trees (shard boundaries depend only on the data,
  never on the worker count, so cache keys and counters are stable
  across ``--jobs`` settings);
* every counterexample construction (Figures 2a–2c, 6, 7) is one unit;
* units execute either in-process (``jobs=1``) or across worker
  processes via :class:`concurrent.futures.ProcessPoolExecutor`, each
  with a deterministic per-shard seed derived from the unit key;
* per-shard outputs are merged back — in shard order, so instance order
  matches the serial runner exactly — into the same
  :class:`~repro.experiments.runner.ExperimentReport` summaries.

Layered underneath is the :class:`~repro.datasets.store.ResultCache`:
each unit is keyed by a SHA-256 digest of its inputs (tree structure,
memory bound, algorithm list, scale — see
:func:`repro.datasets.store.cache_key`), so a warm re-run only
recomputes shards whose inputs changed and the report carries hit/miss
counters as provenance.

Apart from the timing fields (``seconds``, ``elapsed_seconds``,
``started_at``) and the ``batch`` provenance block, the report produced
here is byte-identical to the serial runner's at any ``jobs`` value.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from ..analysis.metrics import performance
from ..analysis.profiles import build_profile
from ..api.execution import execute_batch
from ..api.requests import (
    BatchRequest,
    CanonicalRequest,
    ENGINE_VERSION,
    unit_seed,
)
from ..core.traversal import validate
from ..core.tree import TaskTree
from ..datasets import instances as paper_instances
from ..datasets.store import ResultCache
from .datasets import Scale
from .figures import FIGURE_SPECS, FigureResult, build_dataset
from .registry import ALGORITHMS, get_algorithm

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .runner import ExperimentReport

__all__ = [
    "BatchRequest",
    "BatchStats",
    "FigureShard",
    "CounterexampleUnit",
    "DEFAULT_SHARD_SIZE",
    "ENGINE_VERSION",
    "unit_seed",
    "shard_figure",
    "counterexample_units",
    "run_shard",
    "run_counterexample_unit",
    "merge_shards",
    "run_batch_figures",
    "run_batch_counterexamples",
    "run_batch_report",
]

#: maximum number of trees per figure shard.  Fixed (instead of derived
#: from the worker count) so that shard boundaries — and therefore cache
#: keys and hit/miss counters — are identical at every ``--jobs`` value.
DEFAULT_SHARD_SIZE = 8

# Backwards-compatible alias; the public constant now lives in
# :mod:`repro.api.requests` (one engine-version salt for every surface).
_ENGINE_VERSION = ENGINE_VERSION


@dataclass
class BatchStats:
    """Execution provenance for one batch run (the report's ``batch`` block).

    Everything here is deterministic given the datasets and the cache
    state — notably *independent of the worker count* — so serial and
    parallel runs of the same inputs produce identical stats.
    """

    shard_size: int = DEFAULT_SHARD_SIZE
    units_total: int = 0
    units_computed: int = 0
    cache_enabled: bool = False
    cache_hits: int = 0
    cache_misses: int = 0

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for JSON serialisation inside the report."""
        return {
            "shard_size": self.shard_size,
            "units_total": self.units_total,
            "units_computed": self.units_computed,
            "cache": {
                "enabled": self.cache_enabled,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
        }


@dataclass(frozen=True)
class FigureShard(BatchRequest):
    """One contiguous slice of a figure's instance list.

    A :class:`~repro.api.requests.BatchRequest` (trees as plain
    ``(parents, weights)`` tuples — cheap to pickle across the process
    boundary and exactly the content that is hashed into the cache key,
    with the ``bound`` memory policy resolved per tree) plus the figure
    book-keeping a worker needs to run it without touching
    figure-specific code.  The content address keeps the historical
    ``figure-shard`` derivation — same buffer digest, computed once per
    instance — so caches written before the API unification stay warm.
    """

    fig_id: str = ""
    scale: str = ""
    index: int = 0  # position within the figure (merge order)
    seed: int = 0  # deterministic per-shard seed (derived from the key)

    #: ``index`` is merge-order book-keeping (identical content at two
    #: positions is the same result); ``seed`` is *derived from* the key,
    #: so hashing it in would be circular.
    key_excluded = frozenset({"index", "seed"})

    def key_params(self) -> dict[str, Any]:
        params = {
            "kind": "figure-shard",
            "version": _ENGINE_VERSION,
            "fig_id": self.fig_id,
            "scale": self.scale,
            "bound": self.bound,
            "algorithms": list(self.algorithms),
        }
        # The figure pipeline never pins an absolute memory (the bound
        # policy resolves per tree), so the historical key omits it —
        # but a caller who *does* pin one changes the output and must
        # change the key, or a stale cache entry computed under a
        # different bound would be served back as a hit.
        if self.memory is not None:
            params["memory"] = self.memory
        return params


@dataclass(frozen=True)
class CounterexampleUnit(CanonicalRequest):
    """One hand-crafted paper instance (Figures 2a–2c, 6, 7) as a work unit.

    ``witness_io`` is part of the key because it is copied verbatim
    into the cached row: correcting a witness value in
    :mod:`repro.datasets.instances` must invalidate the entry.
    """

    name: str
    parents: tuple[int, ...]
    weights: tuple[int, ...]
    memory: int
    witness_io: int | None
    algorithms: tuple[str, ...]

    def key_params(self) -> dict[str, Any]:
        return {
            "kind": "counterexample",
            "version": _ENGINE_VERSION,
            "name": self.name,
            "memory": self.memory,
            "witness_io": self.witness_io,
            "algorithms": list(self.algorithms),
        }

    def key_buffers(self) -> Mapping[str, Any]:
        return {"parents": self.parents, "weights": self.weights}


_shard_seed = unit_seed  # historical name


def shard_figure(
    fig_id: str,
    scale: Scale | str,
    *,
    shard_size: int = DEFAULT_SHARD_SIZE,
    engine: str = "auto",
    forest: bool = True,
) -> list[FigureShard]:
    """Cut one figure's instance list into contiguous shards.

    The dataset is built once (deterministically, from the fixed dataset
    seed) and sliced in order; concatenating shard outputs in ``index``
    order therefore reproduces the serial instance order exactly.
    """
    spec = FIGURE_SPECS[fig_id]
    scale_name = scale if isinstance(scale, str) else scale.name
    trees = build_dataset(spec.dataset, scale)
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    shards: list[FigureShard] = []
    for index, start in enumerate(range(0, len(trees), shard_size)):
        chunk = trees[start : start + shard_size]
        shard = FigureShard(
            fig_id=fig_id,
            scale=scale_name,
            bound=spec.bound,
            algorithms=spec.algorithms,
            index=index,
            trees=tuple((t.parents, t.weights) for t in chunk),
            seed=0,
            engine=engine,
            forest=forest,
        )
        # The seed is derived from the content address (which excludes the
        # seed field itself), so it is stable across runs and distinct
        # across shards with different inputs.  Carrying the key over to
        # the reseeded instance keeps it one canonicalisation per shard.
        key = shard.key()
        shard = dataclasses.replace(shard, seed=_shard_seed(key))
        object.__setattr__(shard, "_cached_key", key)
        shards.append(shard)
    return shards


def counterexample_units(
    *,
    fig2a_extensions: Sequence[int] = (0, 2, 4),
    fig2c_ks: Sequence[int] = (1, 2, 4, 8),
) -> list[CounterexampleUnit]:
    """Materialise every counterexample instance as an independent unit."""
    algorithms = tuple(sorted(ALGORITHMS))
    named: list[tuple[str, paper_instances.PaperInstance]] = []
    for ext in fig2a_extensions:
        named.append((f"fig2a_ext{ext}", paper_instances.figure_2a(extensions=ext)))
    named.append(("fig2b", paper_instances.figure_2b()))
    for k in fig2c_ks:
        named.append((f"fig2c_k{k}", paper_instances.figure_2c(k)))
    named.append(("fig6", paper_instances.figure_6()))
    named.append(("fig7", paper_instances.figure_7()))
    return [
        CounterexampleUnit(
            name=name,
            parents=inst.tree.parents,
            weights=inst.tree.weights,
            memory=inst.memory,
            witness_io=inst.witness_io,
            algorithms=algorithms,
        )
        for name, inst in named
    ]


def run_shard(shard: FigureShard) -> dict[str, Any]:
    """Execute one figure shard (this is the worker entry point).

    A thin timing-and-seeding wrapper over the shared
    :func:`repro.api.execution.execute_batch` core, which rebuilds the
    shard's trees, resolves the ``bound`` memory policy per tree
    (applying the I/O-regime filter), runs and validates every
    algorithm — through the forest kernels when possible, with a
    byte-identical per-tree fallback — and returns the raw per-instance
    columns as a JSON-friendly payload, exactly what
    :func:`merge_shards` and the cache store.

    The process-global RNGs are seeded with the shard's content-derived
    seed first, so any strategy that draws global randomness (none of
    the paper's do, but :func:`~repro.experiments.registry.register_algorithm`
    admits such strategies) behaves identically regardless of which
    worker the shard lands on or how many workers there are.
    """
    import random

    import numpy as np

    random.seed(shard.seed)
    np.random.seed(shard.seed)
    t0 = time.perf_counter()
    payload = execute_batch(shard)
    payload["seconds"] = time.perf_counter() - t0
    return payload


def run_counterexample_unit(unit: CounterexampleUnit) -> dict[str, Any]:
    """Execute one counterexample unit (worker entry point).

    Returns the same row shape as the serial runner's per-instance dict:
    node count, memory bound, paper witness, and per-algorithm I/O.
    """
    tree = TaskTree(unit.parents, unit.weights)
    row: dict[str, Any] = {
        "n": tree.n,
        "memory": unit.memory,
        "witness_io": unit.witness_io,
        "io": {},
    }
    for name in unit.algorithms:
        traversal = get_algorithm(name)(tree, unit.memory)
        validate(tree, traversal, unit.memory)
        row["io"][name] = traversal.io_volume
    return row


def merge_shards(
    fig_id: str,
    shards: Sequence[FigureShard],
    payloads: Sequence[Mapping[str, Any]],
) -> FigureResult:
    """Reassemble shard payloads into the figure's :class:`FigureResult`.

    Payloads must be given in shard ``index`` order; columns are simply
    concatenated, so the merged result is bit-for-bit the serial
    ``run_comparison`` output.
    """
    if len(shards) != len(payloads):
        raise ValueError(
            f"{fig_id}: {len(shards)} shards but {len(payloads)} payloads"
        )
    spec = FIGURE_SPECS[fig_id]
    algorithms = shards[0].algorithms if shards else spec.algorithms
    io: dict[str, list[int]] = {a: [] for a in algorithms}
    memories: list[int] = []
    sizes: list[int] = []
    for shard, payload in sorted(
        zip(shards, payloads), key=lambda pair: pair[0].index
    ):
        memories.extend(payload["memories"])
        sizes.extend(payload["sizes"])
        for a in algorithms:
            io[a].extend(payload["io"][a])
    if not memories:
        raise ValueError(f"{spec.name}: no instance has an I/O regime")
    perfs = {
        a: [performance(m, k) for m, k in zip(memories, io[a])] for a in algorithms
    }
    return FigureResult(
        name=spec.name,
        bound=spec.bound,
        algorithms=tuple(algorithms),
        profile=build_profile(perfs),
        io_volumes={a: tuple(v) for a, v in io.items()},
        memories=tuple(memories),
        instance_sizes=tuple(sizes),
    )


def _execute_units(
    units: Sequence[Any],
    worker: Callable[[Any], dict[str, Any]],
    *,
    jobs: int,
    cache: ResultCache | None,
    stats: BatchStats,
    progress: Callable[[str], None] | None = None,
) -> list[dict[str, Any]]:
    """Run work units through the cache, then in-process or in a pool.

    Cache lookups happen in the parent (workers stay stateless); only
    misses are executed, and their results are written back *without*
    the ``seconds`` timing field — a cache hit contributes 0.0 compute
    time, so a fully warm figure reports ``seconds == 0.0``.  Results
    are returned in the order of ``units`` regardless of completion
    order.
    """
    from ..obs.metrics import get_registry

    registry = get_registry()
    units_counter = registry.counter(
        "batch_units_total", "batch-engine work units, by how they resolved"
    )
    if cache is not None and getattr(cache, "_hit_counter", None) is None:
        cache.bind_registry(registry)

    results: list[dict[str, Any] | None] = [None] * len(units)
    pending: list[int] = []
    for i, unit in enumerate(units):
        stats.units_total += 1
        if cache is not None:
            hit = cache.get(unit.key())
            if hit is not None:
                results[i] = hit
                units_counter.labels(source="cache").inc()
                continue
        pending.append(i)

    if cache is not None:
        stats.cache_hits = cache.hits
        stats.cache_misses = cache.misses

    done_here = 0

    def _record(i: int, result: dict[str, Any]) -> None:
        nonlocal done_here
        results[i] = result
        stats.units_computed += 1
        units_counter.labels(source="computed").inc()
        done_here += 1
        if cache is not None:
            cache.put(
                units[i].key(), {k: v for k, v in result.items() if k != "seconds"}
            )
        if progress is not None:
            progress(f"computed unit {done_here}/{len(pending)}")

    if jobs <= 1 or len(pending) <= 1:
        for i in pending:
            _record(i, worker(units[i]))
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {pool.submit(worker, units[i]): i for i in pending}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    _record(futures[future], future.result())
    return [r for r in results if r is not None]


def run_batch_counterexamples(
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    stats: BatchStats | None = None,
    fig2a_extensions: Sequence[int] = (0, 2, 4),
    fig2c_ks: Sequence[int] = (1, 2, 4, 8),
) -> dict[str, Any]:
    """Replay every counterexample through the batch engine.

    Output is identical to
    :func:`repro.experiments.runner.run_counterexamples`.
    """
    stats = stats if stats is not None else BatchStats(cache_enabled=cache is not None)
    units = counterexample_units(
        fig2a_extensions=fig2a_extensions, fig2c_ks=fig2c_ks
    )
    rows = _execute_units(
        units, run_counterexample_unit, jobs=jobs, cache=cache, stats=stats
    )
    return {unit.name: row for unit, row in zip(units, rows)}


def run_batch_figures(
    scale: Scale | str = "small",
    *,
    figure_ids: Sequence[str] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    stats: BatchStats | None = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    engine: str = "auto",
    forest: bool = True,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Regenerate the requested figures through the sharded engine.

    All figures' shards are pooled into one unit list (better load
    balance than running figures back-to-back), executed, and merged
    per figure.  Output matches
    :func:`repro.experiments.runner.run_figures` except that each
    figure's ``seconds`` field sums worker compute time over its shards
    (0.0 on a fully warm cache) instead of parent wall-clock.
    """
    from .runner import figure_summary  # cycle: runner imports this module

    stats = stats if stats is not None else BatchStats(cache_enabled=cache is not None)
    stats.shard_size = shard_size
    # Falsy (None or empty) means "all", exactly like the serial runner's
    # ``figure_ids or sorted(FIGURES)``.
    ids = list(figure_ids) if figure_ids else sorted(FIGURE_SPECS)
    by_figure: dict[str, list[FigureShard]] = {
        fid: shard_figure(
            fid, scale, shard_size=shard_size, engine=engine, forest=forest
        )
        for fid in ids
    }
    flat: list[FigureShard] = [s for fid in ids for s in by_figure[fid]]
    payloads = _execute_units(
        flat, run_shard, jobs=jobs, cache=cache, stats=stats, progress=progress
    )
    by_unit = dict(zip(flat, payloads))

    out: dict[str, Any] = {}
    for fid in ids:
        shards = by_figure[fid]
        shard_payloads = [by_unit[s] for s in shards]
        result = merge_shards(fid, shards, shard_payloads)
        summary = figure_summary(result)
        # Cached payloads carry no "seconds" (a hit costs no compute).
        summary["seconds"] = sum(p.get("seconds", 0.0) for p in shard_payloads)
        try:
            summary["differing"] = figure_summary(result.differing_subset())
        except ValueError:
            summary["differing"] = None
        out[fid] = summary
        if progress is not None:
            progress(
                f"{fid}: {summary['instances']} instances over "
                f"{len(shards)} shards in {summary['seconds']:.1f}s"
            )
    return out


def run_batch_report(
    scale: Scale | str = "small",
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    engine: str = "auto",
    forest: bool = True,
    progress: Callable[[str], None] | None = None,
) -> "ExperimentReport":
    """The whole evaluation through the batch engine.

    Equivalent to :func:`repro.experiments.runner.run_all` — same
    figures, same counterexamples, same summary values — with the
    ``batch`` provenance block (shard and cache counters) filled in.
    ``engine`` selects the kernel engine the figure shards run under
    (``auto``/``object``/``array``) and ``forest`` whether shards solve
    through the forest layer; results are identical in every
    combination, which is why neither is part of the cache keys.
    Returns an :class:`~repro.experiments.runner.ExperimentReport`.
    """
    from .runner import ExperimentReport

    stats = BatchStats(cache_enabled=cache is not None, shard_size=shard_size)
    report = ExperimentReport(
        scale=scale if isinstance(scale, str) else scale.name,
        started_at=time.time(),
    )
    t0 = time.perf_counter()
    report.counterexamples = run_batch_counterexamples(
        jobs=jobs, cache=cache, stats=stats
    )
    if progress is not None:
        progress("counterexamples done")
    report.figures = run_batch_figures(
        scale,
        jobs=jobs,
        cache=cache,
        stats=stats,
        shard_size=shard_size,
        engine=engine,
        forest=forest,
        progress=progress,
    )
    if cache is not None:
        stats.cache_hits = cache.hits
        stats.cache_misses = cache.misses
    report.batch = stats.to_dict()
    report.elapsed_seconds = time.perf_counter() - t0
    return report
