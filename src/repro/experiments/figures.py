"""Regeneration of every evaluation figure of the paper.

One function per figure (4, 5, 8, 9, 10, 11).  Each runs the competing
strategies over the matching dataset and memory bound, validates every
traversal, and packages the results as a
:class:`~repro.analysis.profiles.PerformanceProfile` plus the per-instance
raw numbers, so benchmarks and EXPERIMENTS.md can print the same rows the
paper plots.

The counterexample figures (2a–2c, 6, 7) are exact constructions; they
live in :mod:`repro.datasets.instances` and are exercised by the
dedicated benchmark/test files rather than here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..analysis.bounds import memory_bounds
from ..analysis.metrics import performance
from ..analysis.profiles import PerformanceProfile, build_profile
from ..core.traversal import validate
from ..core.tree import TaskTree
from .datasets import Scale, build_synth, build_trees, current_scale
from .registry import get_algorithm

__all__ = [
    "FigureResult",
    "FigureSpec",
    "FIGURE_SPECS",
    "build_dataset",
    "run_comparison",
    "run_spec",
    "figure4",
    "figure5",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "FIGURES",
]


@dataclass(frozen=True)
class FigureResult:
    """Everything one evaluation figure needs."""

    name: str
    bound: str  # which memory bound: "M1" | "Mmid" | "M2"
    algorithms: tuple[str, ...]
    profile: PerformanceProfile
    #: io_volumes[alg][i] on instance i
    io_volumes: Mapping[str, tuple[int, ...]]
    memories: tuple[int, ...]
    instance_sizes: tuple[int, ...]

    @property
    def num_instances(self) -> int:
        return len(self.memories)

    def differing_subset(self) -> "FigureResult":
        """Restrict to instances where the algorithms disagree (Fig 5 right)."""
        keep = [
            i
            for i in range(self.num_instances)
            if len({self.io_volumes[a][i] for a in self.algorithms}) > 1
        ]
        if not keep:
            raise ValueError("the algorithms agree on every instance")
        io = {a: tuple(self.io_volumes[a][i] for i in keep) for a in self.algorithms}
        memories = tuple(self.memories[i] for i in keep)
        perfs = {
            a: [performance(m, k) for m, k in zip(memories, io[a])]
            for a in self.algorithms
        }
        return FigureResult(
            name=self.name + "-differing",
            bound=self.bound,
            algorithms=self.algorithms,
            profile=build_profile(perfs),
            io_volumes=io,
            memories=memories,
            instance_sizes=tuple(self.instance_sizes[i] for i in keep),
        )

    def summary(self) -> str:
        """A compact text block: per-algorithm overhead statistics."""
        lines = [
            f"{self.name}: {self.num_instances} instances, bound {self.bound}, "
            f"algorithms {', '.join(self.algorithms)}"
        ]
        perfs = self.profile.performances
        best = [
            min(perfs[a][i] for a in self.algorithms)
            for i in range(self.num_instances)
        ]
        for a in self.algorithms:
            curve = self.profile.curve(a)
            wins = sum(
                1 for i in range(self.num_instances) if perfs[a][i] <= best[i] + 1e-12
            )
            lines.append(
                f"  {a:<16} best on {wins / self.num_instances:6.1%}   "
                f"within 5%: {curve.fraction_at(0.05):6.1%}   "
                f"within 50%: {curve.fraction_at(0.50):6.1%}"
            )
        return "\n".join(lines)


def run_comparison(
    name: str,
    trees: Sequence[TaskTree],
    bound: str,
    algorithms: Sequence[str],
    *,
    check: bool = True,
) -> FigureResult:
    """Run ``algorithms`` on every tree at the named memory bound."""
    io: dict[str, list[int]] = {a: [] for a in algorithms}
    memories: list[int] = []
    sizes: list[int] = []
    for tree in trees:
        bounds = memory_bounds(tree)
        if not bounds.has_io_regime:
            continue
        memory = bounds.grid()[bound]
        memories.append(memory)
        sizes.append(tree.n)
        for a in algorithms:
            traversal = get_algorithm(a)(tree, memory)
            if check:
                validate(tree, traversal, memory)
            io[a].append(traversal.io_volume)
    if not memories:
        raise ValueError(f"{name}: no instance has an I/O regime")
    perfs = {
        a: [performance(m, k) for m, k in zip(memories, io[a])] for a in algorithms
    }
    return FigureResult(
        name=name,
        bound=bound,
        algorithms=tuple(algorithms),
        profile=build_profile(perfs),
        io_volumes={a: tuple(v) for a, v in io.items()},
        memories=tuple(memories),
        instance_sizes=tuple(sizes),
    )


def _synth_algorithms(include_full: bool) -> tuple[str, ...]:
    if include_full:
        return ("OptMinMem", "RecExpand", "PostOrderMinIO", "FullRecExpand")
    return ("OptMinMem", "RecExpand", "PostOrderMinIO")


_TREES_ALGORITHMS = ("OptMinMem", "RecExpand", "PostOrderMinIO")


@dataclass(frozen=True)
class FigureSpec:
    """Declarative description of one evaluation figure.

    The spec is everything the batch engine needs to regenerate a figure
    without calling back into figure-specific code: which dataset to
    build, which memory bound to pick from the per-tree grid, and which
    registered strategies to compare.  ``FIGURE_SPECS`` holds one spec
    per paper figure; :func:`run_spec` turns a spec into the same
    :class:`FigureResult` the ``figureN`` helpers produce.
    """

    fig_id: str
    name: str
    dataset: str  # "synth" | "trees"
    bound: str  # "M1" | "Mmid" | "M2"
    algorithms: tuple[str, ...]


#: figure id → declarative spec (the batch engine's source of truth)
FIGURE_SPECS: dict[str, FigureSpec] = {
    spec.fig_id: spec
    for spec in (
        FigureSpec("fig4", "figure4-synth-Mmid", "synth", "Mmid", _synth_algorithms(True)),
        FigureSpec("fig5", "figure5-trees-Mmid", "trees", "Mmid", _TREES_ALGORITHMS),
        FigureSpec("fig8", "figure8-synth-M1", "synth", "M1", _synth_algorithms(True)),
        FigureSpec("fig9", "figure9-trees-M1", "trees", "M1", _TREES_ALGORITHMS),
        FigureSpec("fig10", "figure10-synth-M2", "synth", "M2", _synth_algorithms(True)),
        FigureSpec("fig11", "figure11-trees-M2", "trees", "M2", _TREES_ALGORITHMS),
    )
}


def build_dataset(dataset: str, scale: Scale | str) -> list[TaskTree]:
    """Materialise the named dataset (``"synth"`` or ``"trees"``) at ``scale``."""
    if dataset == "synth":
        return build_synth(scale)
    if dataset == "trees":
        return build_trees(scale)
    raise KeyError(f"unknown dataset {dataset!r}; available: 'synth', 'trees'")


def run_spec(
    spec: FigureSpec,
    scale: Scale | str | None = None,
    *,
    algorithms: Sequence[str] | None = None,
) -> FigureResult:
    """Regenerate the figure described by ``spec`` (serially)."""
    scale = current_scale() if scale is None else scale
    return run_comparison(
        spec.name,
        build_dataset(spec.dataset, scale),
        spec.bound,
        tuple(algorithms) if algorithms is not None else spec.algorithms,
    )


def figure4(scale: Scale | str | None = None, *, include_full: bool = True) -> FigureResult:
    """Figure 4: SYNTH dataset at the mid memory bound (all four heuristics)."""
    return run_spec(
        FIGURE_SPECS["fig4"], scale, algorithms=_synth_algorithms(include_full)
    )


def figure5(scale: Scale | str | None = None) -> FigureResult:
    """Figure 5: TREES dataset at the mid memory bound (three heuristics)."""
    return run_spec(FIGURE_SPECS["fig5"], scale)


def figure8(scale: Scale | str | None = None, *, include_full: bool = True) -> FigureResult:
    """Figure 8: SYNTH at the minimal feasible memory ``M1 = LB``."""
    return run_spec(
        FIGURE_SPECS["fig8"], scale, algorithms=_synth_algorithms(include_full)
    )


def figure9(scale: Scale | str | None = None) -> FigureResult:
    """Figure 9: TREES at ``M1 = LB``."""
    return run_spec(FIGURE_SPECS["fig9"], scale)


def figure10(scale: Scale | str | None = None, *, include_full: bool = True) -> FigureResult:
    """Figure 10: SYNTH at ``M2 = Peak_incore - 1``."""
    return run_spec(
        FIGURE_SPECS["fig10"], scale, algorithms=_synth_algorithms(include_full)
    )


def figure11(scale: Scale | str | None = None) -> FigureResult:
    """Figure 11: TREES at ``M2 = Peak_incore - 1``."""
    return run_spec(FIGURE_SPECS["fig11"], scale)


#: figure id → builder, for the CLI and the benchmark harness
FIGURES = {
    "fig4": figure4,
    "fig5": figure5,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11": figure11,
}
