"""Seed-robustness of the evaluation: are the figures seed-luck?

The paper reports one dataset draw.  This module re-runs a figure's
comparison across several dataset seeds and quantifies the spread:

* per-algorithm win fraction and mean overhead, with bootstrap CIs over
  seeds;
* pairwise significance (sign-flip permutation test) on the pooled
  per-instance performances.

If the conclusions (RecExpand ≥ OptMinMem ≥ PostOrderMinIO) hold with
tight CIs across seeds, the reproduction's claims do not hinge on the
particular random trees drawn — the robustness statement EXPERIMENTS.md
cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..analysis.statistics import bootstrap_ci, pairwise_comparison
from .datasets import build_synth, build_trees
from .figures import run_comparison

__all__ = ["SeedSweep", "seed_sweep"]


@dataclass(frozen=True)
class SeedSweep:
    """Aggregated results of one figure comparison across dataset seeds."""

    dataset: str
    bound: str
    algorithms: tuple[str, ...]
    seeds: tuple[int, ...]
    #: per algorithm: list of win fractions, one per seed
    win_fractions: Mapping[str, tuple[float, ...]]
    #: per algorithm: list of mean overheads vs per-instance best, per seed
    mean_overheads: Mapping[str, tuple[float, ...]]
    #: pooled per-instance performances across all seeds
    pooled_performances: Mapping[str, tuple[float, ...]]

    def win_ci(self, algorithm: str, **kwargs: Any) -> tuple[float, float]:
        """Bootstrap CI of the win fraction across seeds."""
        return bootstrap_ci(self.win_fractions[algorithm], **kwargs)

    def overhead_ci(self, algorithm: str, **kwargs: Any) -> tuple[float, float]:
        """Bootstrap CI of the mean overhead across seeds."""
        return bootstrap_ci(self.mean_overheads[algorithm], **kwargs)

    def significance(self, **kwargs: Any):
        """Pairwise permutation/Wilcoxon tests on pooled performances."""
        return pairwise_comparison(
            {a: list(v) for a, v in self.pooled_performances.items()}, **kwargs
        )

    def summary(self) -> str:
        lines = [
            f"{self.dataset}/{self.bound} across seeds {list(self.seeds)}:",
            f"{'algorithm':<16} {'wins mean':>10} {'wins 95% CI':>16} "
            f"{'ovh mean':>9}",
        ]
        for a in self.algorithms:
            wins = self.win_fractions[a]
            lo, hi = self.win_ci(a)
            ovh = self.mean_overheads[a]
            lines.append(
                f"{a:<16} {sum(wins) / len(wins):>10.1%} "
                f"[{lo:>6.1%}, {hi:>6.1%}] {sum(ovh) / len(ovh):>9.3f}"
            )
        for row in self.significance():
            verdict = "significant" if row.significant() else "not significant"
            lines.append(
                f"  {row.first} vs {row.second}: wins/ties/losses = "
                f"{row.wins}/{row.ties}/{row.losses}, "
                f"p = {row.p_permutation:.4f} ({verdict})"
            )
        return "\n".join(lines)


def seed_sweep(
    dataset: str = "synth",
    bound: str = "Mmid",
    *,
    algorithms: Sequence[str] = ("OptMinMem", "RecExpand", "PostOrderMinIO"),
    scale: str = "tiny",
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
) -> SeedSweep:
    """Run one comparison across several dataset seeds.

    ``dataset`` is ``"synth"`` or ``"trees"``; ``bound`` one of
    ``M1``/``Mmid``/``M2``.
    """
    if dataset not in ("synth", "trees"):
        raise ValueError(f"unknown dataset {dataset!r}")
    build = build_synth if dataset == "synth" else build_trees

    win_fractions: dict[str, list[float]] = {a: [] for a in algorithms}
    mean_overheads: dict[str, list[float]] = {a: [] for a in algorithms}
    pooled: dict[str, list[float]] = {a: [] for a in algorithms}

    for seed in seeds:
        trees = build(scale, seed=seed)
        result = run_comparison(
            f"{dataset}-{bound}-seed{seed}", trees, bound, algorithms
        )
        perfs = result.profile.performances
        n = result.num_instances
        best = [min(perfs[a][i] for a in algorithms) for i in range(n)]
        for a in algorithms:
            overheads = [perfs[a][i] / best[i] - 1.0 for i in range(n)]
            win_fractions[a].append(
                sum(1 for o in overheads if o <= 1e-12) / n
            )
            mean_overheads[a].append(sum(overheads) / n)
            pooled[a].extend(perfs[a])

    return SeedSweep(
        dataset=dataset,
        bound=bound,
        algorithms=tuple(algorithms),
        seeds=tuple(seeds),
        win_fractions={a: tuple(v) for a, v in win_fractions.items()},
        mean_overheads={a: tuple(v) for a, v in mean_overheads.items()},
        pooled_performances={a: tuple(v) for a, v in pooled.items()},
    )
