"""Assembly of the two evaluation datasets at configurable scales.

* **SYNTH** — uniform random binary trees with uniform weights
  (Section 6.1: 330 trees × 3 000 nodes, weights in [1, 100]).
* **TREES** — multifrontal task trees from sparse-matrix symbolic
  analysis.  The paper uses 329 UFL-collection elimination trees
  (2 000–40 000 nodes) and keeps the 133 with ``Peak_incore > LB``; we
  generate structurally comparable matrices (grid Laplacians under several
  orderings, random SPD patterns) and apply the same filter.

Pure-Python heuristics cannot sweep the paper's full sizes in reasonable
wall-clock time, so each dataset comes in three scales; ``small`` is the
default everywhere and preserves the qualitative comparisons.  Scale can
also be picked via the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..analysis.bounds import memory_bounds
from ..core.tree import TaskTree
from ..datasets.elimination import etree_task_tree, supernodal_task_tree
from ..datasets.matrices import (
    ORDERINGS,
    grid_laplacian_2d,
    grid_laplacian_3d,
    permute_symmetric,
    random_symmetric_pattern,
)
from ..datasets.synth import synth_dataset

__all__ = ["Scale", "SCALES", "current_scale", "build_synth", "build_trees"]


@dataclass(frozen=True)
class Scale:
    """Dataset sizing knobs."""

    name: str
    synth_trees: int
    synth_nodes: int
    grid2d_sides: tuple[int, ...]
    grid3d_sides: tuple[int, ...]
    random_sizes: tuple[int, ...]


SCALES: dict[str, Scale] = {
    "tiny": Scale("tiny", 12, 120, (6, 8), (3,), (60,)),
    "small": Scale("small", 60, 600, (8, 10, 12, 14, 16, 20), (4, 5, 6), (100, 200, 300)),
    "paper": Scale(
        "paper",
        330,
        3000,
        (16, 20, 24, 28, 32, 40, 48, 56),
        (6, 8, 10, 12),
        (400, 800, 1600, 3200),
    ),
}


def current_scale(default: str = "small") -> Scale:
    """The scale selected by ``REPRO_SCALE`` (or the default)."""
    name = os.environ.get("REPRO_SCALE", default)
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(f"unknown scale {name!r}; available: {sorted(SCALES)}") from None


def build_synth(scale: Scale | str = "small", *, seed: int = 20170208) -> list[TaskTree]:
    """The SYNTH dataset at the given scale."""
    if isinstance(scale, str):
        scale = SCALES[scale]
    return synth_dataset(scale.synth_trees, scale.synth_nodes, seed=seed)


def build_trees(
    scale: Scale | str = "small",
    *,
    seed: int = 20170208,
    keep_all: bool = False,
) -> list[TaskTree]:
    """The TREES dataset: multifrontal task trees of synthetic matrices.

    One tree per (matrix, ordering) combination; unless ``keep_all``, the
    paper's filter drops trees whose in-core peak equals the feasibility
    bound (no I/O regime).
    """
    if isinstance(scale, str):
        scale = SCALES[scale]
    rng = np.random.default_rng(seed)

    matrices = []
    for side in scale.grid2d_sides:
        matrices.append((f"grid2d-{side}", grid_laplacian_2d(side, side)))
        matrices.append(
            (f"grid2d-{side}x{side + side // 2}", grid_laplacian_2d(side, side + side // 2))
        )
    for side in scale.grid3d_sides:
        matrices.append((f"grid3d-{side}", grid_laplacian_3d(side, side, side)))
    for n in scale.random_sizes:
        matrices.append(
            (f"rand-{n}", random_symmetric_pattern(n, avg_degree=4.0, rng=rng))
        )

    trees: list[TaskTree] = []
    for _, matrix in matrices:
        for name in ("natural", "rcm", "mindeg", "random"):
            perm = ORDERINGS[name](matrix, rng)
            permuted = permute_symmetric(matrix, perm)
            # Both granularities occur in practice: one task per factor
            # column (nodal) and one per fundamental supernode (MUMPS-like).
            for builder in (etree_task_tree, supernodal_task_tree):
                tree = builder(permuted)
                if tree.n < 3:
                    continue
                if keep_all or memory_bounds(tree).has_io_regime:
                    trees.append(tree)
    return trees
