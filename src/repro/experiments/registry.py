"""The algorithm registry: one uniform entry point per strategy.

Every strategy of the paper is exposed as ``f(tree, memory) -> Traversal``:
the schedule is produced by the strategy, the I/O function is always the
FiF-optimal one for that schedule (Theorem 1), so comparisons are fair.
"""

from __future__ import annotations

from typing import Callable

from ..algorithms.liu import opt_min_mem
from ..algorithms.postorder import postorder_min_io, postorder_min_mem
from ..algorithms.rec_expand import full_rec_expand, rec_expand
from ..core.engine import array_tree_or_none
from ..core.simulator import fif_traversal
from ..core.traversal import Traversal
from ..core.tree import TaskTree

__all__ = [
    "ALGORITHMS",
    "ORACLES",
    "PAPER_ALGORITHMS",
    "get_algorithm",
    "register_algorithm",
    "strategy_names",
]

Strategy = Callable[[TaskTree, int], Traversal]


def _fast_tree(tree: TaskTree):
    """Convert once per strategy call when the array engine is in play.

    Both the scheduler and the FiF pass below accept either
    representation, so a single up-front conversion (or none, when the
    engine resolves to ``object``) serves the whole strategy.
    """
    at = array_tree_or_none(tree)
    return tree if at is None else at


def _opt_min_mem(tree: TaskTree, memory: int) -> Traversal:
    """``OPTMINMEM`` as a MinIO strategy (Section 4.4): Liu's schedule + FiF."""
    t = _fast_tree(tree)
    return fif_traversal(t, opt_min_mem(t)[0], memory)


def _postorder_min_io(tree: TaskTree, memory: int) -> Traversal:
    """``POSTORDERMINIO`` (Section 4.1): Agullo's best postorder + FiF."""
    t = _fast_tree(tree)
    return fif_traversal(t, postorder_min_io(t, memory).schedule, memory)


def _postorder_min_mem(tree: TaskTree, memory: int) -> Traversal:
    """``POSTORDERMINMEM``: peak-optimal postorder + FiF (extra baseline)."""
    t = _fast_tree(tree)
    return fif_traversal(t, postorder_min_mem(t).schedule, memory)


def _rec_expand(tree: TaskTree, memory: int) -> Traversal:
    """``RECEXPAND`` (Section 5, polynomial variant)."""
    return rec_expand(tree, memory).traversal


def _full_rec_expand(tree: TaskTree, memory: int) -> Traversal:
    """``FULLRECEXPAND`` (Algorithm 2, uncapped)."""
    return full_rec_expand(tree, memory).traversal


def _portfolio(tree: TaskTree, memory: int) -> Traversal:
    """The virtual best of the three polynomial strategies.

    Figure 7 shows no single heuristic dominates; a solver integrator
    would run all three (they are cheap relative to the factorization)
    and keep the cheapest traversal.  This is that baseline.
    """
    t = _fast_tree(tree)
    candidates = (
        _opt_min_mem(t, memory),
        _postorder_min_io(t, memory),
        _rec_expand(tree, memory),
    )
    return min(candidates, key=lambda c: c.io_volume)


def _exact(tree: TaskTree, memory: int) -> Traversal:
    """Exact branch-and-bound (exponential; guarded by a node limit)."""
    from ..algorithms.exact import exact_min_io

    return exact_min_io(tree, memory, node_limit=24).traversal


#: every polynomial strategy (safe on trees of any size)
ALGORITHMS: dict[str, Strategy] = {
    "OptMinMem": _opt_min_mem,
    "PostOrderMinIO": _postorder_min_io,
    "PostOrderMinMem": _postorder_min_mem,
    "RecExpand": _rec_expand,
    "FullRecExpand": _full_rec_expand,
    "Portfolio": _portfolio,
}

#: exponential-time references — only usable on small trees
ORACLES: dict[str, Strategy] = {
    "Exact": _exact,
}

#: the four strategies compared in the paper's Section 6
PAPER_ALGORITHMS = ("OptMinMem", "PostOrderMinIO", "RecExpand", "FullRecExpand")


def register_algorithm(name: str, strategy: Strategy, *, oracle: bool = False) -> None:
    """Register an extra strategy under ``name``.

    The batch engine ships algorithm *names* (not callables) to worker
    processes and resolves them through this registry, so a strategy
    must be registered at import time of its defining module — i.e. at
    module top level, never inside ``if __name__ == "__main__"`` — to be
    visible in every worker.

    Parameters
    ----------
    name:
        Registry key; must not collide with an existing strategy.
    strategy:
        A ``f(tree, memory) -> Traversal`` callable (picklable by
        reference, i.e. a module-level function).
    oracle:
        Register under :data:`ORACLES` (exponential-time references,
        excluded from the default figure comparisons) instead of
        :data:`ALGORITHMS`.
    """
    if name in ALGORITHMS or name in ORACLES:
        raise ValueError(f"algorithm {name!r} is already registered")
    (ORACLES if oracle else ALGORITHMS)[name] = strategy


def strategy_names() -> list[str]:
    """Every currently registered strategy name (heuristics, then oracles).

    Evaluated lazily so strategies registered after import (e.g. via
    :func:`register_algorithm` in a deployment's site module) are visible
    to the CLI and the service's protocol validation alike.
    """
    return sorted(ALGORITHMS) + sorted(ORACLES)


def get_algorithm(name: str) -> Strategy:
    """Resolve a registered strategy by name (heuristics, then oracles)."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        pass
    try:
        return ORACLES[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {strategy_names()}"
        ) from None
