"""Experiment harness: datasets at scale, algorithm registry, figure runners."""

from .datasets import SCALES, Scale, build_synth, build_trees, current_scale
from .figures import (
    FIGURES,
    FigureResult,
    figure4,
    figure5,
    figure8,
    figure9,
    figure10,
    figure11,
    run_comparison,
)
from .registry import ALGORITHMS, ORACLES, PAPER_ALGORITHMS, get_algorithm
from .robustness import SeedSweep, seed_sweep
from .runner import ExperimentReport, report_to_text, run_all

__all__ = [
    "ORACLES",
    "SeedSweep",
    "seed_sweep",
    "ExperimentReport",
    "report_to_text",
    "run_all",
    "Scale",
    "SCALES",
    "current_scale",
    "build_synth",
    "build_trees",
    "ALGORITHMS",
    "PAPER_ALGORITHMS",
    "get_algorithm",
    "FigureResult",
    "run_comparison",
    "figure4",
    "figure5",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "FIGURES",
]
