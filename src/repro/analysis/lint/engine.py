"""The checker framework: one parse, one walk, many rules.

A :class:`Rule` subscribes to AST node types and receives enter-order
callbacks from a single iterative walk per module (the walker keeps an
explicit stack — the no-recursion rule applies to this package too).
Rules see a :class:`ModuleContext` carrying the parsed tree, a
child→parent map, the enclosing class/function scope, the suppression
pragmas, and the ``add`` sink for findings.

Suppression and grandfathering are framework concerns, not rule
concerns:

* a ``# repro: allow(<rule-id>) -- <justification>`` comment suppresses
  matching findings on its own line (and, when the comment stands
  alone, on the line below).  The justification text is **required** —
  a pragma without one does not suppress and is itself reported under
  the ``lint-pragma`` rule;
* a baseline file maps finding *fingerprints* (rule, module, enclosing
  symbol, normalised source line, occurrence index — deliberately not
  the line number, so unrelated edits above a grandfathered finding do
  not churn the file) to grandfathered findings.  Only findings outside
  the baseline count as new.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintError",
    "LintReport",
    "ModuleContext",
    "Pragma",
    "Rule",
    "fingerprint",
    "iter_python_files",
    "load_baseline",
    "module_name_for",
    "run_lint",
]

#: framework-level rule ids (reported like rule findings, never scoped).
PRAGMA_RULE = "lint-pragma"
PARSE_RULE = "parse-error"

#: directory names the file walker never descends into.  ``lint_fixtures``
#: holds deliberately-broken test inputs — lintable only when passed as
#: explicit file arguments.
EXCLUDED_DIRS = frozenset(
    {
        ".git",
        "__pycache__",
        ".venv",
        "venv",
        "build",
        "dist",
        "node_modules",
        ".mypy_cache",
        ".pytest_cache",
        "lint_fixtures",
    }
)

BASELINE_VERSION = 1
REPORT_VERSION = 1


class LintError(Exception):
    """Bad usage of the lint machinery itself (unknown rule, bad path…)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""
    module: str = ""

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format_human(self) -> str:
        where = f"{self.path}:{self.line}:{self.col}"
        return f"{where}: {self.rule}: {self.message}"

    def to_dict(self, *, fingerprint: str = "") -> dict[str, Any]:
        out = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "module": self.module,
        }
        if fingerprint:
            out["fingerprint"] = fingerprint
        return out


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# repro: allow(...)`` suppression comment."""

    line: int
    rules: tuple[str, ...]
    justification: str
    covers: tuple[int, ...]


_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_,\s-]*?)\s*\)\s*(?:--\s*(\S.*))?\s*$"
)
#: any comment that *mentions* the pragma namespace — used to flag
#: malformed spellings that would otherwise silently not suppress.
_PRAGMA_HINT_RE = re.compile(r"#\s*repro:")


def extract_pragmas(source: str) -> tuple[list[Pragma], list[tuple[int, str]]]:
    """All suppression pragmas in ``source`` plus malformed-pragma sites.

    Comments are found with :mod:`tokenize`, never with line regexes, so
    pragma-shaped text inside string literals is ignored.
    """
    pragmas: list[Pragma] = []
    malformed: list[tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas, malformed  # the parse-error finding covers it
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        if not _PRAGMA_HINT_RE.match(tok.string):
            continue
        match = _PRAGMA_RE.match(tok.string)
        if match is None:
            malformed.append(
                (tok.start[0], f"malformed repro pragma {tok.string.strip()!r}")
            )
            continue
        rule_ids = tuple(r.strip() for r in match.group(1).split(",") if r.strip())
        justification = (match.group(2) or "").strip()
        own_line = tok.line[: tok.start[1]].strip() == ""
        covers = (tok.start[0], tok.start[0] + 1) if own_line else (tok.start[0],)
        pragmas.append(Pragma(tok.start[0], rule_ids, justification, covers))
    return pragmas, malformed


class ModuleContext:
    """Everything a rule may ask about the module being walked."""

    def __init__(
        self,
        *,
        path: str,
        module: str,
        source: str,
        tree: ast.Module,
        pragmas: Sequence[Pragma],
        known_rules: frozenset[str],
    ):
        self.path = path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.known_rules = known_rules
        self.findings: list[Finding] = []
        self.suppressed: list[Finding] = []
        #: innermost-last stacks maintained by the walker.
        self.function_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        self.class_stack: list[str] = []
        self.scope_parts: list[str] = []
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self._allow: dict[int, list[Pragma]] = {}
        for pragma in pragmas:
            for line in pragma.covers:
                self._allow.setdefault(line, []).append(pragma)
        self.pragmas = list(pragmas)

    # -- scope helpers -------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def qualname(self) -> str:
        return ".".join(self.scope_parts)

    def in_async_function(self) -> bool:
        """True when the *nearest* enclosing function is ``async def``."""
        return bool(self.function_stack) and isinstance(
            self.function_stack[-1], ast.AsyncFunctionDef
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    # -- the finding sink ----------------------------------------------
    def add(
        self,
        rule: str,
        node: ast.AST | int,
        message: str,
        *,
        symbol: str | None = None,
    ) -> None:
        """Report a finding, honouring any covering suppression pragma."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        finding = Finding(
            rule=rule,
            path=self.path,
            line=line,
            col=col,
            message=message,
            symbol=self.qualname() if symbol is None else symbol,
            module=self.module,
        )
        for pragma in self._allow.get(line, ()):
            if rule in pragma.rules and pragma.justification:
                self.suppressed.append(finding)
                return
        self.findings.append(finding)


class Rule:
    """Base class: subscribe to node types, emit findings through ``ctx``.

    Class attributes
    ----------------
    id:
        stable kebab-case rule id (pragmas and baselines refer to it).
    motivation:
        one line tying the rule to the bug class it guards against.
    scopes:
        module-name prefixes the rule applies to; empty = everywhere.
    node_types:
        AST node classes ``check`` wants to see.
    """

    id = ""
    motivation = ""
    scopes: tuple[str, ...] = ()
    node_types: tuple[type, ...] = ()

    def applies_to(self, module: str) -> bool:
        if not self.scopes:
            return True
        return any(
            module == scope or module.startswith(scope + ".")
            or (scope.endswith(".") and module.startswith(scope))
            for scope in self.scopes
        )

    # walk hooks, all optional ----------------------------------------
    def start_module(self, ctx: ModuleContext) -> None:
        pass

    def check(self, ctx: ModuleContext, node: ast.AST) -> None:
        pass

    def leave_function(
        self, ctx: ModuleContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        pass

    def finish_module(self, ctx: ModuleContext) -> None:
        pass


_SCOPE_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)


def walk_module(ctx: ModuleContext, rules: Sequence[Rule]) -> None:
    """One iterative DFS over the module, dispatching to every rule."""
    for rule in rules:
        rule.start_module(ctx)
    stack: list[tuple[bool, ast.AST]] = [(False, ctx.tree)]
    while stack:
        leaving, node = stack.pop()
        if leaving:
            if isinstance(node, _SCOPE_FUNCS):
                for rule in rules:
                    rule.leave_function(ctx, node)
                ctx.function_stack.pop()
                ctx.scope_parts.pop()
            elif isinstance(node, ast.ClassDef):
                ctx.class_stack.pop()
                ctx.scope_parts.pop()
            continue
        if isinstance(node, _SCOPE_FUNCS):
            ctx.function_stack.append(node)
            ctx.scope_parts.append(node.name)
            stack.append((True, node))
        elif isinstance(node, ast.ClassDef):
            ctx.class_stack.append(node.name)
            ctx.scope_parts.append(node.name)
            stack.append((True, node))
        for rule in rules:
            if isinstance(node, rule.node_types):
                rule.check(ctx, node)
        for child in reversed(list(ast.iter_child_nodes(node))):
            stack.append((False, child))
    for rule in rules:
        rule.finish_module(ctx)


# ----------------------------------------------------------------------
# files and module names
# ----------------------------------------------------------------------
def iter_python_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted, de-duplicated file list.

    Directories are walked recursively, skipping :data:`EXCLUDED_DIRS`;
    explicitly-named files are always included (the escape hatch the
    fixture tests use).  A path that exists but is neither raises
    :class:`LintError`, as does a missing path.
    """
    out: list[str] = []
    seen: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            norm = os.path.normpath(path)
            if norm not in seen:
                seen.add(norm)
                out.append(norm)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in EXCLUDED_DIRS)
                for name in sorted(files):
                    if name.endswith(".py"):
                        norm = os.path.normpath(os.path.join(root, name))
                        if norm not in seen:
                            seen.add(norm)
                            out.append(norm)
        else:
            raise LintError(f"no such file or directory: {path!r}")
    return sorted(out)


def module_name_for(path: str) -> str:
    """Dotted module name for a file path.

    Anchored on the last ``src`` component when present, else the last
    ``repro`` component (so fixture trees that *mirror* the package
    layout — ``tests/lint_fixtures/repro/core/x.py`` — scope exactly
    like the real modules), else the relative path itself.
    """
    parts = list(os.path.normpath(path).split(os.sep))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    anchor = 0
    for i, part in enumerate(parts):
        if part == "src":
            anchor = i + 1
        elif part == "repro" and anchor == 0:
            anchor = i
    parts = [p for p in parts[anchor:] if p not in ("", ".", "..")]
    return ".".join(parts)


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
def fingerprint(finding: Finding, line_text: str, occurrence: int) -> str:
    """Location-independent identity of a finding, for the baseline.

    Line *text* rather than line *number*: edits elsewhere in the file
    must not invalidate grandfathered entries.  ``occurrence``
    disambiguates identical findings (same rule, symbol and source
    text) within one module, in source order.
    """
    payload = "|".join(
        (finding.rule, finding.module, finding.symbol, line_text, str(occurrence))
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def assign_fingerprints(
    findings: Sequence[Finding], line_text_for: dict[tuple[str, int], str]
) -> list[str]:
    """Fingerprints aligned with ``findings`` (occurrence-indexed)."""
    counts: dict[tuple[str, str, str, str], int] = {}
    out: list[str] = []
    for finding in sorted(findings, key=Finding.sort_key):
        text = line_text_for.get((finding.path, finding.line), "")
        group = (finding.rule, finding.module, finding.symbol, text)
        occurrence = counts.get(group, 0)
        counts[group] = occurrence + 1
        out.append(fingerprint(finding, text, occurrence))
    return out


def load_baseline(path: str) -> frozenset[str]:
    """The grandfathered fingerprints in a baseline file."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "fingerprints" not in data:
        raise LintError(f"baseline {path!r} is not a lint baseline file")
    fps = data["fingerprints"]
    if not isinstance(fps, list) or any(not isinstance(f, str) for f in fps):
        raise LintError(f"baseline {path!r}: 'fingerprints' must be a string list")
    return frozenset(fps)


def baseline_document(fingerprints: Iterable[str]) -> dict[str, Any]:
    return {
        "version": BASELINE_VERSION,
        "comment": (
            "Grandfathered lint findings. Regenerate with "
            "'repro-ioschedule lint --write-baseline'; keep empty for src/repro."
        ),
        "fingerprints": sorted(set(fingerprints)),
    }


# ----------------------------------------------------------------------
# the run
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Outcome of one lint run over a file set."""

    findings: list[Finding] = field(default_factory=list)
    fingerprints: list[str] = field(default_factory=list)
    all_fingerprints: list[str] = field(default_factory=list)
    baselined: int = 0
    suppressed: int = 0
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def rule_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "version": REPORT_VERSION,
            "tool": "repro.analysis.lint",
            "findings": [
                finding.to_dict(fingerprint=fp)
                for finding, fp in zip(self.findings, self.fingerprints)
            ],
            "summary": {
                "files": self.files,
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "rules": self.rule_counts(),
            },
        }

    def format_human(self) -> str:
        lines = [finding.format_human() for finding in self.findings]
        lines.append(
            f"{len(self.findings)} finding{'s' if len(self.findings) != 1 else ''} "
            f"({self.suppressed} suppressed, {self.baselined} baselined) "
            f"in {self.files} file{'s' if self.files != 1 else ''}"
        )
        return "\n".join(lines)


def _lint_one_file(
    path: str, rules: Sequence[Rule], known_rules: frozenset[str]
) -> ModuleContext:
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    module = module_name_for(path)
    display = path.replace(os.sep, "/")
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        tree = ast.Module(body=[], type_ignores=[])
        ctx = ModuleContext(
            path=display,
            module=module,
            source=source,
            tree=tree,
            pragmas=(),
            known_rules=known_rules,
        )
        line = getattr(exc, "lineno", None) or 1
        ctx.add(PARSE_RULE, line, f"file does not parse: {exc}", symbol="")
        return ctx
    pragmas, malformed = extract_pragmas(source)
    ctx = ModuleContext(
        path=display,
        module=module,
        source=source,
        tree=tree,
        pragmas=pragmas,
        known_rules=known_rules,
    )
    for line, message in malformed:
        ctx.add(PRAGMA_RULE, line, message, symbol="")
    for pragma in pragmas:
        unknown = [r for r in pragma.rules if r not in known_rules]
        if not pragma.rules:
            ctx.add(
                PRAGMA_RULE,
                pragma.line,
                "pragma names no rule: '# repro: allow(<rule-id>) -- <why>'",
                symbol="",
            )
        if unknown:
            ctx.add(
                PRAGMA_RULE,
                pragma.line,
                f"pragma names unknown rule(s) {unknown}; "
                f"known: {sorted(known_rules)}",
                symbol="",
            )
        if not pragma.justification:
            ctx.add(
                PRAGMA_RULE,
                pragma.line,
                "suppression requires a justification: "
                "'# repro: allow(<rule-id>) -- <why>' (the finding is NOT "
                "suppressed until one is given)",
                symbol="",
            )
    active = [rule for rule in rules if rule.applies_to(module)]
    walk_module(ctx, active)
    return ctx


def run_lint(
    paths: Sequence[str],
    *,
    rules: Sequence[Rule] | None = None,
    baseline: frozenset[str] | None = None,
) -> LintReport:
    """Lint ``paths`` and return the report (framework entry point)."""
    if rules is None:
        from .rules import default_rules

        rules = default_rules()
    known = frozenset({r.id for r in rules} | {PRAGMA_RULE, PARSE_RULE})
    report = LintReport()
    all_findings: list[Finding] = []
    line_text_for: dict[tuple[str, int], str] = {}
    for path in iter_python_files(paths):
        ctx = _lint_one_file(path, rules, known)
        report.files += 1
        report.suppressed += len(ctx.suppressed)
        for finding in ctx.findings:
            line_text_for[(finding.path, finding.line)] = ctx.line_text(finding.line)
        all_findings.extend(ctx.findings)
    all_findings.sort(key=Finding.sort_key)
    fps = assign_fingerprints(all_findings, line_text_for)
    report.all_fingerprints = list(fps)
    baseline = baseline or frozenset()
    for finding, fp in zip(all_findings, fps):
        if fp in baseline:
            report.baselined += 1
        else:
            report.findings.append(finding)
            report.fingerprints.append(fp)
    return report
