"""AST invariant checker: the repo's hand-audited rules as a gated lint pass.

Every invariant in this package was discovered the hard way — a manual
recursion audit of the kernel cores (PR 3), a wall-clock uptime bug and
silently-swallowed gauge callbacks (PR 8), the cache-key field
discipline the API unification rests on (PR 5/7) — and until now lived
only in reviewers' heads.  This package turns them into machine-checked
rules:

* one ``ast.parse`` per file, every checker running in a single walk;
* ``# repro: allow(<rule>) -- <justification>`` suppression pragmas,
  justification text required;
* a committed baseline file for grandfathered findings (new findings
  fail, old ones don't);
* human and JSON output, non-zero exit on new findings.

Entry points: ``repro-ioschedule lint`` and ``python -m repro.analysis``.
"""

from .engine import (
    Finding,
    LintError,
    LintReport,
    Rule,
    fingerprint,
    load_baseline,
    run_lint,
)
from .rules import RULE_IDS, default_rules
from .cli import EXIT_FINDINGS, main

__all__ = [
    "EXIT_FINDINGS",
    "Finding",
    "LintError",
    "LintReport",
    "RULE_IDS",
    "Rule",
    "default_rules",
    "fingerprint",
    "load_baseline",
    "main",
    "run_lint",
]
