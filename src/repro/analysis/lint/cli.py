"""Command-line front end: ``repro-ioschedule lint`` / ``python -m repro.analysis``.

Exit codes follow the CLI contract of :mod:`repro.api.errors`:
``0`` clean (no new findings), ``1`` new findings, ``2`` bad usage
(missing path, unknown rule, unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from ...api.errors import EXIT_BAD_INPUT, EXIT_OK, EXIT_TRANSPORT
from .engine import LintError, baseline_document, load_baseline, run_lint
from .rules import ALL_RULES, RULE_IDS, default_rules

__all__ = ["EXIT_FINDINGS", "add_lint_arguments", "main", "run_from_args"]

#: new findings exit with the "something went wrong that is not your
#: arguments" class of the existing contract (same value as
#: :data:`~repro.api.errors.EXIT_TRANSPORT`).
EXIT_FINDINGS = EXIT_TRANSPORT

#: the default baseline location; silently empty when the file does not
#: exist (an *explicitly* named baseline must exist — exit 2 otherwise).
DEFAULT_BASELINE = "lint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared by both entry points)."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="report rendering (default: human)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline of grandfathered findings (default: {DEFAULT_BASELINE} "
             "if present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write every current finding to the baseline file and exit 0",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the report to FILE (exit code is unaffected)",
    )
    parser.add_argument(
        "--rule", action="append", metavar="ID", dest="rules",
        help="run only this rule id (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )


def _list_rules() -> int:
    width = max(len(rule.id) for rule in ALL_RULES)
    for rule in ALL_RULES:
        scope = ", ".join(rule.scopes) if rule.scopes else "everywhere"
        print(f"{rule.id:<{width}}  [{scope}]  {rule.motivation}")
    return EXIT_OK


def run_from_args(args: argparse.Namespace) -> int:
    """Execute one lint run from parsed arguments; returns the exit code."""
    if args.list_rules:
        return _list_rules()
    try:
        rules = default_rules(args.rules)
        baseline_path = args.baseline
        baseline = frozenset()
        if args.write_baseline:
            baseline_path = baseline_path or DEFAULT_BASELINE
        elif baseline_path is not None:
            baseline = load_baseline(baseline_path)
        else:
            try:
                baseline = load_baseline(DEFAULT_BASELINE)
            except FileNotFoundError:
                baseline = frozenset()
        report = run_lint(args.paths, rules=rules, baseline=baseline)
    except (LintError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT

    if args.write_baseline:
        document = baseline_document(report.all_fingerprints)
        with open(baseline_path, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(
            f"baseline written to {baseline_path} "
            f"({len(document['fingerprints'])} fingerprints)"
        )
        return EXIT_OK

    if args.format == "json":
        rendered = json.dumps(report.to_json_dict(), indent=2, sort_keys=True)
    else:
        rendered = report.format_human()
    print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(rendered)
            fh.write("\n")
    return EXIT_OK if report.clean else EXIT_FINDINGS


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST invariant checker: the repo's hand-audited rules "
            f"({', '.join(RULE_IDS)}) as a gated lint pass"
        ),
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
