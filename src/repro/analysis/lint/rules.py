"""The repo-specific rules, each grounded in a real past bug.

==========================  =========================================
rule id                     the bug it makes impossible to reintroduce
==========================  =========================================
``no-recursion``            PR 3's manual audit: kernel cores must be
                            iterative (million-node trees died with
                            ``RecursionError``)
``monotonic-clock``         PR 8's uptime bug: ``time.time()`` deltas
                            jump on NTP steps
``no-blocking-in-async``    event-loop stalls: sync sleeps/IO inside
                            ``async def`` freeze every connection
``no-swallowed-exceptions`` PR 8's ``Gauge`` bug: broad handlers that
                            neither count, log nor re-raise hide
                            failures forever
``cache-key-discipline``    PR 5/7's rule: every request field is in
                            the canonical key or explicitly excluded
``error-taxonomy``          one error vocabulary: every code exists in
                            ``api.errors`` and maps to an HTTP status
==========================  =========================================
"""

from __future__ import annotations

import ast
from typing import Any

from .engine import ModuleContext, Rule

__all__ = ["ALL_RULES", "RULE_IDS", "default_rules"]


def _call_target(func: ast.AST) -> str | None:
    """Best-effort dotted name of a call target (``a.b.c`` or ``name``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        base = _call_target(func.value)
        return f"{base}.{func.attr}" if base is not None else None
    return None


class _ImportAliases:
    """Track how a module is reachable in this file: aliases + from-imports."""

    def __init__(self, module: str, names: tuple[str, ...]):
        self.module = module
        self.interesting = names
        self.module_aliases: set[str] = set()
        #: local name -> original name, for ``from module import name [as x]``
        self.from_names: dict[str, str] = {}

    def see(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == self.module:
                    self.module_aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == self.module:
            for alias in node.names:
                if alias.name in self.interesting:
                    self.from_names[alias.asname or alias.name] = alias.name

    def resolves(self, call: ast.Call, name: str) -> bool:
        """Does this call target ``module.name`` under any local spelling?"""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == name:
            return (
                isinstance(func.value, ast.Name)
                and func.value.id in self.module_aliases
            )
        if isinstance(func, ast.Name):
            return self.from_names.get(func.id) == name
        return False


# ----------------------------------------------------------------------
# no-recursion
# ----------------------------------------------------------------------
class NoRecursionRule(Rule):
    """Direct or mutual recursion is forbidden in the kernel packages.

    PR 3 converted every per-node recursion in the cores to explicit
    stacks so million-node trees survive; this rule makes that audit
    permanent.  Resolution is lexical and conservative: plain-name
    calls resolve through the enclosing scopes of the call site,
    ``self.x()``/``cls.x()`` through the enclosing class.
    """

    id = "no-recursion"
    motivation = "PR 3 recursion audit: kernels must survive million-node trees"
    scopes = ("repro.core", "repro.io")
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Call)

    def start_module(self, ctx: ModuleContext) -> None:
        self._funcs: dict[str, ast.AST] = {}
        self._edges: list[tuple[str, str, str, tuple[str, ...]]] = []

    def check(self, ctx: ModuleContext, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._funcs[ctx.qualname()] = node
            return
        assert isinstance(node, ast.Call)
        if not ctx.function_stack:
            return
        caller = ctx.qualname()
        scope = tuple(ctx.scope_parts)
        func = node.func
        if isinstance(func, ast.Name):
            self._edges.append((caller, "plain", func.id, scope))
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and ctx.class_stack
        ):
            self._edges.append((caller, "method", func.attr, (ctx.class_stack[-1],)))

    def _resolve(self, kind: str, name: str, scope: tuple[str, ...]) -> str | None:
        if kind == "plain":
            for depth in range(len(scope), -1, -1):
                candidate = ".".join((*scope[:depth], name))
                if candidate in self._funcs:
                    return candidate
            return None
        suffix = f"{scope[0]}.{name}"
        for qualname in self._funcs:
            if qualname == suffix or qualname.endswith("." + suffix):
                return qualname
        return None

    def finish_module(self, ctx: ModuleContext) -> None:
        graph: dict[str, set[str]] = {q: set() for q in self._funcs}
        for caller, kind, name, scope in self._edges:
            target = self._resolve(kind, name, scope)
            if target is not None and caller in graph:
                graph[caller].add(target)
        for qualname, cycle in _recursion_cycles(graph).items():
            node = self._funcs[qualname]
            if len(cycle) == 1:
                message = (
                    f"'{qualname}' calls itself; kernel code must be iterative "
                    "(explicit stack) — the PR 3 recursion audit, made permanent"
                )
            else:
                ring = " -> ".join((*cycle, cycle[0]))
                message = (
                    f"'{qualname}' is part of a mutual-recursion cycle "
                    f"({ring}); kernel code must be iterative (explicit stack)"
                )
            ctx.add(self.id, node, message, symbol=qualname)


def _recursion_cycles(graph: dict[str, set[str]]) -> dict[str, tuple[str, ...]]:
    """Map each function on a cycle to its strongly connected component.

    Iterative Tarjan — this module practices what the rule preaches.
    """
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: dict[str, bool] = {}
    scc_stack: list[str] = []
    counter = [0]
    result: dict[str, tuple[str, ...]] = {}

    for root in graph:
        if root in index:
            continue
        work: list[tuple[str, list[str], int]] = [(root, sorted(graph[root]), 0)]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        scc_stack.append(root)
        on_stack[root] = True
        while work:
            node, children, i = work.pop()
            advanced = False
            while i < len(children):
                child = children[i]
                i += 1
                if child not in index:
                    work.append((node, children, i))
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    scc_stack.append(child)
                    on_stack[child] = True
                    work.append((child, sorted(graph[child]), 0))
                    advanced = True
                    break
                if on_stack.get(child):
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = scc_stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                component.reverse()
                if len(component) > 1 or node in graph[node]:
                    for member in component:
                        result[member] = tuple(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result


# ----------------------------------------------------------------------
# monotonic-clock
# ----------------------------------------------------------------------
class MonotonicClockRule(Rule):
    """``time.time()`` may not feed duration/uptime arithmetic.

    PR 8 moved uptime to ``time.monotonic()`` after an NTP step made
    the wall-clock uptime jump.  Wall clock stays legal for
    log-correlation timestamps (``{"ts": time.time()}`` — a plain
    value, no arithmetic); any subtraction/comparison chain is not.
    Detected both directly (``time.time() - t0``) and through a local
    variable (``t0 = time.time() … delta = now - t0``).
    """

    id = "monotonic-clock"
    motivation = "PR 8 uptime bug: wall-clock deltas jump on NTP steps"
    scopes = ("repro.service", "repro.obs")
    node_types = (
        ast.Import,
        ast.ImportFrom,
        ast.Call,
        ast.BinOp,
        ast.Compare,
        ast.AugAssign,
    )

    _ARITH = (ast.BinOp, ast.Compare, ast.AugAssign, ast.UnaryOp)

    def start_module(self, ctx: ModuleContext) -> None:
        self._time = _ImportAliases("time", ("time",))
        #: per-function-id: {var name: the time.time() call that fed it}
        self._assigned: dict[int, dict[str, ast.Call]] = {}
        #: per-function-id: names used as direct arithmetic operands
        self._arith_names: dict[int, set[str]] = {}

    def _scope_id(self, ctx: ModuleContext) -> int:
        return id(ctx.function_stack[-1]) if ctx.function_stack else 0

    def check(self, ctx: ModuleContext, node: ast.AST) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            self._time.see(node)
            return
        scope = self._scope_id(ctx)
        if isinstance(node, (ast.BinOp, ast.Compare, ast.AugAssign)):
            names = self._arith_names.setdefault(scope, set())
            operands: list[ast.AST] = []
            if isinstance(node, ast.BinOp):
                operands = [node.left, node.right]
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
            else:
                operands = [node.target, node.value]
            for operand in operands:
                if isinstance(operand, ast.Name):
                    names.add(operand.id)
            return
        assert isinstance(node, ast.Call)
        if not self._time.resolves(node, "time"):
            return
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.stmt):
                break
            if isinstance(ancestor, self._ARITH):
                ctx.add(
                    self.id,
                    node,
                    "time.time() feeds duration arithmetic; use "
                    "time.monotonic() or time.perf_counter() (wall clock is "
                    "for log-correlation timestamps only — the PR 8 uptime bug)",
                )
                return
        parent = ctx.parent(node)
        if (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            self._assigned.setdefault(scope, {})[parent.targets[0].id] = node

    def _flush(self, ctx: ModuleContext, scope: int) -> None:
        assigned = self._assigned.pop(scope, {})
        arith = self._arith_names.pop(scope, set())
        for name, call in assigned.items():
            if name in arith:
                ctx.add(
                    self.id,
                    call,
                    f"wall-clock value {name!r} (= time.time()) is used in "
                    "arithmetic later in this scope; use time.monotonic() or "
                    "time.perf_counter() for durations",
                )

    def leave_function(self, ctx: ModuleContext, node: ast.AST) -> None:
        self._flush(ctx, id(node))

    def finish_module(self, ctx: ModuleContext) -> None:
        self._flush(ctx, 0)


# ----------------------------------------------------------------------
# no-blocking-in-async
# ----------------------------------------------------------------------
class NoBlockingInAsyncRule(Rule):
    """No synchronous sleeps, sockets, file or cache I/O in ``async def``.

    One blocking call inside the event loop stalls every pipelined
    connection at once.  Flags ``time.sleep``, bare ``open``,
    ``socket.*`` constructors, and direct ``ResultCache`` disk calls
    (``…cache.get/put/peek``) when the *nearest* enclosing function is
    ``async def`` — a sync helper nested inside (destined for
    ``run_in_executor``) is fine, as is handing the bound method itself
    to ``loop.run_in_executor(None, self.cache.get, key)``.
    """

    id = "no-blocking-in-async"
    motivation = "a blocking call in the event loop stalls every connection"
    scopes = ("repro.service",)
    node_types = (ast.Import, ast.ImportFrom, ast.Call)

    _CACHE_ATTRS = frozenset({"get", "put", "peek"})

    def start_module(self, ctx: ModuleContext) -> None:
        self._time = _ImportAliases("time", ("sleep",))
        self._socket = _ImportAliases(
            "socket", ("socket", "create_connection", "socketpair")
        )

    def check(self, ctx: ModuleContext, node: ast.AST) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            self._time.see(node)
            self._socket.see(node)
            return
        assert isinstance(node, ast.Call)
        if not ctx.in_async_function():
            return
        blocked = self._blocking_name(node)
        if blocked is not None:
            fn = ctx.function_stack[-1].name
            ctx.add(
                self.id,
                node,
                f"blocking call {blocked} inside 'async def {fn}'; await an "
                "asyncio primitive or hand it to loop.run_in_executor(...)",
            )

    def _blocking_name(self, call: ast.Call) -> str | None:
        if self._time.resolves(call, "sleep"):
            return "time.sleep(...)"
        for name in self._socket.interesting:
            if self._socket.resolves(call, name):
                return f"socket.{name}(...)"
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "open(...)"
        if isinstance(func, ast.Attribute) and func.attr in self._CACHE_ATTRS:
            owner = _call_target(func.value)
            if owner is not None and owner.lower().split(".")[-1].endswith("cache"):
                return f"{owner}.{func.attr}(...) (ResultCache disk I/O)"
        return None


# ----------------------------------------------------------------------
# no-swallowed-exceptions
# ----------------------------------------------------------------------
class SwallowedExceptionsRule(Rule):
    """A broad handler must count, log, or re-raise — never just pass.

    The PR 8 ``Gauge`` bug class: scrape callbacks failed inside
    ``except Exception: return 0`` and the outage was invisible for a
    whole PR cycle.  A handler for ``except:``/``Exception``/
    ``BaseException`` whose body contains no call (log, counter,
    cleanup), no ``raise`` and no counter increment is a finding;
    narrow handlers (``except KeyError: pass``) are a legitimate idiom
    and stay legal.
    """

    id = "no-swallowed-exceptions"
    motivation = "PR 8 Gauge bug: broad silent handlers hide outages"
    node_types = (ast.Try,)

    _BROAD = frozenset({"Exception", "BaseException"})

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for node in types:
            name = node.attr if isinstance(node, ast.Attribute) else getattr(node, "id", None)
            if name in self._BROAD:
                return True
        return False

    def check(self, ctx: ModuleContext, node: ast.AST) -> None:
        assert isinstance(node, ast.Try)
        for handler in node.handlers:
            if not self._is_broad(handler):
                continue
            acts = any(
                isinstance(sub, (ast.Call, ast.Raise, ast.AugAssign))
                for stmt in handler.body
                for sub in ast.walk(stmt)
            )
            if not acts:
                caught = "except:" if handler.type is None else "a broad except"
                ctx.add(
                    self.id,
                    handler,
                    f"{caught} handler swallows the exception without a "
                    "counter increment, log call, or re-raise — the PR 8 "
                    "Gauge bug class; make the failure observable",
                )


# ----------------------------------------------------------------------
# cache-key-discipline
# ----------------------------------------------------------------------
class CacheKeyDisciplineRule(Rule):
    """Every request field is in the canonical key or explicitly excluded.

    The PR 5/7 invariant behind result-cache correctness: a field that
    changes the output but not the key serves stale results to every
    backend at once.  For each ``CanonicalRequest`` subclass (or
    ``*Request`` dataclass), every dataclass field declared in the
    class body must be referenced as ``self.<field>`` inside the
    class's own ``key_params``/``key_buffers``, or listed in its
    ``key_excluded`` frozenset with the reason documented at the field.
    ``key_excluded`` entries that name no declared field are typos and
    are flagged too.
    """

    id = "cache-key-discipline"
    motivation = "PR 5/7: a keyless output-changing field serves stale cache hits"
    node_types = (ast.ClassDef,)

    _KEY_METHODS = frozenset({"key_params", "key_buffers"})

    def check(self, ctx: ModuleContext, node: ast.AST) -> None:
        assert isinstance(node, ast.ClassDef)
        base_names = {
            b.attr if isinstance(b, ast.Attribute) else getattr(b, "id", "")
            for b in node.bases
        }
        if not any(
            name == "CanonicalRequest" or (name.endswith("Request") and name != "Request")
            for name in base_names
        ):
            return
        fields: dict[str, ast.AnnAssign] = {}
        excluded: set[str] = set()
        excluded_node: ast.AST | None = None
        #: per method: every ``self.<attr>`` it touches (fields AND helper
        #: methods — ``key_buffers`` legitimately reaches fields through
        #: ``self.tree_columns()``, so the key set is the closure below).
        touches: dict[str, set[str]] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                annotation = ast.dump(stmt.annotation)
                if name == "key_excluded":
                    excluded_node = stmt
                    excluded |= self._string_constants(stmt.value)
                elif not name.startswith("_") and "ClassVar" not in annotation:
                    fields[name] = stmt
            elif isinstance(stmt, ast.Assign):
                targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
                if "key_excluded" in targets:
                    excluded_node = stmt
                    excluded |= self._string_constants(stmt.value)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                attrs = {
                    sub.attr
                    for sub in ast.walk(stmt)
                    if isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                }
                touches[stmt.name] = attrs
        if not fields and not excluded:
            return
        referenced: set[str] = set()
        queue = [m for m in self._KEY_METHODS if m in touches]
        seen_methods: set[str] = set(queue)
        while queue:
            attrs = touches[queue.pop()]
            referenced |= attrs
            for helper in attrs & set(touches):
                if helper not in seen_methods:
                    seen_methods.add(helper)
                    queue.append(helper)
        for name, stmt in fields.items():
            if name not in referenced and name not in excluded:
                ctx.add(
                    self.id,
                    stmt,
                    f"field {name!r} of {node.name} is neither part of the "
                    "canonical key (key_params/key_buffers) nor listed in "
                    "key_excluded; an output-changing field outside the key "
                    "serves stale cache hits",
                    symbol=f"{ctx.qualname()}.{name}" if ctx.qualname() else name,
                )
        for name in sorted(excluded - set(fields)):
            ctx.add(
                self.id,
                excluded_node if excluded_node is not None else node,
                f"key_excluded entry {name!r} names no field declared on "
                f"{node.name}; remove it or fix the typo",
            )

    @staticmethod
    def _string_constants(node: ast.AST | None) -> set[str]:
        if node is None:
            return set()
        return {
            sub.value
            for sub in ast.walk(node)
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
        }


# ----------------------------------------------------------------------
# error-taxonomy
# ----------------------------------------------------------------------
class ErrorTaxonomyRule(Rule):
    """Every error-code literal exists in the one taxonomy.

    ``repro.api.errors.HTTP_STATUS`` is the single vocabulary (and
    ``ERROR_CODES`` its key set): a code constructed anywhere —
    ``ProtocolError``, ``api_error``, ``error_envelope``, ``_fail`` —
    that the taxonomy does not know would reach clients without an HTTP
    status or a CLI exit class.  The rule also pins, inside
    ``repro.api.errors`` itself, that ``ERROR_CODES`` stays derived
    from ``HTTP_STATUS`` (so "every code has a status" holds by
    construction).
    """

    id = "error-taxonomy"
    motivation = "one error vocabulary on every surface (PR 5 taxonomy)"
    node_types = (ast.Call, ast.Assign)

    _CONSTRUCTORS = frozenset(
        {"ProtocolError", "BackendError", "ApiError", "api_error",
         "error_envelope", "_fail"}
    )

    def __init__(self) -> None:
        from ...api.errors import ERROR_CODES

        #: ``transport`` is the one out-of-band code: connection-level
        #: failures that never produced an envelope (status 0).
        self._known = frozenset(ERROR_CODES) | {"transport"}

    def check(self, ctx: ModuleContext, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            self._check_derivation(ctx, node)
            return
        assert isinstance(node, ast.Call)
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
        if name not in self._CONSTRUCTORS or not node.args:
            return
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            code = first.value
            if code not in self._known:
                ctx.add(
                    self.id,
                    first,
                    f"error code {code!r} is not in repro.api.errors."
                    "ERROR_CODES; add it to HTTP_STATUS (with its status) "
                    "or use an existing code",
                )

    def _check_derivation(self, ctx: ModuleContext, node: ast.Assign) -> None:
        if ctx.module != "repro.api.errors":
            return
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "ERROR_CODES" not in targets:
            return
        value = node.value
        derived = (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "frozenset"
            and len(value.args) == 1
            and isinstance(value.args[0], ast.Name)
            and value.args[0].id == "HTTP_STATUS"
        )
        if not derived:
            ctx.add(
                self.id,
                node,
                "ERROR_CODES must stay frozenset(HTTP_STATUS) so every code "
                "has an HTTP status by construction",
            )


ALL_RULES: tuple[type[Rule], ...] = (
    NoRecursionRule,
    MonotonicClockRule,
    NoBlockingInAsyncRule,
    SwallowedExceptionsRule,
    CacheKeyDisciplineRule,
    ErrorTaxonomyRule,
)

RULE_IDS: tuple[str, ...] = tuple(rule.id for rule in ALL_RULES)


def default_rules(only: Any = None) -> list[Rule]:
    """Instances of every registered rule (optionally filtered by id)."""
    if only is not None:
        unknown = set(only) - set(RULE_IDS)
        if unknown:
            from .engine import LintError

            raise LintError(
                f"unknown rule id(s) {sorted(unknown)}; available: {list(RULE_IDS)}"
            )
        return [rule() for rule in ALL_RULES if rule.id in set(only)]
    return [rule() for rule in ALL_RULES]
