"""Memory bounds framing every experiment (Section 6.1).

For a tree ``T``:

* ``LB = max_i wbar_i`` — below this not even a single task fits, so no
  traversal exists;
* ``Peak_incore`` — the MinMem optimum (Liu): with this much memory no
  I/O is ever needed.

I/O is therefore only interesting for ``M in [LB, Peak_incore - 1]``.  The
paper evaluates three points of that interval: ``M1 = LB`` (Appendix B),
``Mmid = (LB + Peak_incore - 1) / 2`` (Section 6) and
``M2 = Peak_incore - 1`` (Appendix B).  Trees with ``Peak_incore == LB``
(no I/O regime at all) are dropped from the datasets, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.liu import min_peak_memory
from ..core.tree import TaskTree

__all__ = ["MemoryBounds", "memory_bounds", "paper_memory_grid", "requires_io"]


@dataclass(frozen=True)
class MemoryBounds:
    """The feasible-memory interval of one tree."""

    lb: int
    peak_incore: int

    @property
    def m1(self) -> int:
        """The tightest feasible bound (Appendix B's ``M1``)."""
        return self.lb

    @property
    def m2(self) -> int:
        """The loosest bound still forcing I/O (Appendix B's ``M2``)."""
        return self.peak_incore - 1

    @property
    def mid(self) -> int:
        """The paper's main-study bound ``(LB + Peak_incore - 1) / 2``."""
        return (self.lb + self.peak_incore - 1) // 2

    @property
    def has_io_regime(self) -> bool:
        """True iff some memory bound forces I/O (``Peak > LB``)."""
        return self.peak_incore > self.lb

    def grid(self) -> dict[str, int]:
        """The three paper bounds keyed by their names."""
        return {"M1": self.m1, "Mmid": self.mid, "M2": self.m2}


def memory_bounds(tree: TaskTree) -> MemoryBounds:
    """Compute ``LB`` and ``Peak_incore`` for a tree."""
    return MemoryBounds(lb=tree.min_feasible_memory(), peak_incore=min_peak_memory(tree))


def paper_memory_grid(tree: TaskTree) -> dict[str, int]:
    """Shortcut for :meth:`MemoryBounds.grid`."""
    return memory_bounds(tree).grid()


def requires_io(tree: TaskTree) -> bool:
    """True iff the tree has a memory regime where I/O is unavoidable."""
    return memory_bounds(tree).has_io_regime
