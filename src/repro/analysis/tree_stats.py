"""Shape and weight statistics of task trees.

Used to characterise datasets in EXPERIMENTS.md (the paper reports the
same kinds of numbers about its collections: node counts, tree shapes,
how far apart LB and the in-core peak sit) and to sanity-check that the
synthetic TREES substitute behaves like elimination trees (shallow, fat,
heavy-tailed weights) rather than like random graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core import kernels
from ..core.arraytree import ArrayTree
from ..core.tree import TaskTree
from .bounds import memory_bounds

__all__ = ["TreeStats", "tree_stats", "dataset_table"]


@dataclass(frozen=True)
class TreeStats:
    """One tree's headline numbers."""

    n: int
    depth: int
    leaves: int
    max_arity: int
    mean_arity_internal: float
    total_weight: int
    max_weight: int
    weight_cv: float  # coefficient of variation of the output sizes
    lb: int
    peak_incore: int

    @property
    def io_regime_width(self) -> int:
        """How many memory values force I/O (0 = nothing to study)."""
        return max(0, self.peak_incore - self.lb)

    @property
    def balance(self) -> float:
        """Depth relative to the star/chain extremes: 0 = star, 1 = chain."""
        if self.n <= 1:
            return 0.0
        return (self.depth - 1) / (self.n - 1)

    def row(self) -> str:
        return (
            f"{self.n:>6} {self.depth:>6} {self.leaves:>6} {self.max_arity:>5} "
            f"{self.total_weight:>10} {self.weight_cv:>6.2f} "
            f"{self.lb:>8} {self.peak_incore:>8} {self.io_regime_width:>7}"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'n':>6} {'depth':>6} {'leaves':>6} {'arity':>5} "
            f"{'weight':>10} {'w-cv':>6} {'LB':>8} {'peak':>8} {'regime':>7}"
        )


def tree_stats(tree: TaskTree | ArrayTree) -> TreeStats:
    """Compute all statistics for one tree (object or flat representation).

    :class:`ArrayTree` inputs take the one-pass
    :func:`repro.core.kernels.structure_stats` kernel instead of building
    per-node arity lists — the difference between characterising a
    million-node dataset in seconds versus minutes.
    """
    if isinstance(tree, ArrayTree):
        shape = kernels.structure_stats(tree)
        depth = shape["depth"]
        leaves = shape["leaves"]
        max_arity = shape["max_arity"]
        mean_arity = float(shape["mean_arity_internal"])
    else:
        arities = [len(c) for c in tree.children]
        internal = [a for a in arities if a > 0]
        depth = tree.depth()
        leaves = len(tree.leaves())
        max_arity = max(arities)
        mean_arity = float(np.mean(internal)) if internal else 0.0
    weights = np.asarray(tree.weights, dtype=float)
    mean_w = weights.mean()
    cv = float(weights.std() / mean_w) if mean_w > 0 else 0.0
    bounds = memory_bounds(tree)
    return TreeStats(
        n=tree.n,
        depth=depth,
        leaves=leaves,
        max_arity=max_arity,
        mean_arity_internal=mean_arity,
        total_weight=tree.total_weight(),
        max_weight=max(tree.weights),
        weight_cv=cv,
        lb=bounds.lb,
        peak_incore=bounds.peak_incore,
    )


def dataset_table(trees: Sequence[TaskTree], name: str = "dataset") -> str:
    """A printable per-tree table plus aggregate line for a dataset."""
    stats = [tree_stats(t) for t in trees]
    lines = [f"{name}: {len(trees)} trees", TreeStats.header()]
    lines += [s.row() for s in stats]
    if stats:
        with_regime = sum(1 for s in stats if s.io_regime_width > 0)
        lines.append(
            f"-- {with_regime}/{len(stats)} trees have an I/O regime; "
            f"median n = {int(np.median([s.n for s in stats]))}, "
            f"median depth = {int(np.median([s.depth for s in stats]))}"
        )
    return "\n".join(lines)
