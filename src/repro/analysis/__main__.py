"""``python -m repro.analysis`` — run the AST invariant checker."""

import sys

from .lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
