"""Evaluation machinery: memory bounds, metrics, performance profiles."""

from .bounds import MemoryBounds, memory_bounds, paper_memory_grid, requires_io
from .metrics import best_performance, overhead, performance
from .profiles import (
    PerformanceProfile,
    ProfileCurve,
    build_profile,
    profile_from_io,
    render_ascii,
    to_csv,
)
from .tree_stats import TreeStats, dataset_table, tree_stats

__all__ = [
    "MemoryBounds",
    "memory_bounds",
    "paper_memory_grid",
    "requires_io",
    "performance",
    "overhead",
    "best_performance",
    "PerformanceProfile",
    "ProfileCurve",
    "build_profile",
    "profile_from_io",
    "render_ascii",
    "to_csv",
    "TreeStats",
    "tree_stats",
    "dataset_table",
]
