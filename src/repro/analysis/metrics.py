"""Performance metrics of Section 6.2.

Raw I/O volumes are incomparable across instances (10 I/Os mean something
different with ``M = 10`` than with ``M = 1000``), so the paper normalises
a schedule performing ``k`` I/Os under memory ``M`` to

.. math::  \\text{perf} = (M + k) / M

— 1.0 for an I/O-free schedule, 2.0 for a full memory's worth of writes.
Overheads in the performance profiles are *relative to the best observed
performance on that instance*.
"""

from __future__ import annotations

__all__ = ["performance", "overhead", "best_performance"]


def performance(memory: int, io_volume: int) -> float:
    """The paper's normalised metric ``(M + k) / M``."""
    if memory <= 0:
        raise ValueError(f"memory bound must be positive, got {memory}")
    if io_volume < 0:
        raise ValueError(f"I/O volume cannot be negative, got {io_volume}")
    return (memory + io_volume) / memory


def best_performance(perfs: dict[str, float]) -> float:
    """Best (lowest) performance among the algorithms on one instance."""
    if not perfs:
        raise ValueError("no performances given")
    return min(perfs.values())


def overhead(perf: float, best: float) -> float:
    """Relative overhead of ``perf`` versus the instance best, in [0, ∞)."""
    if best <= 0:
        raise ValueError(f"best performance must be positive, got {best}")
    return perf / best - 1.0
