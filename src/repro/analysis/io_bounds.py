"""Lower bounds on the optimal I/O volume of heterogeneous trees.

The paper gives no general lower bound besides brute force; these are the
two sound ones we use to sandwich the heuristics in tests and to report
certified optimality in the experiment tables:

* **Peak bound** — for *any* schedule ``sigma``, at the step where its
  unbounded-memory usage peaks the resident parts must fit in ``M``, so
  the active outputs carry at least ``peak(sigma) - M`` evicted units:
  ``io(sigma) >= peak(sigma) - M >= Peak_incore - M``.
* **Homogeneous bound** — on unit-weight trees the Section 4.2 label sum
  ``W(T)`` is exact (Theorem 4), hence also a lower bound.

A tempting refinement — summing peak deficits over disjoint subtrees — is
**unsound**: an output active at both subtrees' peak steps would have its
eviction counted twice.  We document it here so nobody re-adds it.
(The figure 2(a) family shows how weak the peak bound can be anyway:
its optimum is 1 I/O with a peak of only ``M + 1``, while PostOrderMinIO
pays ``Ω(nM)`` — lower bounds cannot separate heuristics there.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.homogeneous import optimal_io as homogeneous_optimal_io
from ..algorithms.liu import min_peak_memory
from ..core.tree import TaskTree

__all__ = ["IOLowerBound", "peak_io_lower_bound", "io_lower_bound"]


@dataclass(frozen=True)
class IOLowerBound:
    """A certified lower bound with its provenance."""

    value: int
    source: str  # "peak" | "homogeneous" | "trivial"
    #: True when the bound is known to be attained (homogeneous trees)
    exact: bool = False


def peak_io_lower_bound(tree: TaskTree, memory: int) -> int:
    """``max(0, Peak_incore - M)``: sound for every tree.

    Any traversal's schedule has unbounded-memory peak at least Liu's
    optimum; everything above ``M`` at the peak step must be on disk.
    """
    return max(0, min_peak_memory(tree) - memory)


def io_lower_bound(tree: TaskTree, memory: int) -> IOLowerBound:
    """The best known certified lower bound for ``tree`` at ``memory``.

    On homogeneous trees this is the exact optimum ``W(T)``; otherwise
    the peak bound (which may be far from tight — see the module notes).
    """
    if memory < tree.min_feasible_memory():
        raise ValueError(
            f"memory {memory} below feasibility bound {tree.min_feasible_memory()}"
        )
    if all(w == 1 for w in tree.weights):
        return IOLowerBound(
            value=homogeneous_optimal_io(tree, memory),
            source="homogeneous",
            exact=True,
        )
    peak = peak_io_lower_bound(tree, memory)
    if peak > 0:
        return IOLowerBound(value=peak, source="peak")
    return IOLowerBound(value=0, source="trivial")
