"""Statistical backing for the experiment tables.

Performance profiles summarise *point* comparisons; this module adds the
uncertainty quantification a careful reader asks for:

* :func:`bootstrap_ci` — percentile bootstrap confidence interval of any
  statistic of one sample (e.g. the mean overhead of an algorithm);
* :func:`paired_permutation_test` — sign-flip permutation test for the
  mean paired difference (does algorithm A really beat B on this
  dataset, or is it seed noise?);
* :func:`wilcoxon_signed_rank` — the classical nonparametric paired test
  (scipy), with the zero-difference degenerate case handled;
* :func:`win_tie_loss` / :func:`pairwise_comparison` — the head-to-head
  tables printed in EXPERIMENTS.md.

All resampling takes an explicit seed: reports must be reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np
from scipy import stats

__all__ = [
    "bootstrap_ci",
    "paired_permutation_test",
    "wilcoxon_signed_rank",
    "win_tie_loss",
    "PairwiseComparison",
    "pairwise_comparison",
]


def bootstrap_ci(
    values: Sequence[float],
    *,
    statistic: Callable[[np.ndarray], float] = np.mean,
    n_boot: int = 2000,
    alpha: float = 0.05,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap ``(1 - alpha)`` CI of ``statistic(values)``."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if arr.size == 1:
        return (float(arr[0]), float(arr[0]))
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    boots = np.apply_along_axis(statistic, 1, arr[idx])
    lo, hi = np.quantile(boots, [alpha / 2, 1 - alpha / 2])
    return (float(lo), float(hi))


def paired_permutation_test(
    a: Sequence[float],
    b: Sequence[float],
    *,
    n_perm: int = 5000,
    seed: int = 0,
) -> float:
    """Two-sided sign-flip permutation p-value for ``mean(a - b) != 0``.

    Exact under the null that the paired differences are symmetric around
    zero; it makes no distributional assumption, which matters because
    I/O overheads are heavily skewed.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"paired samples differ in length: {a.shape} vs {b.shape}")
    diff = a - b
    observed = abs(diff.mean())
    if np.allclose(diff, 0):
        return 1.0
    rng = np.random.default_rng(seed)
    signs = rng.choice([-1.0, 1.0], size=(n_perm, diff.size))
    null = np.abs((signs * diff).mean(axis=1))
    # +1 smoothing: the observed statistic is one of the permutations.
    return float((np.sum(null >= observed - 1e-15) + 1) / (n_perm + 1))


def wilcoxon_signed_rank(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sided Wilcoxon signed-rank p-value (1.0 when all pairs tie)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"paired samples differ in length: {a.shape} vs {b.shape}")
    if np.allclose(a, b):
        return 1.0
    return float(stats.wilcoxon(a, b, zero_method="zsplit").pvalue)


def win_tie_loss(
    a: Sequence[float], b: Sequence[float], *, tol: float = 1e-12
) -> tuple[int, int, int]:
    """``(wins, ties, losses)`` of ``a`` against ``b`` (lower is better)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"paired samples differ in length: {a.shape} vs {b.shape}")
    wins = int(np.sum(a < b - tol))
    losses = int(np.sum(a > b + tol))
    return wins, int(a.size - wins - losses), losses


@dataclass(frozen=True)
class PairwiseComparison:
    """One head-to-head row of the EXPERIMENTS.md comparison tables."""

    first: str
    second: str
    wins: int
    ties: int
    losses: int
    mean_diff: float
    mean_diff_ci: tuple[float, float]
    p_permutation: float
    p_wilcoxon: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_permutation < alpha


def pairwise_comparison(
    io_volumes: Mapping[str, Sequence[float]],
    *,
    seed: int = 0,
) -> list[PairwiseComparison]:
    """All ordered head-to-head comparisons between algorithms.

    ``io_volumes[alg][i]`` is algorithm ``alg``'s I/O (or performance) on
    instance ``i``; lower is better.  One row per unordered pair.
    """
    names = sorted(io_volumes)
    rows: list[PairwiseComparison] = []
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            a = np.asarray(io_volumes[first], dtype=float)
            b = np.asarray(io_volumes[second], dtype=float)
            wins, ties, losses = win_tie_loss(a, b)
            diff = a - b
            ci = bootstrap_ci(diff, seed=seed) if diff.size > 1 else (diff[0], diff[0])
            rows.append(
                PairwiseComparison(
                    first=first,
                    second=second,
                    wins=wins,
                    ties=ties,
                    losses=losses,
                    mean_diff=float(diff.mean()),
                    mean_diff_ci=ci,
                    p_permutation=paired_permutation_test(a, b, seed=seed),
                    p_wilcoxon=wilcoxon_signed_rank(a, b),
                )
            )
    return rows
