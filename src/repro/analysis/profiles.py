"""Dolan–Moré performance profiles (the paper's Figures 4, 5, 8–11).

A performance profile reports, for each algorithm and each overhead
threshold ``t``, the fraction of instances on which the algorithm's
normalised performance is within ``t`` (relatively) of the best observed
performance on that instance — a cumulative distribution that summarises a
whole dataset without averaging artifacts.  Higher curves are better.

The module also renders profiles as ASCII plots (for terminals and the
benchmark logs) and as CSV (for external plotting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .metrics import performance

__all__ = [
    "ProfileCurve",
    "PerformanceProfile",
    "build_profile",
    "profile_from_io",
    "render_ascii",
    "to_csv",
]


@dataclass(frozen=True)
class ProfileCurve:
    """One algorithm's cumulative curve over the overhead thresholds."""

    algorithm: str
    thresholds: tuple[float, ...]  # relative overheads (0.05 == 5 %)
    fractions: tuple[float, ...]

    def fraction_at(self, threshold: float) -> float:
        """Fraction of instances within ``threshold`` of the best."""
        idx = np.searchsorted(self.thresholds, threshold, side="right") - 1
        if idx < 0:
            return 0.0
        return self.fractions[idx]


@dataclass(frozen=True)
class PerformanceProfile:
    """All curves of one experiment plus its raw per-instance data."""

    curves: tuple[ProfileCurve, ...]
    performances: Mapping[str, tuple[float, ...]]
    num_instances: int

    def curve(self, algorithm: str) -> ProfileCurve:
        for c in self.curves:
            if c.algorithm == algorithm:
                return c
        raise KeyError(algorithm)

    def algorithms(self) -> list[str]:
        return [c.algorithm for c in self.curves]


def build_profile(
    performances: Mapping[str, Sequence[float]],
    thresholds: Iterable[float] | None = None,
) -> PerformanceProfile:
    """Build profile curves from per-instance performances.

    ``performances[alg][i]`` is algorithm ``alg``'s normalised performance
    on instance ``i``; all algorithms must cover the same instances.
    """
    algorithms = list(performances)
    if not algorithms:
        raise ValueError("no algorithms given")
    lengths = {len(performances[a]) for a in algorithms}
    if len(lengths) != 1:
        raise ValueError(f"instance counts differ between algorithms: {lengths}")
    (count,) = lengths
    if count == 0:
        raise ValueError("no instances given")

    matrix = np.array([performances[a] for a in algorithms], dtype=float)
    if np.any(matrix < 1.0):
        raise ValueError("performances below 1.0 are impossible under (M+k)/M")
    best = matrix.min(axis=0)
    ratios = matrix / best - 1.0  # relative overhead vs instance best

    if thresholds is None:
        # Exact profile: evaluate at every observed overhead (plus 0).
        points = np.unique(np.concatenate([[0.0], ratios.ravel()]))
    else:
        points = np.unique(np.asarray(list(thresholds), dtype=float))
    curves = []
    for i, alg in enumerate(algorithms):
        fractions = (ratios[i][None, :] <= points[:, None] + 1e-12).mean(axis=1)
        curves.append(
            ProfileCurve(
                algorithm=alg,
                thresholds=tuple(points.tolist()),
                fractions=tuple(fractions.tolist()),
            )
        )
    return PerformanceProfile(
        curves=tuple(curves),
        performances={a: tuple(map(float, performances[a])) for a in algorithms},
        num_instances=count,
    )


def profile_from_io(
    io_volumes: Mapping[str, Sequence[int]],
    memories: Sequence[int],
    thresholds: Iterable[float] | None = None,
) -> PerformanceProfile:
    """Profile built from raw I/O volumes and per-instance memory bounds."""
    perfs = {
        alg: [performance(m, k) for m, k in zip(memories, vols, strict=True)]
        for alg, vols in io_volumes.items()
    }
    return build_profile(perfs, thresholds)


def render_ascii(
    profile: PerformanceProfile,
    *,
    width: int = 72,
    height: int = 18,
    max_threshold: float | None = None,
) -> str:
    """Plot the profile curves as ASCII art (one marker per algorithm)."""
    markers = "ox+*#@%&"
    curves = profile.curves
    if max_threshold is None:
        observed = [t for c in curves for t in c.thresholds]
        max_threshold = max(observed) if observed else 1.0
        if max_threshold == 0:
            max_threshold = 0.01
    xs = np.linspace(0.0, max_threshold, width)

    grid = [[" "] * width for _ in range(height)]
    for ci, curve in enumerate(curves):
        marker = markers[ci % len(markers)]
        for xi, x in enumerate(xs):
            frac = curve.fraction_at(float(x))
            row = height - 1 - int(round(frac * (height - 1)))
            if grid[row][xi] == " ":
                grid[row][xi] = marker

    lines = []
    for r, row in enumerate(grid):
        frac = 1.0 - r / (height - 1)
        lines.append(f"{frac:5.2f} |" + "".join(row))
    lines.append("      +" + "-" * width)
    lines.append(f"       0%{' ' * (width - 12)}{max_threshold * 100:.0f}% overhead")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {c.algorithm}" for i, c in enumerate(curves)
    )
    lines.append("       " + legend)
    return "\n".join(lines)


def to_csv(profile: PerformanceProfile) -> str:
    """The curves as CSV: ``threshold, alg1, alg2, ...`` rows."""
    algorithms = profile.algorithms()
    points = sorted({t for c in profile.curves for t in c.thresholds})
    lines = ["threshold," + ",".join(algorithms)]
    for t in points:
        row = [f"{t:.6f}"] + [
            f"{profile.curve(a).fraction_at(t):.6f}" for a in algorithms
        ]
        lines.append(",".join(row))
    return "\n".join(lines)
