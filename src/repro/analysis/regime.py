"""I/O-versus-memory curves across a tree's whole regime.

The paper evaluates three memory points (M1, Mmid, M2); a solver
integrator tuning a memory budget wants the entire curve
``M -> io(strategy, M)`` on ``[LB, Peak_incore]``.  This module samples
it and extracts the quantities that matter for provisioning:

* normalised **area** under the curve (a single scalar ranking
  strategies across the regime, not just at one bound);
* the **knee** — the bound with the steepest marginal return, i.e. where
  one extra unit of memory saves the most I/O;
* **monotonicity violations** — memory points where *more* memory made a
  strategy do *more* I/O.  For OptMinMem this can never happen (its
  schedule ignores ``M`` and FiF volume is monotone in ``M`` for a fixed
  schedule — a tested theorem); adaptive strategies (PostOrderMinIO,
  RecExpand) re-plan per bound and can regress, which is worth knowing
  before trusting a single-point comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.tree import TaskTree
from .bounds import memory_bounds

__all__ = ["IOCurve", "io_curve", "sample_memories"]


@dataclass(frozen=True)
class IOCurve:
    """One strategy's I/O volume sampled across memory bounds."""

    algorithm: str
    memories: tuple[int, ...]
    volumes: tuple[int, ...]

    def area(self) -> float:
        """Mean performance ``(M + io)/M`` over the samples (1.0 = no I/O)."""
        return sum(
            (m + v) / m for m, v in zip(self.memories, self.volumes)
        ) / len(self.memories)

    def knee(self) -> int:
        """The sampled bound *after* which the largest I/O drop occurs.

        Returns the memory value ``memories[i]`` maximising
        ``volumes[i] - volumes[i+1]`` — the point where buying memory
        pays most.  For a flat curve, the first sample.
        """
        if len(self.memories) < 2:
            return self.memories[0]
        drops = [
            self.volumes[i] - self.volumes[i + 1]
            for i in range(len(self.volumes) - 1)
        ]
        return self.memories[max(range(len(drops)), key=drops.__getitem__)]

    def monotone_violations(self) -> list[int]:
        """Sampled bounds where increasing memory increased the I/O."""
        return [
            self.memories[i + 1]
            for i in range(len(self.volumes) - 1)
            if self.volumes[i + 1] > self.volumes[i]
        ]


def sample_memories(tree: TaskTree, samples: int = 12) -> list[int]:
    """Evenly spaced integer bounds covering ``[LB, Peak_incore]``.

    Both endpoints are always included (the curve's anchors: maximal I/O
    pressure and guaranteed zero).
    """
    if samples < 2:
        raise ValueError("need at least two samples to span the regime")
    bounds = memory_bounds(tree)
    lo, hi = bounds.lb, bounds.peak_incore
    if hi - lo + 1 <= samples:
        return list(range(lo, hi + 1))
    step = (hi - lo) / (samples - 1)
    out = sorted({lo + round(i * step) for i in range(samples)})
    out[0], out[-1] = lo, hi
    return out


def io_curve(
    tree: TaskTree,
    strategy: str | Callable[[TaskTree, int], object],
    memories: Sequence[int] | None = None,
    *,
    samples: int = 12,
) -> IOCurve:
    """Sample one strategy's I/O volume across the memory regime.

    ``strategy`` is a registry name or any ``f(tree, memory)`` returning
    an object with an ``io_volume`` attribute.
    """
    if isinstance(strategy, str):
        from ..experiments.registry import get_algorithm

        name, fn = strategy, get_algorithm(strategy)
    else:
        name, fn = getattr(strategy, "__name__", "custom"), strategy
    if memories is None:
        memories = sample_memories(tree, samples)
    volumes = [fn(tree, m).io_volume for m in memories]  # type: ignore[attr-defined]
    return IOCurve(
        algorithm=name, memories=tuple(memories), volumes=tuple(volumes)
    )
