"""Out-of-core task-tree scheduling: minimising I/O volume.

A complete reproduction of

    Loris Marchal, Samuel McCauley, Bertrand Simon, Frédéric Vivien.
    *Minimizing I/Os in Out-of-Core Task Tree Scheduling.*
    INRIA Research Report RR-9025 / hal-01462213, 2017.

Quick start (the paper's Figure 2b instance)::

    from repro import TaskTree, rec_expand, memory_bounds

    tree = TaskTree(parents=[1, 2, 3, 8, 5, 6, 7, 8, -1],
                    weights=[6, 2, 5, 3, 6, 2, 5, 3, 1])
    memory = memory_bounds(tree).mid      # 6: inside the I/O regime
    result = rec_expand(tree, memory)
    print(result.io_volume, result.traversal.schedule)   # 3 (0, 1, ..., 8)

Package map
-----------
``repro.core``        tree structure, traversals, FiF simulator, expansion
``repro.algorithms``  OptMinMem (Liu), best postorders, RecExpand, exact
                      branch-and-bound, brute-force oracles
``repro.datasets``    SYNTH generator, sparse-matrix/elimination-tree
                      pipeline (incl. nested dissection), paper instances
``repro.analysis``    memory bounds, I/O lower bounds, performance metric,
                      Dolan–Moré profiles, bootstrap/permutation statistics
``repro.io``          page-granular paging substrate + disk timing model
``repro.parallel``    parallel out-of-core engine, activation windows
``repro.viz``         SVG/ASCII rendering of profiles, timelines and trees
``repro.experiments`` dataset assembly, figure regeneration, full reports;
                      ``experiments.batch`` shards the evaluation across
                      worker processes with content-addressed result
                      caching (see ``repro-ioschedule report --jobs``)
``repro.api``         the typed solver API: ``SolveRequest`` /
                      ``PagingRequest`` / ``ExactRequest`` /
                      ``BatchRequest``, the uniform ``Outcome``
                      envelope, one error taxonomy, and the pluggable
                      ``LocalBackend`` / ``PoolBackend`` /
                      ``RemoteBackend`` execution backends every
                      surface shares; imported lazily, with its main
                      names re-exported here
``repro.service``     asyncio JSON-over-HTTP scheduling service with
                      request micro-batching, a persistent worker pool
                      and cache-backed dedup (``repro-ioschedule serve``
                      / ``submit``); imported lazily via
                      ``repro.service``

Typed-API quick start (the paper's Figure 2b instance)::

    from repro import LocalBackend, parse_request

    request = parse_request({
        "kind": "solve",
        "tree": {"parents": [1, 2, 3, 8, 5, 6, 7, 8, -1],
                 "weights": [6, 2, 5, 3, 6, 2, 5, 3, 1]},
        "memory": 6,
        "algorithm": "RecExpand",
    })
    outcome = LocalBackend().submit(request).raise_for_error()
    print(outcome.io_volume, outcome.schedule)   # 3 (0, 1, ..., 8)
"""

from .algorithms.brute_force import min_io_brute, min_peak_brute
from .algorithms.exact import ExactResult, exact_min_io, optimality_gap
from .algorithms.homogeneous import homogeneous_labels, optimal_io
from .algorithms.liu import LiuSolver, min_peak_memory, opt_min_mem
from .algorithms.local_search import LocalSearchResult, local_search
from .algorithms.postorder import postorder_min_io, postorder_min_mem
from .algorithms.rec_expand import RecExpandResult, full_rec_expand, rec_expand
from .analysis.bounds import MemoryBounds, memory_bounds
from .analysis.io_bounds import io_lower_bound, peak_io_lower_bound
from .analysis.metrics import performance
from .analysis.profiles import PerformanceProfile, build_profile, render_ascii
from .analysis.regime import IOCurve, io_curve
from .core.trace import TraceEvent, replay, traversal_trace
from .core.expansion import ExpansionTree, expand_tree
from .core.simulator import (
    InfeasibleSchedule,
    SimulationResult,
    fif_io_volume,
    fif_traversal,
    schedule_peak_memory,
    simulate_fif,
)
from .core.traversal import InvalidTraversal, Traversal, is_postorder, validate
from .core.tree import TaskTree, TreeError, balanced_binary_tree, chain_tree, star_tree
from .io import PageMap, paged_io

__version__ = "1.2.0"

#: ``repro.api`` names served lazily through module ``__getattr__`` —
#: available as ``repro.<name>`` without paying the import cost (the
#: algorithm registry, the service client, the backends) unless used.
_API_EXPORTS = (
    "ApiError",
    "Backend",
    "BatchRequest",
    "ExactRequest",
    "LocalBackend",
    "Outcome",
    "PagingRequest",
    "PoolBackend",
    "ProtocolError",
    "RemoteBackend",
    "Request",
    "SolveRequest",
    "TransportError",
    "parse_request",
)


def __getattr__(name: str):
    """Lazy attribute access: subpackages and the ``repro.api`` facade.

    ``repro.service`` and ``repro.api`` are deliberately not imported at
    package-import time (the service pulls in asyncio/executor machinery
    no offline user needs); this hook makes ``repro.service`` /
    ``repro.api`` — and the re-exported API names above — resolve on
    first use instead of raising ``AttributeError``.
    """
    if name in ("api", "service"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    if name in _API_EXPORTS:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_API_EXPORTS) | {"api", "service"})


__all__ = [
    "api",
    "service",
    *_API_EXPORTS,
    "TaskTree",
    "TreeError",
    "chain_tree",
    "star_tree",
    "balanced_binary_tree",
    "Traversal",
    "InvalidTraversal",
    "validate",
    "is_postorder",
    "simulate_fif",
    "fif_io_volume",
    "fif_traversal",
    "schedule_peak_memory",
    "SimulationResult",
    "InfeasibleSchedule",
    "ExpansionTree",
    "expand_tree",
    "LiuSolver",
    "opt_min_mem",
    "min_peak_memory",
    "postorder_min_io",
    "postorder_min_mem",
    "rec_expand",
    "full_rec_expand",
    "RecExpandResult",
    "homogeneous_labels",
    "optimal_io",
    "min_io_brute",
    "min_peak_brute",
    "ExactResult",
    "exact_min_io",
    "optimality_gap",
    "MemoryBounds",
    "memory_bounds",
    "io_lower_bound",
    "peak_io_lower_bound",
    "performance",
    "build_profile",
    "render_ascii",
    "PerformanceProfile",
    "PageMap",
    "paged_io",
    "LocalSearchResult",
    "local_search",
    "IOCurve",
    "io_curve",
    "TraceEvent",
    "replay",
    "traversal_trace",
    "__version__",
]
