"""Out-of-core task-tree scheduling: minimising I/O volume.

A complete reproduction of

    Loris Marchal, Samuel McCauley, Bertrand Simon, Frédéric Vivien.
    *Minimizing I/Os in Out-of-Core Task Tree Scheduling.*
    INRIA Research Report RR-9025 / hal-01462213, 2017.

Quick start::

    from repro import TaskTree, rec_expand, memory_bounds

    tree = TaskTree(parents=[-1, 0, 0, 1, 1], weights=[2, 3, 4, 5, 6])
    memory = memory_bounds(tree).mid
    result = rec_expand(tree, memory)
    print(result.io_volume, result.traversal.schedule)

Package map
-----------
``repro.core``        tree structure, traversals, FiF simulator, expansion
``repro.algorithms``  OptMinMem (Liu), best postorders, RecExpand, exact
                      branch-and-bound, brute-force oracles
``repro.datasets``    SYNTH generator, sparse-matrix/elimination-tree
                      pipeline (incl. nested dissection), paper instances
``repro.analysis``    memory bounds, I/O lower bounds, performance metric,
                      Dolan–Moré profiles, bootstrap/permutation statistics
``repro.io``          page-granular paging substrate + disk timing model
``repro.parallel``    parallel out-of-core engine, activation windows
``repro.viz``         SVG/ASCII rendering of profiles, timelines and trees
``repro.experiments`` dataset assembly, figure regeneration, full reports;
                      ``experiments.batch`` shards the evaluation across
                      worker processes with content-addressed result
                      caching (see ``repro-ioschedule report --jobs``)
``repro.service``     asyncio JSON-over-HTTP scheduling service with
                      request micro-batching, a persistent worker pool
                      and cache-backed dedup (``repro-ioschedule serve``
                      / ``submit``); imported lazily — not re-exported
                      here
"""

from .algorithms.brute_force import min_io_brute, min_peak_brute
from .algorithms.exact import ExactResult, exact_min_io, optimality_gap
from .algorithms.homogeneous import homogeneous_labels, optimal_io
from .algorithms.liu import LiuSolver, min_peak_memory, opt_min_mem
from .algorithms.local_search import LocalSearchResult, local_search
from .algorithms.postorder import postorder_min_io, postorder_min_mem
from .algorithms.rec_expand import RecExpandResult, full_rec_expand, rec_expand
from .analysis.bounds import MemoryBounds, memory_bounds
from .analysis.io_bounds import io_lower_bound, peak_io_lower_bound
from .analysis.metrics import performance
from .analysis.profiles import PerformanceProfile, build_profile, render_ascii
from .analysis.regime import IOCurve, io_curve
from .core.trace import TraceEvent, replay, traversal_trace
from .core.expansion import ExpansionTree, expand_tree
from .core.simulator import (
    InfeasibleSchedule,
    SimulationResult,
    fif_io_volume,
    fif_traversal,
    schedule_peak_memory,
    simulate_fif,
)
from .core.traversal import InvalidTraversal, Traversal, is_postorder, validate
from .core.tree import TaskTree, TreeError, balanced_binary_tree, chain_tree, star_tree
from .io import PageMap, paged_io

__version__ = "1.1.0"

__all__ = [
    "TaskTree",
    "TreeError",
    "chain_tree",
    "star_tree",
    "balanced_binary_tree",
    "Traversal",
    "InvalidTraversal",
    "validate",
    "is_postorder",
    "simulate_fif",
    "fif_io_volume",
    "fif_traversal",
    "schedule_peak_memory",
    "SimulationResult",
    "InfeasibleSchedule",
    "ExpansionTree",
    "expand_tree",
    "LiuSolver",
    "opt_min_mem",
    "min_peak_memory",
    "postorder_min_io",
    "postorder_min_mem",
    "rec_expand",
    "full_rec_expand",
    "RecExpandResult",
    "homogeneous_labels",
    "optimal_io",
    "min_io_brute",
    "min_peak_brute",
    "ExactResult",
    "exact_min_io",
    "optimality_gap",
    "MemoryBounds",
    "memory_bounds",
    "io_lower_bound",
    "peak_io_lower_bound",
    "performance",
    "build_profile",
    "render_ascii",
    "PerformanceProfile",
    "PageMap",
    "paged_io",
    "LocalSearchResult",
    "local_search",
    "IOCurve",
    "io_curve",
    "TraceEvent",
    "replay",
    "traversal_trace",
    "__version__",
]
