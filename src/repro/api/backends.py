"""Pluggable execution backends: one request model, three places to run it.

A :class:`Backend` takes the typed requests of
:mod:`repro.api.requests` and returns :class:`~repro.api.outcome.Outcome`
envelopes.  The three implementations are interchangeable by contract —
identical requests produce byte-identical canonical outcomes and
identical cache keys on every one of them (the equivalence harness in
``tests/test_api_equivalence.py`` enforces it):

:class:`LocalBackend`
    runs requests in-process through the shared execution cores —
    engine ``auto`` dispatching object trees, flat
    :class:`~repro.core.arraytree.ArrayTree` kernels, or whole-forest
    batches (for :class:`~repro.api.requests.BatchRequest`);
:class:`PoolBackend`
    ships requests to an embedded
    :class:`~repro.service.pool.WorkerPool` — persistent worker
    processes, micro-batched execution, shared-memory forest transport
    included — without running a server;
:class:`RemoteBackend`
    submits requests to a running ``repro-ioschedule serve`` instance
    through :class:`~repro.service.client.ServiceClient`.

Every backend accepts the same optional
:class:`~repro.datasets.store.ResultCache`; because keys come from the
one canonical derivation, a cache written by any backend (or by the
batch engine, or by a server) serves warm hits to all the others.

Two deliberate asymmetries, both inherited from what each backend
wraps:

* a request's ``timeout`` is *delivery policy* (it is excluded from the
  content address for the same reason), and only the serving side
  enforces it — :class:`RemoteBackend` surfaces the server's ``504
  timeout`` envelopes, while :class:`LocalBackend` and
  :class:`PoolBackend` run every request to completion, exactly like
  the service's own worker pool does beneath its dispatcher;
* :class:`PoolBackend` and :class:`RemoteBackend` ship requests through
  the service's wire schema, so they inherit its admission caps
  (:data:`~repro.api.requests.MAX_NODES`, the ``10^15`` memory
  ceiling).  :class:`LocalBackend` is the offline path without them —
  million-node trees and beyond-int64 bounds run there (and through
  the batch engine), as the CLI's offline commands always have.
"""

from __future__ import annotations

import time
from typing import (
    TYPE_CHECKING,
    Any,
    Coroutine,
    Protocol,
    Sequence,
    TypeVar,
    runtime_checkable,
)

from ..datasets.store import ResultCache
from .errors import ProtocolError, TransportError
from .execution import execute_request
from .outcome import Outcome
from .requests import BatchRequest, Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry
    from ..service.client import ServiceClient
    from ..service.pool import WorkerPool

_T = TypeVar("_T")
_B = TypeVar("_B", bound="_CachingBackend")

__all__ = [
    "Backend",
    "LocalBackend",
    "PoolBackend",
    "RemoteBackend",
]

def _run_sync(coro: Coroutine[Any, Any, _T]) -> _T:
    """Drive a coroutine to completion from synchronous code.

    ``asyncio.run`` when no loop is running; from inside a running loop
    (an embedding asyncio application calling the blocking backend API)
    the coroutine runs on a short-lived helper thread with its own loop
    instead of raising ``RuntimeError`` — still a blocking call, by
    contract, but a working one.
    """
    import asyncio

    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(coro)
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=1) as runner:
        return runner.submit(asyncio.run, coro).result()


@runtime_checkable
class Backend(Protocol):
    """The execution contract every backend implements."""

    #: short provenance label stamped into every outcome (``local``/…).
    name: str

    def submit(self, request: Request | BatchRequest) -> Outcome:
        """Execute one request and return its outcome."""
        ...

    def run(self, requests: Sequence[Any]) -> list[Outcome]:
        """Execute many requests (outcomes in request order)."""
        ...

    def close(self) -> None:
        """Release whatever the backend holds (workers, connections)."""
        ...


class _CachingBackend:
    """Shared skeleton: content-addressed cache in front of execution.

    Lookups happen per request *before* anything is dispatched; only
    misses reach :meth:`_execute`, and their successful results are
    written back — so a warm cache short-circuits every backend the
    same way, and a result computed on one backend is a hit on all.
    """

    name = ""
    #: whether :class:`~repro.api.requests.BatchRequest` units are
    #: accepted — they execute in-process only (the wire schema has no
    #: batch kind), and the check runs up front so acceptance never
    #: depends on cache state.
    supports_batch = False

    def __init__(
        self,
        cache: ResultCache | None = None,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.cache = cache
        if registry is None:
            from ..obs.metrics import get_registry

            registry = get_registry()
        self.registry = registry
        self._requests_counter = registry.counter(
            "requests_total", "requests submitted, by surface"
        ).labels(backend=self.name or "backend")
        if cache is not None and getattr(cache, "_hit_counter", None) is None:
            cache.bind_registry(registry)

    def submit(self, request: Request | BatchRequest) -> Outcome:
        return self.run([request])[0]

    def run(self, requests: Sequence[Any]) -> list[Outcome]:
        if not self.supports_batch and any(
            isinstance(r, BatchRequest) for r in requests
        ):
            raise ProtocolError(
                "unknown_kind",
                "batch requests execute locally; submit their member "
                "solves individually or use LocalBackend",
            )
        self._requests_counter.inc(len(requests))
        outcomes: list[Outcome | None] = [None] * len(requests)
        misses: list[int] = []
        for i, request in enumerate(requests):
            key = request.key()
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                outcomes[i] = Outcome(
                    ok=True, key=key, result=hit, cached=True, backend=self.name
                )
            else:
                misses.append(i)
        if misses:
            computed = self._execute([requests[i] for i in misses])
            # strict: a backend returning a short/long envelope list is
            # an invariant violation and must fail loudly, never silently
            # misattribute outcomes to requests
            for i, outcome in zip(misses, computed, strict=True):
                # this branch only runs on a local-cache miss, so always
                # write back — including results another cache (a warm
                # server) served, which is how hits flow both ways
                if outcome.ok and self.cache is not None:
                    self.cache.put(outcome.key, outcome.result)
                outcomes[i] = outcome
        return [o for o in outcomes if o is not None]

    def _execute(self, requests: Sequence[Any]) -> list[Outcome]:
        raise NotImplementedError

    def close(self) -> None:  # nothing held by default
        pass

    def __enter__(self: _B) -> _B:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class LocalBackend(_CachingBackend):
    """Run requests in the calling process.

    The engine hint on each request resolves exactly as everywhere
    else: ``auto`` picks object trees or flat-array kernels by size,
    and :class:`~repro.api.requests.BatchRequest` units solve through
    the whole-forest kernels (with byte-identical per-tree fallback).

    ``seed_rng`` keeps the worker-pool contract — the process-global
    RNG is seeded from each request's content address — so local runs
    are bit-for-bit reproducible against pool and server runs even for
    strategies that draw global randomness.  Disable it to leave the
    embedding process's RNG state alone.
    """

    name = "local"
    supports_batch = True

    def __init__(
        self,
        cache: ResultCache | None = None,
        *,
        seed_rng: bool = True,
        registry: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(cache, registry=registry)
        self.seed_rng = seed_rng

    def _execute(self, requests: Sequence[Any]) -> list[Outcome]:
        from .execution import execute_batch_request

        outcomes = []
        for request in requests:
            t0 = time.perf_counter()
            if isinstance(request, BatchRequest):
                envelope = execute_batch_request(request, seed_rng=self.seed_rng)
            else:
                envelope = execute_request(request, seed_rng=self.seed_rng)
            outcomes.append(
                Outcome.from_envelope(
                    envelope,
                    key=request.key(),
                    backend=self.name,
                    elapsed_seconds=time.perf_counter() - t0,
                )
            )
        return outcomes


class PoolBackend(_CachingBackend):
    """Run requests on an embedded service worker pool.

    Wraps :class:`~repro.service.pool.WorkerPool` — persistent worker
    processes (``jobs >= 1``), micro-batched dispatch, and the
    shared-memory forest transport — behind the synchronous backend
    contract, without starting a server.  ``jobs=0`` runs on in-process
    threads (the deterministic test mode).  Pass an existing pool to
    share it; the backend then does not own (or close) it.

    Requests ride the service's wire schema (workers re-validate on
    arrival, same defence-in-depth as behind the server), so the wire
    admission caps apply — trees beyond
    :data:`~repro.api.requests.MAX_NODES` belong on
    :class:`LocalBackend` or the batch engine.
    """

    name = "pool"

    def __init__(
        self,
        jobs: int = 2,
        *,
        cache: ResultCache | None = None,
        pool: "WorkerPool | None" = None,
        shm_transport: bool = True,
        shm_min_nodes: int | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(cache, registry=registry)
        self._owns_pool = pool is None
        if pool is None:
            from ..service.pool import WorkerPool

            kwargs: dict[str, Any] = {"shm_transport": shm_transport}
            if shm_min_nodes is not None:
                kwargs["shm_min_nodes"] = shm_min_nodes
            pool = WorkerPool(jobs, **kwargs)
        self.pool = pool

    def _execute(self, requests: Sequence[Any]) -> list[Outcome]:
        payloads = [request.to_payload() for request in requests]
        t0 = time.perf_counter()
        envelopes = _run_sync(self.pool.run_batch(payloads))
        elapsed = time.perf_counter() - t0
        return [
            Outcome.from_envelope(
                envelope,
                key=request.key(),
                backend=self.name,
                elapsed_seconds=elapsed,
            )
            for request, envelope in zip(requests, envelopes)
        ]

    def close(self) -> None:
        if self._owns_pool:
            self.pool.shutdown()


class RemoteBackend(_CachingBackend):
    """Submit requests to a running scheduling service.

    Thin by design: each request ships as its wire payload (including
    the per-request deadline) through
    :class:`~repro.service.client.ServiceClient`; the server performs
    its own validation, dedup and caching, and its provenance flags
    (``cached``/``deduped``) surface unchanged in the outcome.  Error
    envelopes come back as error outcomes with the same stable codes as
    every other backend; connection-level failures raise
    :class:`~repro.api.errors.TransportError`.

    A client-side ``cache`` is optional and off by default — the server
    already maintains the authoritative one.

    ``wire`` selects the submit encoding (see
    :class:`~repro.service.client.ServiceClient`): the default
    ``"auto"`` prefers the binary frame path and falls back to JSON
    transparently — per request when a request cannot be framed, and
    stickily when the server predates the frame protocol — so outcomes,
    cache keys and provenance are identical either way.
    """

    name = "remote"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8177,
        *,
        client: "ServiceClient | None" = None,
        cache: ResultCache | None = None,
        timeout: float = 120.0,
        wire: str = "auto",
        registry: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(cache, registry=registry)
        if client is None:
            from ..service.client import ServiceClient

            client = ServiceClient(host, port, timeout=timeout, wire=wire)
        self.client = client

    def _execute(self, requests: Sequence[Any]) -> list[Outcome]:
        from ..service.client import ServiceError

        outcomes = []
        for request in requests:
            t0 = time.perf_counter()
            error_status = None
            try:
                envelope = self.client.submit(request.to_wire())
            except ServiceError as exc:
                if exc.status == 0 or exc.code == "transport":
                    raise TransportError(exc.message) from exc
                # keep the wire status: it classifies (and exit-codes)
                # even codes this client version does not know about
                error_status = exc.status
                envelope = {
                    "ok": False,
                    "error": {"code": exc.code, "message": exc.message},
                }
            outcomes.append(
                Outcome.from_envelope(
                    envelope,
                    key=request.key(),
                    backend=self.name,
                    elapsed_seconds=time.perf_counter() - t0,
                    error_status=error_status,
                )
            )
        return outcomes
