"""The typed request model shared by every execution surface.

One tree, one question, one canonical identity.  The CLI's ``solve``,
the batch engine's shard units and the service's wire protocol all used
to carry their own request shapes with their own validation and key
derivation; these dataclasses are the single model underneath all of
them:

:class:`SolveRequest`
    run one registered strategy, return its traversal and I/O volume;
:class:`PagingRequest`
    execute the strategy's schedule through the page-granular pager
    under one or more eviction policies;
:class:`ExactRequest`
    branch-and-bound optimum plus the paper heuristics' gaps
    (small trees only);
:class:`BatchRequest`
    many trees under one parameter set — the batch engine's unit of
    work, solved through the forest kernels when possible.

Validation happens in :func:`parse_request`, before anything touches a
queue, a worker or a socket: it either returns a frozen request object
or raises :class:`~repro.api.errors.ProtocolError` with a stable
machine-readable code.  Each request canonicalises itself into
``to_payload()`` (the dict shipped to worker processes and over the
wire) and derives its content address with :meth:`key` — a buffer
digest via :func:`repro.datasets.store.cache_key_buffers` over the
canonical int64 tree columns, salted with :data:`ENGINE_VERSION`.  The
digest is identical whether the columns are Python tuples or numpy
views of the shared-memory transport, and it is computed **once** per
(frozen) instance: the cache lookup, the in-flight dedup and the
worker's RNG seeding all reuse one canonicalisation.  Because every
backend derives keys through this one path, identical requests collapse
onto one computation — and one cache entry — everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..core.engine import ENGINES
from ..core.tree import TaskTree, TreeError
from ..datasets.store import cache_key_buffers
from ..obs.trace import MAX_TRACE_ID
from .errors import ProtocolError

__all__ = [
    "BatchRequest",
    "CanonicalRequest",
    "DEFAULT_PAGING_POLICIES",
    "ENGINE_VERSION",
    "ExactRequest",
    "MAX_NODES",
    "MEMORY_POLICIES",
    "PagingRequest",
    "Request",
    "SolveRequest",
    "TreeColumns",
    "parse_request",
    "unit_seed",
]

#: bump when the result payload format changes; part of every cache key
#: (batch work units *and* service requests) so stale entries from older
#: engine versions can never be returned.
#: v2: keys are buffer digests (:func:`repro.datasets.store.cache_key_buffers`
#: over the canonical int64 tree columns) instead of JSON-marshalled lists.
ENGINE_VERSION = 2

#: hard ceiling on tree sizes accepted over the wire — the service is a
#: query front-end, not a bulk pipeline; anything larger belongs in the
#: offline batch engine.
MAX_NODES = 100_000

#: default policy set for ``paging`` requests — the same four, in the
#: same order, as the offline ``repro-ioschedule paging`` command, so a
#: served request without an explicit list matches the CLI's output.
DEFAULT_PAGING_POLICIES = ("belady", "lru", "random", "pessimal")

#: the named points of a tree's feasible-memory interval
#: (:meth:`repro.analysis.bounds.MemoryBounds.grid`) a
#: :class:`BatchRequest` may ask for instead of an absolute bound.
MEMORY_POLICIES = ("M1", "Mmid", "M2")

#: one tree as its identity columns: ``(parents, weights)``.
TreeColumns = tuple[tuple[int, ...], tuple[int, ...]]


def unit_seed(key: str) -> int:
    """A deterministic 32-bit seed derived from a request's content address.

    Shared by the batch engine's shards and the service's request
    execution so any strategy drawing global randomness behaves
    identically whether a unit runs offline, embedded, or behind a
    server.
    """
    return int(key[:8], 16)


class CanonicalRequest:
    """Mixin: the one buffer-digest content-address path.

    Subclasses (frozen dataclasses) describe themselves through
    :meth:`key_params` (small scalar parameters) and :meth:`key_buffers`
    (integer columns); :meth:`key` hashes both through
    :func:`~repro.datasets.store.cache_key_buffers` and caches the
    digest on the instance, so repeated lookups reuse one
    canonicalisation.

    **Field discipline** (machine-checked by the ``cache-key-discipline``
    lint rule): every dataclass field either feeds the key through
    :meth:`key_params`/:meth:`key_buffers`, or is named in the class's
    ``key_excluded`` frozenset — the explicit record that the field is
    delivery policy or a performance knob that provably does not change
    the result.
    """

    #: fields deliberately outside the content address; subclasses
    #: override with their own set.
    key_excluded: frozenset[str] = frozenset()

    def key_params(self) -> dict[str, Any]:
        """The scalar parameters that determine this request's output."""
        raise NotImplementedError

    def key_buffers(self) -> Mapping[str, Any]:
        """The integer columns that determine this request's output."""
        raise NotImplementedError

    def to_wire(self) -> dict[str, Any]:
        """The payload plus delivery policy (the per-request deadline)."""
        wire = self.to_payload()
        timeout = getattr(self, "timeout", None)
        if timeout is not None:
            wire["timeout"] = timeout
        return wire

    def key(self) -> str:
        """Buffer-digest content address, computed once per instance."""
        cached = self.__dict__.get("_cached_key")
        if cached is None:
            cached = cache_key_buffers(self.key_params(), self.key_buffers())
            object.__setattr__(self, "_cached_key", cached)
        return cached


def _fail(code: str, message: str) -> ProtocolError:
    return ProtocolError(code, message)


def _require_int(value: Any, field: str, *, lo: int, hi: int) -> int:
    if type(value) is not int or not (lo <= value <= hi):
        raise _fail(
            "bad_field", f"{field!r} must be an integer in [{lo}, {hi}], got {value!r}"
        )
    return value


def _parse_tree(obj: Mapping[str, Any]) -> TreeColumns:
    tree = obj.get("tree")
    if not isinstance(tree, Mapping):
        raise _fail("bad_field", "'tree' must be an object with 'parents' and 'weights'")
    parents = tree.get("parents")
    weights = tree.get("weights")
    for name, seq in (("parents", parents), ("weights", weights)):
        if not isinstance(seq, (list, tuple)) or any(
            type(x) is not int for x in seq
        ):
            raise _fail("bad_field", f"'tree.{name}' must be a list of integers")
    if len(parents) > MAX_NODES:
        raise _fail(
            "payload_too_large",
            f"tree has {len(parents)} nodes > service limit {MAX_NODES}; "
            "use the offline batch engine for bulk workloads",
        )
    try:
        TaskTree(parents, weights)  # full structural validation
    except TreeError as exc:
        raise _fail("invalid_tree", str(exc)) from exc
    return tuple(parents), tuple(weights)


def _parse_algorithm(obj: Mapping[str, Any], *, default: str = "RecExpand") -> str:
    from ..experiments.registry import strategy_names

    algorithm = obj.get("algorithm", default)
    known = strategy_names()
    if algorithm not in known:
        raise _fail(
            "unknown_algorithm", f"unknown algorithm {algorithm!r}; available: {known}"
        )
    return algorithm


def _parse_engine(obj: Mapping[str, Any]) -> str:
    """The optional kernel-engine override (``auto``/``object``/``array``).

    Purely a performance knob: both engines return identical results, so
    the engine is **not** part of the request's content address — a
    cached result computed under either engine serves both.
    """
    engine = obj.get("engine", "auto")
    if engine not in ENGINES:
        raise _fail(
            "bad_field", f"'engine' must be one of {list(ENGINES)}, got {engine!r}"
        )
    return engine


def _parse_timeout(obj: Mapping[str, Any]) -> float | None:
    timeout = obj.get("timeout")
    if timeout is None:
        return None
    if type(timeout) not in (int, float) or not (0 < timeout <= 3600):
        raise _fail("bad_field", f"'timeout' must be a number in (0, 3600], got {timeout!r}")
    return float(timeout)


def _parse_trace(obj: Mapping[str, Any]) -> str | None:
    """The optional client trace id: a delivery knob, never part of the key."""
    trace = obj.get("trace")
    if trace is None:
        return None
    if not isinstance(trace, str) or not (1 <= len(trace) <= MAX_TRACE_ID):
        raise _fail(
            "bad_field",
            f"'trace' must be a string of 1..{MAX_TRACE_ID} characters",
        )
    return trace


def _parse_trace_schedule(obj: Mapping[str, Any], kind: str) -> bool:
    flag = obj.get("trace_schedule", False)
    if type(flag) is not bool:
        raise _fail("bad_field", f"'trace_schedule' must be a boolean, got {flag!r}")
    if flag and kind != "solve":
        raise _fail(
            "bad_field", "'trace_schedule' is only supported on 'solve' requests"
        )
    return flag


@dataclass(frozen=True)
class SolveRequest(CanonicalRequest):
    """Run one registered strategy on one tree."""

    parents: tuple[int, ...]
    weights: tuple[int, ...]
    memory: int
    algorithm: str
    timeout: float | None = None
    engine: str = "auto"
    #: opt into a per-request schedule trace (memory hill-valley curve +
    #: cumulative I/O) in the result; **part of the key** when set, since
    #: it changes the result payload.
    trace_schedule: bool = False
    #: optional client trace id: activates span timing along the request
    #: path.  A delivery knob like ``timeout`` — never part of the key.
    trace: str | None = None

    kind = "solve"
    #: ``timeout``/``trace`` are delivery knobs; ``engine`` is a
    #: performance knob with byte-identical results (cross-validated).
    key_excluded = frozenset({"timeout", "engine", "trace"})

    def to_payload(self) -> dict[str, Any]:
        payload = {
            "kind": self.kind,
            "tree": {"parents": list(self.parents), "weights": list(self.weights)},
            "memory": self.memory,
            "algorithm": self.algorithm,
            "engine": self.engine,
        }
        if self.trace_schedule:
            payload["trace_schedule"] = True
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    def key_params(self) -> dict[str, Any]:
        params = {
            "kind": "service-solve",
            "version": ENGINE_VERSION,
            "memory": self.memory,
            "algorithm": self.algorithm,
        }
        if self.trace_schedule:
            params["trace_schedule"] = True
        return params

    def key_buffers(self) -> Mapping[str, Any]:
        return {"parents": self.parents, "weights": self.weights}


@dataclass(frozen=True)
class PagingRequest(CanonicalRequest):
    """Page-granular policy comparison on one strategy's schedule."""

    parents: tuple[int, ...]
    weights: tuple[int, ...]
    memory: int
    algorithm: str
    page_size: int
    policies: tuple[str, ...]
    seed: int
    timeout: float | None = None
    engine: str = "auto"
    trace: str | None = None

    kind = "paging"
    key_excluded = frozenset({"timeout", "engine", "trace"})

    def to_payload(self) -> dict[str, Any]:
        payload = {
            "kind": self.kind,
            "tree": {"parents": list(self.parents), "weights": list(self.weights)},
            "memory": self.memory,
            "algorithm": self.algorithm,
            "page_size": self.page_size,
            "policies": list(self.policies),
            "seed": self.seed,
            "engine": self.engine,
        }
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    def key_params(self) -> dict[str, Any]:
        return {
            "kind": "service-paging",
            "version": ENGINE_VERSION,
            "memory": self.memory,
            "algorithm": self.algorithm,
            "page_size": self.page_size,
            "policies": list(self.policies),
            "seed": self.seed,
        }

    def key_buffers(self) -> Mapping[str, Any]:
        return {"parents": self.parents, "weights": self.weights}


@dataclass(frozen=True)
class ExactRequest(CanonicalRequest):
    """Exact branch-and-bound optimum plus paper-heuristic gaps."""

    parents: tuple[int, ...]
    weights: tuple[int, ...]
    memory: int
    max_states: int
    node_limit: int
    timeout: float | None = None
    engine: str = "auto"
    trace: str | None = None

    kind = "exact"
    key_excluded = frozenset({"timeout", "engine", "trace"})

    def to_payload(self) -> dict[str, Any]:
        payload = {
            "kind": self.kind,
            "tree": {"parents": list(self.parents), "weights": list(self.weights)},
            "memory": self.memory,
            "max_states": self.max_states,
            "node_limit": self.node_limit,
            "engine": self.engine,
        }
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    def key_params(self) -> dict[str, Any]:
        return {
            "kind": "service-exact",
            "version": ENGINE_VERSION,
            "memory": self.memory,
            "max_states": self.max_states,
            "node_limit": self.node_limit,
        }

    def key_buffers(self) -> Mapping[str, Any]:
        return {"parents": self.parents, "weights": self.weights}


@dataclass(frozen=True)
class BatchRequest(CanonicalRequest):
    """Many trees solved under one parameter set, as one work unit.

    The batch engine's shard unit, promoted to a public request type:
    carries its trees as plain identity columns (cheap to pickle across
    the process boundary and exactly the content that is hashed into
    the key) plus everything a worker needs to run it.

    ``memory`` pins one absolute bound for every tree; leaving it
    ``None`` instead resolves the named ``bound`` policy — a point of
    each tree's feasible-memory grid (:data:`MEMORY_POLICIES`) — per
    tree, dropping trees without an I/O regime, exactly like the
    paper's evaluation.

    ``engine`` and ``forest`` are performance knobs deliberately
    **excluded** from the key: the kernels are byte-identical across
    engines and the forest path (the cross-validation harnesses enforce
    it), so a cached result serves every setting.
    """

    trees: tuple[TreeColumns, ...]
    algorithms: tuple[str, ...]
    bound: str = "Mmid"
    memory: int | None = None
    engine: str = "auto"
    forest: bool = True

    kind = "batch"
    #: both are performance knobs: the cross-validation harnesses pin
    #: byte-identical results across engines and the forest path.
    key_excluded = frozenset({"engine", "forest"})

    def __post_init__(self) -> None:
        if self.memory is None and self.bound not in MEMORY_POLICIES:
            raise _fail(
                "bad_field",
                f"'bound' must be one of {list(MEMORY_POLICIES)}, got {self.bound!r}",
            )
        if self.engine not in ENGINES:
            raise _fail(
                "bad_field",
                f"'engine' must be one of {list(ENGINES)}, got {self.engine!r}",
            )

    def tree_columns(self) -> tuple[list[int], list[int], list[int]]:
        """The concatenated ``(offsets, parents, weights)`` identity columns."""
        offsets = [0]
        parents: list[int] = []
        weights: list[int] = []
        for p, w in self.trees:
            parents.extend(p)
            weights.extend(w)
            offsets.append(len(parents))
        return offsets, parents, weights

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "trees": [
                {"parents": list(p), "weights": list(w)} for p, w in self.trees
            ],
            "algorithms": list(self.algorithms),
            "bound": self.bound,
            "memory": self.memory,
            "engine": self.engine,
        }

    def key_params(self) -> dict[str, Any]:
        return {
            "kind": "batch",
            "version": ENGINE_VERSION,
            "algorithms": list(self.algorithms),
            "bound": self.bound,
            "memory": self.memory,
        }

    def key_buffers(self) -> Mapping[str, Any]:
        offsets, parents, weights = self.tree_columns()
        return {"offsets": offsets, "parents": parents, "weights": weights}


Request = SolveRequest | PagingRequest | ExactRequest

_KINDS = ("solve", "paging", "exact")


def parse_request(obj: Any, *, trusted_tree: tuple[Any, Any] | None = None) -> Request:
    """Validate a decoded JSON body into a frozen request object.

    ``trusted_tree`` — a pre-validated ``(parents, weights)`` column
    pair — skips the tree re-validation and is how the shared-memory
    transport hands workers their buffer views: the server already ran
    the tree validation on the original body, so re-marshalling the
    columns into JSON lists just to check them again would defeat the
    zero-copy hand-off.  All scalar fields are still validated.

    Raises
    ------
    ProtocolError
        with a stable code from :data:`~repro.api.errors.ERROR_CODES`
        on any violation.
    """
    from ..io.policies import POLICIES

    if not isinstance(obj, Mapping):
        raise _fail("bad_request", "request body must be a JSON object")
    kind = obj.get("kind", "solve")
    if kind not in _KINDS:
        raise _fail("unknown_kind", f"unknown kind {kind!r}; expected one of {_KINDS}")
    if trusted_tree is not None:
        parents, weights = trusted_tree
    else:
        parents, weights = _parse_tree(obj)
    memory = _require_int(obj.get("memory"), "memory", lo=1, hi=10**15)
    timeout = _parse_timeout(obj)
    engine = _parse_engine(obj)
    trace = _parse_trace(obj)
    trace_schedule = _parse_trace_schedule(obj, kind)

    if kind == "solve":
        return SolveRequest(
            parents=parents,
            weights=weights,
            memory=memory,
            algorithm=_parse_algorithm(obj),
            timeout=timeout,
            engine=engine,
            trace_schedule=trace_schedule,
            trace=trace,
        )

    if kind == "paging":
        policies = obj.get("policies", list(DEFAULT_PAGING_POLICIES))
        if (
            not isinstance(policies, (list, tuple))
            or not policies
            or any(not isinstance(p, str) for p in policies)
        ):
            raise _fail("bad_field", "'policies' must be a non-empty list of names")
        unknown = [p for p in policies if p not in POLICIES]
        if unknown:
            raise _fail(
                "unknown_policy",
                f"unknown policies {unknown}; available: {sorted(POLICIES)}",
            )
        return PagingRequest(
            parents=parents,
            weights=weights,
            memory=memory,
            algorithm=_parse_algorithm(obj),
            page_size=_require_int(obj.get("page_size", 1), "page_size", lo=1, hi=10**9),
            policies=tuple(policies),
            seed=_require_int(obj.get("seed", 0), "seed", lo=0, hi=2**32 - 1),
            timeout=timeout,
            engine=engine,
            trace=trace,
        )

    return ExactRequest(
        parents=parents,
        weights=weights,
        memory=memory,
        max_states=_require_int(
            obj.get("max_states", 2_000_000), "max_states", lo=1, hi=10**9
        ),
        node_limit=_require_int(obj.get("node_limit", 24), "node_limit", lo=1, hi=64),
        timeout=timeout,
        engine=engine,
        trace=trace,
    )
