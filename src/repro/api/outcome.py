"""The uniform result envelope every backend returns.

One request, one :class:`Outcome` — whether the request ran in-process,
on an embedded worker pool, or behind a remote server.  The dataclass
splits cleanly into two halves:

* the **canonical** half (``ok``, ``key``, ``result`` / error code +
  message) — byte-identical for identical requests on every backend
  (:meth:`Outcome.canonical` is the comparison form the equivalence
  harness asserts on);
* the **provenance** half (``cached``, ``deduped``, ``backend``,
  ``elapsed_seconds``) — where the answer came from and how long it
  took, legitimately different between a cold compute and a warm cache
  hit.

The wire format of the service is exactly the canonical half plus the
cache provenance: :func:`ok_envelope` / :func:`error_envelope` build
it, :meth:`Outcome.from_envelope` / :meth:`Outcome.to_envelope` convert
losslessly, so ``repro.service.protocol`` stays a thin (de)serializer
of this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..datasets.store import canonical_json
from .errors import ApiError, api_error

__all__ = [
    "Outcome",
    "PROTOCOL_VERSION",
    "error_envelope",
    "ok_envelope",
]

#: bump on incompatible wire-format changes; echoed in every response.
PROTOCOL_VERSION = 1


def error_envelope(code: str, message: str) -> dict[str, Any]:
    """The uniform error response body."""
    return {
        "ok": False,
        "protocol": PROTOCOL_VERSION,
        "error": {"code": code, "message": message},
    }


def ok_envelope(
    result: Mapping[str, Any],
    *,
    key: str,
    cached: bool = False,
    deduped: bool = False,
    timings: Mapping[str, float] | None = None,
) -> dict[str, Any]:
    """The uniform success response body.

    ``cached`` — served from the on-disk result cache; ``deduped`` —
    coalesced onto an identical in-flight request's computation;
    ``timings`` — the per-stage timing breakdown of a traced request
    (provenance: the key is absent entirely when tracing is off, so
    untraced envelopes are byte-identical to the historical shape).
    """
    envelope = {
        "ok": True,
        "protocol": PROTOCOL_VERSION,
        "key": key,
        "cached": cached,
        "deduped": deduped,
        "result": dict(result),
    }
    if timings:
        envelope["timings"] = dict(timings)
    return envelope


@dataclass(frozen=True)
class Outcome:
    """What became of one request, on whichever backend ran it."""

    ok: bool
    key: str
    result: Mapping[str, Any] | None = None
    error_code: str | None = None
    error_message: str | None = None
    #: the HTTP status the serving side attached to the error, when one
    #: did (``None`` for locally produced errors, whose status derives
    #: from the code table).  Kept out of :meth:`canonical` — it is
    #: transport detail, but it preserves the wire classification for
    #: codes this client version does not know.
    error_status: int | None = None
    #: provenance — excluded from :meth:`canonical`
    cached: bool = False
    deduped: bool = False
    backend: str = ""
    elapsed_seconds: float = 0.0
    #: per-stage timing breakdown of a traced request (``decode``,
    #: ``queue``, ``solve``, ``cache``, ``encode`` — seconds per stage);
    #: ``None`` unless the request carried a trace id.
    timings: Mapping[str, float] | None = None

    @classmethod
    def from_envelope(
        cls,
        envelope: Mapping[str, Any],
        *,
        key: str = "",
        backend: str = "",
        elapsed_seconds: float = 0.0,
        error_status: int | None = None,
    ) -> "Outcome":
        """Lift a wire/worker envelope into the typed model.

        ``key`` backfills error envelopes (which carry none on the
        wire); a key present in the envelope always wins.
        ``error_status`` is the HTTP status a transport observed, when
        the envelope came over one.
        """
        if envelope.get("ok"):
            timings = envelope.get("timings")
            return cls(
                ok=True,
                key=str(envelope.get("key", key)),
                result=dict(envelope["result"]),
                cached=bool(envelope.get("cached", False)),
                deduped=bool(envelope.get("deduped", False)),
                backend=backend,
                elapsed_seconds=elapsed_seconds,
                timings=dict(timings) if timings else None,
            )
        error = envelope.get("error", {})
        return cls(
            ok=False,
            key=str(envelope.get("key", key)),
            error_code=str(error.get("code", "internal")),
            error_message=str(error.get("message", "unknown error")),
            error_status=error_status,
            backend=backend,
            elapsed_seconds=elapsed_seconds,
        )

    def to_envelope(self) -> dict[str, Any]:
        """The service's wire form of this outcome (lossless round-trip
        with :meth:`from_envelope` up to provenance the wire carries)."""
        if self.ok:
            assert self.result is not None
            return ok_envelope(
                self.result,
                key=self.key,
                cached=self.cached,
                deduped=self.deduped,
                timings=self.timings,
            )
        return error_envelope(self.error_code or "internal", self.error_message or "")

    def canonical(self) -> bytes:
        """The backend-independent identity of this outcome.

        Canonical JSON bytes of the envelope *minus* provenance
        (``cached``/``deduped``/``backend``/timings): identical requests
        must produce identical bytes on every backend, cold or warm.
        """
        if self.ok:
            body: dict[str, Any] = {
                "ok": True,
                "protocol": PROTOCOL_VERSION,
                "key": self.key,
                "result": dict(self.result or {}),
            }
        else:
            body = {
                "ok": False,
                "protocol": PROTOCOL_VERSION,
                "error": {"code": self.error_code, "message": self.error_message},
            }
        return canonical_json(body).encode("utf-8")

    def raise_for_error(self) -> "Outcome":
        """Raise the taxonomy's exception for an error outcome; else return self."""
        if not self.ok:
            raise self.error
        return self

    @property
    def error(self) -> ApiError | None:
        """The typed error this outcome maps to, or ``None`` on success."""
        if self.ok:
            return None
        return api_error(
            self.error_code or "internal",
            self.error_message or "unknown error",
            status=self.error_status,
        )

    # ------------------------------------------------------------------ #
    # convenience accessors over the kind-specific result payloads
    # ------------------------------------------------------------------ #

    @property
    def io_volume(self) -> int | None:
        """The schedule's I/O volume, when the result carries one."""
        if self.result is None:
            return None
        value = self.result.get("io_volume")
        return None if value is None else int(value)

    @property
    def schedule(self) -> tuple[int, ...] | None:
        """The task schedule, when the result carries one."""
        if self.result is None or "schedule" not in self.result:
            return None
        return tuple(self.result["schedule"])
