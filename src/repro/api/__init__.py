"""``repro.api`` — the one typed solver API behind every surface.

The paper's contribution is a set of strategies all evaluated through
one fair lens (schedule → FiF-optimal I/O, Theorem 1).  This package is
that lens as a stable public API: **one request model, one result
envelope, one error taxonomy, pluggable execution backends** — the CLI,
the batch experiment engine and the HTTP service are all thin layers
over it.

Quick start (the paper's Figure 2b instance: ``M = 6`` forces 3 units
of I/O)::

    from repro.api import LocalBackend, parse_request

    request = parse_request({
        "kind": "solve",
        "tree": {"parents": [1, 2, 3, 8, 5, 6, 7, 8, -1],
                 "weights": [6, 2, 5, 3, 6, 2, 5, 3, 1]},
        "memory": 6,
        "algorithm": "RecExpand",
    })
    with LocalBackend() as backend:
        outcome = backend.submit(request).raise_for_error()
    print(outcome.io_volume, outcome.schedule)   # 3 (0, 1, ..., 8)

The same ``request`` — same content-addressed :meth:`key`, same
byte-identical canonical outcome — runs unchanged on a
:class:`PoolBackend` (embedded worker processes, shared-memory forest
transport) or a :class:`RemoteBackend` (a running ``repro-ioschedule
serve`` instance), and a result cache written by any of them serves
warm hits to all.

Module map
----------
``repro.api.requests``   typed ``SolveRequest`` / ``PagingRequest`` /
                         ``ExactRequest`` / ``BatchRequest`` + the one
                         validation and buffer-digest key path
``repro.api.outcome``    the uniform ``Outcome`` envelope + wire helpers
``repro.api.errors``     stable error codes, HTTP statuses and CLI exit
                         codes in one taxonomy
``repro.api.execution``  the runner cores shared by every backend
``repro.api.backends``   the ``Backend`` protocol and the three
                         interchangeable implementations
"""

from .backends import Backend, LocalBackend, PoolBackend, RemoteBackend
from .errors import (
    ApiError,
    BackendError,
    CLIENT_FAULT_STATUSES,
    ERROR_CODES,
    EXIT_BAD_INPUT,
    EXIT_OK,
    EXIT_TRANSPORT,
    HTTP_STATUS,
    ProtocolError,
    TransportError,
    api_error,
    exit_code_for_status,
)
from .execution import (
    build_tree,
    execute_batch,
    execute_request,
    run_exact,
    run_paging,
    run_solve,
)
from .outcome import Outcome, PROTOCOL_VERSION, error_envelope, ok_envelope
from .requests import (
    BatchRequest,
    CanonicalRequest,
    DEFAULT_PAGING_POLICIES,
    ENGINE_VERSION,
    ExactRequest,
    MAX_NODES,
    MEMORY_POLICIES,
    PagingRequest,
    Request,
    SolveRequest,
    parse_request,
    unit_seed,
)

__all__ = [
    # requests
    "BatchRequest",
    "CanonicalRequest",
    "DEFAULT_PAGING_POLICIES",
    "ENGINE_VERSION",
    "ExactRequest",
    "MAX_NODES",
    "MEMORY_POLICIES",
    "PagingRequest",
    "Request",
    "SolveRequest",
    "parse_request",
    "unit_seed",
    # outcome
    "Outcome",
    "PROTOCOL_VERSION",
    "error_envelope",
    "ok_envelope",
    # errors
    "ApiError",
    "BackendError",
    "CLIENT_FAULT_STATUSES",
    "ERROR_CODES",
    "EXIT_BAD_INPUT",
    "EXIT_OK",
    "EXIT_TRANSPORT",
    "HTTP_STATUS",
    "ProtocolError",
    "TransportError",
    "api_error",
    "exit_code_for_status",
    # execution
    "build_tree",
    "execute_batch",
    "execute_request",
    "run_exact",
    "run_paging",
    "run_solve",
    # backends
    "Backend",
    "LocalBackend",
    "PoolBackend",
    "RemoteBackend",
]
