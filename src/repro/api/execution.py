"""Request execution cores: one implementation behind every backend.

These functions are where a validated request actually turns into a
result — the *same* functions whether the caller is the in-process
:class:`~repro.api.backends.LocalBackend`, a worker process of the
service's pool, or the batch engine's shard workers.  That sharing is
the whole point: identical requests produce byte-identical payloads on
every surface, so cache entries written by one are served by all.

``build_tree`` picks the tree representation (object tree vs flat
:class:`~repro.core.arraytree.ArrayTree`) by size; ``run_solve`` /
``run_paging`` / ``run_exact`` mirror the corresponding CLI commands;
``execute_request`` wraps any of them in the uniform envelope with
content-derived RNG seeding; ``execute_batch`` solves a
:class:`~repro.api.requests.BatchRequest` through the forest kernels
(one :class:`~repro.core.forest.ArrayForest` per batch) with a
byte-identical per-tree fallback.
"""

from __future__ import annotations

import random
from typing import Any

from ..analysis.bounds import MemoryBounds, memory_bounds
from ..core.arraytree import ArrayTree
from ..core.engine import AUTO_THRESHOLD, default_engine, engine_scope
from ..core.forest import ArrayForest
from ..core.forest_kernels import (
    FOREST_STRATEGIES,
    forest_memory_bounds,
    forest_traversals,
)
from ..core.simulator import InfeasibleSchedule
from ..core.traversal import InvalidTraversal, validate
from ..core.tree import TaskTree, TreeError
from ..obs.schedtrace import schedule_trace
from ..obs.trace import span, trace_context
from .outcome import error_envelope, ok_envelope
from .requests import (
    BatchRequest,
    ExactRequest,
    PagingRequest,
    Request,
    SolveRequest,
    unit_seed,
)

__all__ = [
    "UNSOLVABLE_ERRORS",
    "build_tree",
    "execute_batch",
    "execute_batch_request",
    "execute_request",
    "run_exact",
    "run_paging",
    "run_solve",
]

#: the solver-refusal exceptions that map to the client-fault code
#: ``unsolvable`` (anything else is a genuine internal error and must
#: propagate).  One definition, shared by every envelope-wrapping site.
UNSOLVABLE_ERRORS = (InfeasibleSchedule, InvalidTraversal, ValueError, KeyError)


def build_tree(parents: Any, weights: Any) -> TaskTree | ArrayTree:
    """The tree object a request executes on.

    Large requests go straight to :class:`~repro.core.arraytree.ArrayTree`
    — vectorised construction, no per-node object graph, and the engine
    dispatch then keeps every kernel on the flat path — instead of
    paying for a ``TaskTree`` first and converting on each algorithm
    call.  Small requests keep the object tree (below
    :data:`~repro.core.engine.AUTO_THRESHOLD` the conversion overhead
    outweighs the win), as do weights beyond int64.  Accepts Python
    sequences or numpy columns (the shared-memory path).
    """
    import numpy as np

    if len(parents) >= AUTO_THRESHOLD:
        try:
            return ArrayTree(parents, weights)
        except TreeError:
            pass  # e.g. weights beyond int64: the object tree handles them
    if isinstance(parents, np.ndarray):
        parents = parents.tolist()
        weights = weights.tolist()
    return TaskTree(parents, weights)


def run_solve(
    request: SolveRequest, *, tree: TaskTree | ArrayTree | None = None
) -> dict[str, Any]:
    """Execute a ``solve`` request; mirrors ``repro-ioschedule solve``."""
    from ..experiments.registry import get_algorithm

    if tree is None:
        tree = build_tree(request.parents, request.weights)
    traversal = get_algorithm(request.algorithm)(tree, request.memory)
    validate(tree, traversal, request.memory)
    result = {
        "kind": "solve",
        "algorithm": request.algorithm,
        "memory": request.memory,
        "io_volume": traversal.io_volume,
        "performance": traversal.performance(request.memory),
        "schedule": list(traversal.schedule),
        "io": {str(v): a for v, a in enumerate(traversal.io) if a},
    }
    if getattr(request, "trace_schedule", False):
        # the memory hill-valley curve + cumulative I/O, derived from the
        # solver's own outputs — inside the result so cache entries under
        # the flag-inclusive key always carry it
        trace = schedule_trace(
            request.parents, request.weights, traversal.schedule, traversal.io
        )
        result["schedule_trace"] = trace
        result["peak_memory"] = trace["peak_memory"]
    return result


def run_paging(
    request: PagingRequest, *, tree: TaskTree | ArrayTree | None = None
) -> dict[str, Any]:
    """Execute a ``paging`` request; mirrors ``repro-ioschedule paging``."""
    from ..experiments.registry import get_algorithm
    from ..io import HDD, estimate_time, paged_io

    if tree is None:
        tree = build_tree(request.parents, request.weights)
    schedule = get_algorithm(request.algorithm)(tree, request.memory).schedule
    rows = []
    for policy in request.policies:
        res = paged_io(
            tree,
            schedule,
            request.memory,
            page_size=request.page_size,
            policy=policy,
            seed=request.seed,
            trace=True,
        )
        rows.append(
            {
                "policy": policy,
                "write_pages": res.write_pages,
                "read_pages": res.read_pages,
                "write_units": res.write_units,
                "est_seconds": estimate_time(res.events, HDD).seconds,
            }
        )
    return {
        "kind": "paging",
        "algorithm": request.algorithm,
        "memory": request.memory,
        "page_size": request.page_size,
        "policies": rows,
    }


def run_exact(
    request: ExactRequest, *, tree: TaskTree | ArrayTree | None = None
) -> dict[str, Any]:
    """Execute an ``exact`` request; mirrors ``repro-ioschedule exact``."""
    from ..algorithms.exact import exact_min_io
    from ..experiments.registry import PAPER_ALGORITHMS, get_algorithm

    if tree is None:
        tree = build_tree(request.parents, request.weights)
    result = exact_min_io(
        tree,
        request.memory,
        max_states=request.max_states,
        node_limit=request.node_limit,
    )
    gaps: dict[str, dict[str, Any]] = {}
    for name in PAPER_ALGORITHMS:
        io = get_algorithm(name)(tree, request.memory).io_volume
        gap = (request.memory + io) / (request.memory + result.io_volume) - 1.0
        gaps[name] = {"io_volume": io, "gap": gap}
    return {
        "kind": "exact",
        "memory": request.memory,
        "io_volume": result.io_volume,
        "optimal": result.optimal,
        "lower_bound": result.lower_bound,
        "states_expanded": result.states_expanded,
        "certificate": result.certificate(),
        "gaps": gaps,
    }


_RUNNERS = {
    SolveRequest.kind: run_solve,
    PagingRequest.kind: run_paging,
    ExactRequest.kind: run_exact,
}


def execute_request(
    request: Request,
    *,
    seed_rng: bool = True,
    tree: TaskTree | ArrayTree | None = None,
) -> dict[str, Any]:
    """Run one validated request and wrap the outcome in an envelope.

    ``seed_rng`` seeds the process-global RNG from the request's content
    address — the same contract as the batch engine's shards, so
    identical requests behave identically on any worker.  It is disabled
    in inline (thread) mode, where concurrent batches share one
    interpreter: seeding there would interleave across threads (no
    determinism gained) and clobber the embedding process's RNG state.
    ``tree`` is the pre-built tree object, when the transport already
    materialised one (the shared-memory path).
    """
    key = request.key()
    if seed_rng:
        random.seed(unit_seed(key))
    trace_id = getattr(request, "trace", None)
    if trace_id is None:
        try:
            # Thread-local scope: inline (thread-pool) workers honour each
            # request's engine without clobbering their batch-mates'.
            with engine_scope(request.engine):
                result = _RUNNERS[request.kind](request, tree=tree)
        except UNSOLVABLE_ERRORS as exc:
            return error_envelope("unsolvable", f"{type(exc).__name__}: {exc}")
        return ok_envelope(result, key=key)
    # traced request: time the solver stage into the request's breakdown
    with trace_context(trace_id) as trace:
        try:
            with engine_scope(request.engine), span("solve"):
                result = _RUNNERS[request.kind](request, tree=tree)
        except UNSOLVABLE_ERRORS as exc:
            return error_envelope("unsolvable", f"{type(exc).__name__}: {exc}")
        return ok_envelope(result, key=key, timings=trace.stages)


def execute_batch_request(
    request: BatchRequest, *, seed_rng: bool = True
) -> dict[str, Any]:
    """Run one batch unit and wrap the outcome in an envelope.

    The :class:`~repro.api.requests.BatchRequest` counterpart of
    :func:`execute_request`, so the RNG-seeding and failure-
    discrimination contracts live here once for every backend:
    ``seed_rng`` seeds the process-global RNGs (``random`` *and*
    ``numpy``, matching the batch engine's shard workers) from the
    unit's content address, and solver refusals become the client-fault
    code ``unsolvable`` while anything else propagates as the internal
    error it is.
    """
    key = request.key()
    if seed_rng:
        import numpy as np

        seed = unit_seed(key)
        random.seed(seed)
        np.random.seed(seed)
    try:
        result = execute_batch(request)
    except UNSOLVABLE_ERRORS as exc:
        return error_envelope("unsolvable", f"{type(exc).__name__}: {exc}")
    return ok_envelope(result, key=key)


def execute_batch(request: BatchRequest) -> dict[str, Any]:
    """Solve every tree of a batch under one parameter set.

    The payload is the batch engine's column form — per-algorithm I/O
    volumes plus the memory bound and node count of every solved tree::

        {"io": {algorithm: [...]}, "memories": [...], "sizes": [...]}

    With ``request.forest`` set (the default) the batch solves through
    the forest layer: one :class:`~repro.core.forest.ArrayForest` packs
    all trees, the memory grid comes from one whole-forest bounds sweep,
    and every kernel-backed strategy runs as a forest batch; strategies
    without a forest kernel (the RecExpand family) fall back to per-tree
    dispatch over the forest's member views.  Both paths produce
    byte-identical payloads — pinning ``engine="object"`` (field or
    ``REPRO_ENGINE``) disables the forest path entirely, as do trees
    beyond the forest's int64 budgets (e.g. huge weights).
    """
    from ..experiments.registry import get_algorithm

    io: dict[str, list[int]] = {a: [] for a in request.algorithms}
    memories: list[int] = []
    sizes: list[int] = []
    with engine_scope(request.engine):
        forest = None
        if request.forest and request.trees and default_engine() != "object":
            try:
                forest = ArrayForest.from_pairs(request.trees)
            except TreeError:
                forest = None  # beyond int64 budgets: per-tree engines cope
        if forest is not None:
            _execute_batch_forest(request, forest, io, memories, sizes)
        else:
            for parents, weights in request.trees:
                tree = TaskTree(parents, weights)
                memory = request.memory
                if memory is None:
                    bounds = memory_bounds(tree)
                    if not bounds.has_io_regime:
                        continue
                    memory = bounds.grid()[request.bound]
                memories.append(memory)
                sizes.append(tree.n)
                for a in request.algorithms:
                    traversal = get_algorithm(a)(tree, memory)
                    validate(tree, traversal, memory)
                    io[a].append(traversal.io_volume)
    return {
        "io": {a: list(v) for a, v in io.items()},
        "memories": memories,
        "sizes": sizes,
    }


def _execute_batch_forest(
    request: BatchRequest,
    forest: ArrayForest,
    io: dict[str, list[int]],
    memories: list[int],
    sizes: list[int],
) -> None:
    """The forest execution path of :func:`execute_batch` (same columns out)."""
    from ..experiments.registry import get_algorithm

    if request.memory is None:
        bounds = [
            MemoryBounds(lb=lb, peak_incore=peak)
            for lb, peak in forest_memory_bounds(forest)
        ]
        keep = [k for k, b in enumerate(bounds) if b.has_io_regime]
        if not keep:
            return
        mems = [bounds[k].grid()[request.bound] for k in keep]
        trees = [forest.tree(k) for k in keep]
        kept_forest = ArrayForest.from_trees(trees)
    else:
        mems = [request.memory] * forest.n_trees
        trees = [forest.tree(k) for k in range(forest.n_trees)]
        kept_forest = forest
    memories.extend(mems)
    sizes.extend(t.n for t in trees)
    for a in request.algorithms:
        if a in FOREST_STRATEGIES:
            for tree, memory, traversal in zip(
                trees, mems, forest_traversals(kept_forest, a, mems)
            ):
                validate(tree, traversal, memory)
                io[a].append(traversal.io_volume)
        else:
            for tree, memory in zip(trees, mems):
                traversal = get_algorithm(a)(tree, memory)
                validate(tree, traversal, memory)
                io[a].append(traversal.io_volume)
