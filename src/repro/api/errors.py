"""One error taxonomy for every execution surface.

The CLI, the batch engine and the service used to fail in three
dialects: ``argparse``/``ValueError`` exits, :class:`ProtocolError`
codes behind HTTP statuses, and a client-side ``ServiceError`` whose
status the CLI re-mapped onto its exit-code contract.  This module is
the single vocabulary underneath all of them:

* :data:`ERROR_CODES` — the stable machine-readable codes (part of the
  wire protocol; messages are for humans and may change);
* :data:`HTTP_STATUS` — the HTTP status the service maps each code to;
* :data:`EXIT_BAD_INPUT` / :data:`EXIT_TRANSPORT` — the CLI contract
  (2 = your request was wrong, 1 = transport/overload/internal trouble);
* :class:`ApiError` — the common exception carrying ``code``,
  ``status`` and the derived ``exit_code``, so the *same* invalid
  request fails identically whether it is rejected locally, by an
  embedded worker pool, or by a remote server.

Every error class here keeps the invariant ``exit_code ==
exit_code_for_status(status)``: client-fault statuses (4xx validation
rejections, including 422 ``unsolvable``) exit 2, everything else —
transport failures, overload, timeouts, internal errors — exits 1.
"""

from __future__ import annotations

__all__ = [
    "ApiError",
    "BackendError",
    "CLIENT_FAULT_STATUSES",
    "ERROR_CODES",
    "EXIT_BAD_INPUT",
    "EXIT_OK",
    "EXIT_TRANSPORT",
    "HTTP_STATUS",
    "ProtocolError",
    "TransportError",
    "api_error",
    "exit_code_for_status",
]

#: the CLI exit-code contract (also honoured by ``main``'s handlers).
EXIT_OK = 0
EXIT_TRANSPORT = 1  # transport, overload, timeout, internal failure
EXIT_BAD_INPUT = 2  # bad arguments or an invalid request

#: the stable error vocabulary.  Values are the HTTP statuses the server
#: maps each code to; clients should dispatch on the *code*, never on the
#: message text.
HTTP_STATUS: dict[str, int] = {
    "bad_json": 400,        # body is not a JSON object
    "bad_request": 400,     # envelope-level problem (not a dict, missing kind)
    "unknown_kind": 400,    # kind not in {solve, paging, exact}
    "bad_field": 400,       # a field has the wrong type/range
    "invalid_tree": 400,    # parents/weights do not define a valid tree
    "unknown_algorithm": 400,
    "unknown_policy": 400,
    "bad_frame": 400,       # binary frame is malformed (truncated, lying lengths…)
    "unsupported_wire_version": 400,  # frame speaks a different frame layout
    "version_skew": 400,    # frame built against another protocol/engine version
    "not_found": 404,       # no such endpoint
    "method_not_allowed": 405,
    "payload_too_large": 413,
    "unsupported_media_type": 415,  # Content-Type is neither JSON nor the frame type
    "unsolvable": 422,      # validation passed but the solver refused/failed
    "queue_full": 429,      # backpressure: admission queue at capacity
    "internal": 500,
    "timeout": 504,         # per-request deadline elapsed before completion
}

ERROR_CODES = frozenset(HTTP_STATUS)

#: statuses that mean "your request was wrong" (exit 2), as opposed to
#: transport/overload/internal trouble (exit 1).
CLIENT_FAULT_STATUSES = frozenset({400, 404, 405, 413, 415, 422})


def exit_code_for_status(status: int) -> int:
    """Map an HTTP status (0 = never reached a server) onto the exit contract."""
    return EXIT_BAD_INPUT if status in CLIENT_FAULT_STATUSES else EXIT_TRANSPORT


class ApiError(Exception):
    """Base of every request failure, on any backend.

    Attributes
    ----------
    code:
        a stable code from :data:`ERROR_CODES` (or ``transport`` for
        connection-level failures that never produced an envelope).
    status:
        the HTTP status the service maps the code to; 0 when the failure
        happened before any server was involved.
    message:
        the human-readable detail (free to change between versions).
    exit_code:
        the CLI exit code the failure maps to (see module docstring).
    """

    def __init__(self, code: str, message: str, status: int | None = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.status = HTTP_STATUS.get(code, 0) if status is None else status

    @property
    def exit_code(self) -> int:
        return exit_code_for_status(self.status)


class ProtocolError(ApiError, ValueError):
    """A request that violates the schema; carries a stable error code.

    A :class:`ValueError` subclass for backwards compatibility with the
    original ``repro.service.protocol`` definition (callers catching
    ``ValueError`` keep working).  Restricted to client-fault codes at
    construction, so ``exit_code`` is :data:`EXIT_BAD_INPUT` through
    the base invariant rather than an override that could contradict it.
    """

    def __init__(self, code: str, message: str) -> None:
        assert HTTP_STATUS.get(code) in CLIENT_FAULT_STATUSES, code
        super().__init__(code, message)


class BackendError(ApiError):
    """A failure reported by a backend's execution side (worker, server)."""


class TransportError(BackendError):
    """The backend could not be reached at all (connection-level failure)."""

    def __init__(self, message: str) -> None:
        super().__init__("transport", message, status=0)


def api_error(code: str, message: str, status: int | None = None) -> ApiError:
    """The canonical exception for an error code, on any surface.

    Validation-style client faults come back as :class:`ProtocolError`
    (so ``except ValueError`` call sites keep working); everything else
    — overload, timeouts, internal failures — as :class:`BackendError`.
    ``transport`` maps to :class:`TransportError`.
    """
    if code == "transport":
        return TransportError(message)
    resolved = HTTP_STATUS.get(code, 500) if status is None else status
    if code in ERROR_CODES and resolved in CLIENT_FAULT_STATUSES:
        return ProtocolError(code, message)
    return BackendError(code, message, status=resolved)
