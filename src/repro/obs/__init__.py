"""``repro.obs`` — the observability layer: metrics, spans, traces.

Three small, dependency-free pieces shared by every execution surface:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  of counters, gauges and bounded histograms, rendered as the
  service's legacy JSON shape or Prometheus text exposition;
* :mod:`repro.obs.trace` — contextvar-propagated span tracing: a
  request-scoped stage-timing breakdown that crosses the wire and the
  worker-process boundary via an optional ``trace`` request field;
* :mod:`repro.obs.schedtrace` — per-request schedule traces: the
  memory hill-valley curve and cumulative I/O of a solved traversal,
  computed from kernel outputs behind the ``trace_schedule`` flag.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from .schedtrace import schedule_trace
from .trace import (
    MAX_TRACE_ID,
    Trace,
    current_trace,
    current_trace_id,
    new_trace_id,
    span,
    trace_context,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    # spans
    "MAX_TRACE_ID",
    "Trace",
    "current_trace",
    "current_trace_id",
    "new_trace_id",
    "span",
    "trace_context",
    # schedule traces
    "schedule_trace",
]
