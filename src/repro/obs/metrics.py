"""Process-wide metrics: counters, gauges, bounded histograms.

One registry, one vocabulary, two renderings.  Every layer of the stack
— the HTTP service, the execution backends, the worker pool, the batch
engine, the result cache — counts into the same small set of metric
primitives, and the registry renders them either as the service's
legacy JSON shape or as Prometheus text exposition.

Design constraints, in order:

* **Near-zero hot-path cost.**  ``Counter.inc`` is one attribute add;
  label resolution (``counter.labels(encoding="json")``) returns a
  cached child counter, so call sites resolve their labels once at
  setup and keep the bare child.  Only :class:`Histogram` takes a lock
  (its ring and running sum must stay consistent across the asyncio
  loop recording latencies and scrape threads reading them).
* **Bounded memory.**  Histograms keep a fixed-size ring of the most
  recent observations — percentiles are exact over that window — plus
  a running total count and sum that never reset (the Prometheus
  ``_count``/``_sum`` series).
* **Exact legacy percentiles.**  ``Histogram.percentile`` is the
  service's historical formula (``sorted[min(len - 1, int(q * len))]``)
  so the JSON ``/metrics`` shape stays numerically identical.

Counters tolerate concurrent increments (a ``+=`` per call; under the
GIL a racing increment can at worst be lost, never corrupted), which is
the right trade for per-request counting; anything that must be exact
is incremented from a single thread (the service's event loop).
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any, Callable, Mapping

logger = logging.getLogger(__name__)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
]


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: tuple[tuple[str, str], ...]) -> str:
    return "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"


class Counter:
    """A monotonic counter, optionally with labelled children.

    ``labels(**kv)`` returns a child counter cached per label set; the
    parent's :attr:`value` is its own count plus the sum of all
    children, so a call site may mix labelled and unlabelled
    increments without double counting.
    """

    __slots__ = ("name", "help", "_value", "_children")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0
        self._children: dict[tuple[tuple[str, str], ...], Counter] = {}

    def labels(self, **labels: Any) -> "Counter":
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children.setdefault(key, Counter(self.name))
        return child

    def inc(self, amount: int | float = 1) -> None:
        self._value += amount

    @property
    def value(self) -> int | float:
        return self._value + sum(c._value for c in self._children.values())

    def child_values(self) -> dict[str, int | float]:
        """``{label-value: count}`` for single-label counters (JSON shape)."""
        out: dict[str, int | float] = {}
        for key, child in self._children.items():
            label = ",".join(v for _, v in key)
            out[label] = child._value
        return out

    def _series(self) -> list[tuple[str, int | float]]:
        lines: list[tuple[str, int | float]] = []
        if self._value or not self._children:
            lines.append(("", self._value))
        for key in sorted(self._children):
            lines.append((_format_labels(key), self._children[key]._value))
        return lines


class Gauge:
    """A point-in-time value: either set directly or read via callback.

    A crashing callback must stay distinguishable from a legitimately
    idle reading, so scrape failures are counted on the gauge (the
    registry aggregates them as ``gauge_scrape_errors_total``) and
    logged with the traceback once per gauge; the scrape itself falls
    back to the last directly-``set`` value (0 if never set).
    """

    __slots__ = ("name", "help", "_value", "_fn", "scrape_errors", "_error_logged")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value: int | float = 0
        self._fn: Callable[[], int | float] | None = None
        self.scrape_errors = 0
        self._error_logged = False

    def set(self, value: int | float) -> None:
        self._value = value

    def set_function(self, fn: Callable[[], int | float]) -> None:
        """Read the gauge from ``fn`` at scrape time (e.g. queue depth)."""
        self._fn = fn

    @property
    def value(self) -> int | float:
        if self._fn is not None:
            try:
                return self._fn()
            except Exception:
                self.scrape_errors += 1
                if not self._error_logged:
                    self._error_logged = True
                    logger.exception(
                        "gauge %s: scrape callback failed; "
                        "reporting last set value", self.name,
                    )
                return self._value
        return self._value


class Histogram:
    """Bounded sliding-window histogram with exact percentile summaries.

    The ring keeps the most recent ``window`` observations; summaries
    are exact percentiles over that window.  ``total_count`` and
    ``total_sum`` accumulate forever (the Prometheus series).  All
    mutation and window reads take the same lock, so a thread scraping
    ``summary()`` mid-burst sees a consistent window.
    """

    __slots__ = ("name", "help", "_window", "_ring", "_count", "_sum", "_lock")

    def __init__(self, name: str, help: str = "", window: int = 4096):
        if window <= 0:
            raise ValueError(f"histogram window must be positive, got {window}")
        self.name = name
        self.help = help
        self._window = window
        self._ring: list[float] = [0.0] * window
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._ring[self._count % self._window] = value
            self._count += 1
            self._sum += value

    @property
    def total_count(self) -> int:
        return self._count

    @property
    def total_sum(self) -> float:
        return self._sum

    def window_values(self) -> list[float]:
        """The current window, oldest observation first."""
        with self._lock:
            if self._count <= self._window:
                return self._ring[: self._count]
            split = self._count % self._window
            return self._ring[split:] + self._ring[:split]

    @staticmethod
    def percentile(sorted_values: list[float], q: float) -> float:
        """The service's historical formula, kept bit-for-bit."""
        if not sorted_values:
            return 0.0
        index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
        return sorted_values[index]

    def summary(self, *, scale: float = 1.0) -> dict[str, float]:
        """``{count, p50, p90, p99, max}`` over the window (legacy shape)."""
        values = sorted(v * scale for v in self.window_values())
        return {
            "count": len(values),
            "p50": self.percentile(values, 0.50),
            "p90": self.percentile(values, 0.90),
            "p99": self.percentile(values, 0.99),
            "max": values[-1] if values else 0.0,
        }


class MetricsRegistry:
    """Get-or-create home for every metric of one process (or server).

    The service holds its own registry per instance (test isolation);
    library layers default to the module-level :data:`REGISTRY`.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        #: wall-clock birth time, for display/provenance only
        self.started_at = time.time()
        #: monotonic anchor — uptime must not jump on an NTP step
        self.started_monotonic = time.monotonic()

    def uptime(self) -> float:
        """Seconds since registry creation, on the monotonic clock."""
        return time.monotonic() - self.started_monotonic

    def _get(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "", window: int = 4096) -> Histogram:
        return self._get(Histogram, name, help, window=window)

    def snapshot(self) -> dict[str, Any]:
        """``{name: value}`` — labelled counters expand to sub-dicts."""
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, Any] = {}
        for name, metric in sorted(metrics.items()):
            if isinstance(metric, Counter):
                if metric._children:
                    out[name] = {"total": metric.value, **metric.child_values()}
                else:
                    out[name] = metric.value
            elif isinstance(metric, Gauge):
                out[name] = metric.value
            else:
                summary = metric.summary()
                summary["total_count"] = metric.total_count
                summary["total_sum"] = metric.total_sum
                out[name] = summary
        scrape_errors = sum(
            m.scrape_errors for m in metrics.values() if isinstance(m, Gauge)
        )
        if scrape_errors:
            out["gauge_scrape_errors_total"] = scrape_errors
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every metric."""
        with self._lock:
            metrics = dict(self._metrics)
        lines: list[str] = []
        for name, metric in sorted(metrics.items()):
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {name} counter")
                for labels, value in metric._series():
                    lines.append(f"{name}{labels} {value}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {metric.value}")
            else:
                lines.append(f"# TYPE {name} summary")
                values = sorted(metric.window_values())
                for q in (0.5, 0.9, 0.99):
                    lines.append(
                        f'{name}{{quantile="{q}"}} '
                        f"{Histogram.percentile(values, q)}"
                    )
                lines.append(f"{name}_count {metric.total_count}")
                lines.append(f"{name}_sum {metric.total_sum}")
        failing = [
            m for m in sorted(metrics.values(), key=lambda m: m.name)
            if isinstance(m, Gauge) and m.scrape_errors
        ]
        if failing:
            lines.append(
                "# HELP gauge_scrape_errors_total "
                "gauge callbacks that raised at scrape time"
            )
            lines.append("# TYPE gauge_scrape_errors_total counter")
            for m in failing:
                lines.append(
                    f'gauge_scrape_errors_total{{gauge="{m.name}"}} '
                    f"{m.scrape_errors}"
                )
        return "\n".join(lines) + "\n"


#: the process-wide default registry: what library layers (backends,
#: batch engine, worker pool) count into unless handed another one.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
