"""Lightweight span tracing with contextvar propagation.

A *trace* is a request-scoped accumulator of stage timings keyed by a
client-chosen trace id.  The active trace rides a :class:`~contextvars.
ContextVar`, so spans opened anywhere down the call stack — the
service's decode path, a worker process's solver call — land in the
right request's breakdown without threading a handle through every
signature.

The id crosses process boundaries as an ordinary optional request field
(``trace``): the JSON body and the binary wire header both carry it
unchanged, the server re-activates it per request, and worker processes
re-activate it per payload.  When no trace is active, :func:`span` is a
single ``ContextVar.get`` — cheap enough to leave in hot paths
unconditionally.

Stage vocabulary used by the service (see ``docs/architecture.md``):
``decode`` (parse/validate), ``cache`` (memo + disk lookup), ``queue``
(admission-queue wait), ``solve`` (worker compute), ``encode``
(response rendering).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "MAX_TRACE_ID",
    "Trace",
    "current_trace",
    "current_trace_id",
    "new_trace_id",
    "span",
    "trace_context",
]

#: upper bound on accepted trace-id length (request validation).
MAX_TRACE_ID = 64

_ACTIVE: ContextVar["Trace | None"] = ContextVar("repro_obs_trace", default=None)


@dataclass
class Trace:
    """One request's accumulated stage timings (seconds per stage)."""

    trace_id: str
    stages: dict[str, float] = field(default_factory=dict)

    def add(self, stage: str, seconds: float) -> None:
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds


def new_trace_id() -> str:
    """A fresh 16-hex-char id (random, not time-derived)."""
    return os.urandom(8).hex()


def current_trace() -> Trace | None:
    return _ACTIVE.get()


def current_trace_id() -> str | None:
    trace = _ACTIVE.get()
    return trace.trace_id if trace is not None else None


@contextmanager
def trace_context(trace_id: str | None = None) -> Iterator[Trace]:
    """Activate a fresh :class:`Trace` for the enclosed block."""
    trace = Trace(trace_id if trace_id else new_trace_id())
    token = _ACTIVE.set(trace)
    try:
        yield trace
    finally:
        _ACTIVE.reset(token)


@contextmanager
def span(name: str) -> Iterator[Trace | None]:
    """Time the enclosed block into the active trace's ``name`` stage.

    A no-op (one contextvar read) when no trace is active, so call
    sites need no conditional of their own.
    """
    trace = _ACTIVE.get()
    if trace is None:
        yield None
        return
    t0 = time.perf_counter()
    try:
        yield trace
    finally:
        trace.add(name, time.perf_counter() - t0)
