"""Per-request schedule traces: the memory hill-valley curve of a solve.

The paper's central objects are a traversal's memory profile and the
I/O volume it induces; this module turns a solved traversal into the
curve an operator actually looks at — memory demand over event index,
with cumulative I/O alongside — computed from existing kernel outputs
(``schedule`` + per-node ``io``), no re-solve.

The walk mirrors :func:`repro.core.trace.replay` event for event (reads
restoring evicted inputs, execute with its transient :math:`\\bar w_v`
footprint, the write spilling fresh output), so the curve's maximum
equals the replay's ``peak_memory`` *exactly* — that identity is pinned
by tests and is the acceptance bar for ``trace_schedule`` requests.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["schedule_trace"]

#: one char per event in the trace's ``kinds`` string.
_READ, _EXECUTE, _WRITE = "r", "x", "w"


def schedule_trace(
    parents: Sequence[int],
    weights: Sequence[int],
    schedule: Sequence[int],
    io: Sequence[int],
) -> dict[str, Any]:
    """The event-indexed memory/I/O curve of one solved traversal.

    Parameters mirror the solver's outputs: ``schedule`` is the
    execution order, ``io`` the per-node write amounts (index-aligned
    with the tree).  Returns::

        {"version": 1,
         "nodes":         [node id per event],
         "kinds":         "rxwrx..."   (r=read, x=execute, w=write),
         "memory":        [memory demand at each event],
         "cumulative_io": [write volume after each event],
         "peak_memory":   max(memory),
         "io_volume":     cumulative_io[-1]}

    ``memory[i]`` is exactly the capacity check :func:`repro.core.trace.
    replay` performs at the corresponding event (the resident total
    after a read, the transient ``wbar + resident`` at an execute, the
    resident total after a write), so ``peak_memory`` matches the
    replay's and the solver's reported peak bit for bit.
    """
    n = len(parents)
    children: list[list[int]] = [[] for _ in range(n)]
    for v in range(n):
        p = int(parents[v])
        if p >= 0:
            children[p].append(v)

    resident = [0] * n
    resident_total = 0
    cumulative = 0
    nodes: list[int] = []
    kinds: list[str] = []
    memory: list[int] = []
    cumulative_io: list[int] = []

    def record(kind: str, node: int, need: int) -> None:
        nodes.append(node)
        kinds.append(kind)
        memory.append(need)
        cumulative_io.append(cumulative)

    for v in schedule:
        v = int(v)
        # reads: restore every evicted input right before the consumer
        for c in children[v]:
            amount = int(io[c])
            if amount:
                resident[c] += amount
                resident_total += amount
                record(_READ, c, resident_total)
        # execute: free the inputs, provision the transient footprint
        inputs = 0
        for c in children[v]:
            inputs += int(weights[c])
            resident_total -= resident[c]
            resident[c] = 0
        wbar = max(int(weights[v]), inputs)
        record(_EXECUTE, v, wbar + resident_total)
        resident[v] = int(weights[v])
        resident_total += resident[v]
        # write: spill the fresh output right after production
        amount = int(io[v])
        if amount:
            resident[v] -= amount
            resident_total -= amount
            cumulative += amount
            record(_WRITE, v, resident_total)

    return {
        "version": 1,
        "nodes": nodes,
        "kinds": "".join(kinds),
        "memory": memory,
        "cumulative_io": cumulative_io,
        "peak_memory": max(memory) if memory else 0,
        "io_volume": cumulative,
    }
