"""The paging simulator: execute a schedule at page granularity.

Semantics mirror the paper's node-level model (Section 3.1), page by page:

* memory holds ``frames = M // page_size`` page frames;
* executing node *v* first faults in every non-resident page of its
  children (all input pages must be resident simultaneously), then
  consumes them and produces the ``pages(v)`` output pages *in place* —
  the step's own working set is ``max(input pages, output pages)``
  frames, the paging analogue of :math:`\\bar w_v`;
* pages of other active outputs may stay resident; when a step overflows,
  the eviction policy picks victims among them (current-step pages are
  pinned).  Every page in this workload is written once and read at most
  once, so each eviction is a dirty write-back and causes exactly one
  read later.

With the Belady policy this is provably the best any paging system can do
for the given schedule; comparing it against LRU/FIFO/random quantifies
what an *online* memory manager loses over the paper's offline bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.simulator import InfeasibleSchedule, TreeLike
from .pages import PageMap
from .policies import EvictionPolicy, make_policy

__all__ = ["PageEvent", "PagingResult", "paged_io", "page_policy_comparison"]


@dataclass(frozen=True)
class PageEvent:
    """One disk transfer: ``op`` is ``"write"`` (eviction) or ``"read"`` (fault)."""

    step: int
    op: str
    page: int
    node: int


@dataclass(frozen=True)
class PagingResult:
    """Outcome of one paged execution.

    Volumes are reported in pages and in memory units (pages are whole-page
    transfers, so ``write_units = write_pages * page_size``); ``io_by_node``
    is the paging analogue of the paper's ``tau`` (in pages).
    """

    policy: str
    page_size: int
    frames: int
    write_pages: int
    read_pages: int
    peak_frames: int
    io_by_node: Mapping[int, int]
    events: tuple[PageEvent, ...] = field(default=())

    @property
    def write_units(self) -> int:
        return self.write_pages * self.page_size

    @property
    def read_units(self) -> int:
        return self.read_pages * self.page_size

    def performance(self, memory: int) -> float:
        """The paper's ``(M + io) / M`` metric on the page write volume."""
        return (memory + self.write_units) / memory


def paged_io(
    tree: TreeLike,
    schedule: Sequence[int],
    memory: int,
    *,
    page_size: int = 1,
    policy: str | EvictionPolicy = "belady",
    seed: int = 0,
    trace: bool = False,
) -> PagingResult:
    """Execute ``schedule`` through the pager and count page transfers.

    Parameters
    ----------
    tree:
        anything satisfying the tree protocol (weights/parents/children).
    schedule:
        node ids in execution order, topological over the nodes present.
    memory:
        the memory bound in units; the pager uses ``memory // page_size``
        frames (slack units below a page boundary are unusable, exactly
        like a real pinned-page allocator).
    page_size:
        units per page; 1 reproduces the paper's model.
    policy:
        a policy name from :data:`repro.io.policies.POLICIES` or a policy
        instance (for custom strategies).
    seed:
        seed for the ``random`` policy.
    trace:
        record every page transfer as a :class:`PageEvent`.

    Raises
    ------
    InfeasibleSchedule
        if some step's own working set exceeds the frame count.
    """
    pmap = PageMap(tree.weights, page_size)
    frames = memory // page_size
    if isinstance(policy, str):
        policy_name, policy_impl = policy, make_policy(policy, seed=seed)
    else:
        policy_name, policy_impl = type(policy).__name__, policy

    pos = {v: t for t, v in enumerate(schedule)}
    horizon = len(schedule)
    parents = tree.parents
    children = tree.children

    resident: set[int] = set()
    pinned: set[int] = set()
    io_by_node: dict[int, int] = {}
    events: list[PageEvent] = []
    writes = reads = 0
    peak = 0

    def evict_down_to(budget: int, step: int) -> None:
        nonlocal writes
        while len(resident) > budget:
            victim = policy_impl.evict(lambda p: p in pinned)
            resident.discard(victim)
            owner = pmap.owner(victim)
            io_by_node[owner] = io_by_node.get(owner, 0) + 1
            writes += 1
            if trace:
                events.append(PageEvent(step, "write", victim, owner))

    for t, v in enumerate(schedule):
        in_pages: list[int] = []
        for c in children[v]:
            in_pages.extend(pmap.pages_of(c))
        out_count = pmap.page_count(v)
        step_frames = max(len(in_pages), out_count)
        if step_frames > frames:
            raise InfeasibleSchedule(
                f"node {v} needs {step_frames} frames > {frames} "
                f"(memory {memory}, page size {page_size})"
            )

        # Phase 1: pin and fault in the inputs.
        pinned.clear()
        pinned.update(in_pages)
        missing = [p for p in in_pages if p not in resident]
        # Make room for the faults (other active pages are the victims).
        evict_down_to(frames - len(missing), t)
        for p in missing:
            resident.add(p)
            reads += 1
            if trace:
                events.append(PageEvent(t, "read", p, pmap.owner(p)))
        peak = max(peak, len(resident))

        # Phase 2: consume the inputs, produce the output in place.
        for p in in_pages:
            resident.discard(p)
            policy_impl.forget(p)
        pinned.clear()
        if out_count:
            evict_down_to(frames - out_count, t)
            parent_pos = pos.get(parents[v], horizon)
            for p in pmap.pages_of(v):
                resident.add(p)
                policy_impl.admit(p, t, parent_pos)
            peak = max(peak, len(resident))

    return PagingResult(
        policy=policy_name,
        page_size=page_size,
        frames=frames,
        write_pages=writes,
        read_pages=reads,
        peak_frames=peak,
        io_by_node=io_by_node,
        events=tuple(events),
    )


def page_policy_comparison(
    tree: TreeLike,
    schedule: Sequence[int],
    memory: int,
    *,
    page_size: int = 1,
    policies: Sequence[str] = ("belady", "lru", "random", "pessimal"),
    seed: int = 0,
) -> dict[str, PagingResult]:
    """Run the same schedule under several policies (the ablation helper)."""
    return {
        name: paged_io(
            tree, schedule, memory, page_size=page_size, policy=name, seed=seed
        )
        for name in policies
    }
