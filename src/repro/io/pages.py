"""Page tables: mapping task outputs onto fixed-size pages.

A :class:`PageMap` assigns every task output a contiguous range of page
ids, ``ceil(w_i / page_size)`` pages each.  Page ids are dense integers,
allocated in node order, so a page id doubles as a (coarse) disk address
for the :mod:`repro.io.device` timing model.

The last page of an output may be partially filled; :meth:`PageMap.payload`
reports the exact number of memory units it carries so volume accounting
can be done either in pages or in the paper's memory units.
"""

from __future__ import annotations

from typing import Iterator, Sequence

__all__ = ["PageMap"]


class PageMap:
    """Dense page-id layout of all task outputs of a tree.

    Parameters
    ----------
    weights:
        output sizes in memory units, node-indexed.
    page_size:
        units per page (positive integer).  Page size 1 reproduces the
        paper's unit-granularity model exactly.
    """

    __slots__ = ("_page_size", "_starts", "_counts", "_owner", "_weights")

    def __init__(self, weights: Sequence[int], page_size: int = 1):
        if page_size < 1 or int(page_size) != page_size:
            raise ValueError(f"page size must be a positive integer: {page_size!r}")
        self._page_size = int(page_size)
        self._weights = tuple(int(w) for w in weights)
        starts: list[int] = []
        counts: list[int] = []
        owner: list[int] = []
        next_page = 0
        for v, w in enumerate(self._weights):
            if w < 0:
                raise ValueError(f"negative weight for node {v}: {w}")
            pages = -(-w // self._page_size)  # ceil division; 0 for w == 0
            starts.append(next_page)
            counts.append(pages)
            owner.extend([v] * pages)
            next_page += pages
        self._starts = tuple(starts)
        self._counts = tuple(counts)
        self._owner = tuple(owner)

    # ------------------------------------------------------------------
    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def total_pages(self) -> int:
        """Number of pages across all outputs."""
        return len(self._owner)

    def pages_of(self, node: int) -> range:
        """The page ids storing ``node``'s output (contiguous)."""
        start = self._starts[node]
        return range(start, start + self._counts[node])

    def page_count(self, node: int) -> int:
        """``ceil(w_node / page_size)``."""
        return self._counts[node]

    def owner(self, page: int) -> int:
        """The node whose output lives on ``page``."""
        return self._owner[page]

    def payload(self, page: int) -> int:
        """Memory units actually stored on ``page`` (last page may be partial)."""
        node = self._owner[page]
        start = self._starts[node]
        offset = (page - start) * self._page_size
        return min(self._page_size, self._weights[node] - offset)

    def rounded_weight(self, node: int) -> int:
        """``w_node`` rounded up to a whole number of pages, in units."""
        return self._counts[node] * self._page_size

    def rounded_weights(self) -> tuple[int, ...]:
        """All weights rounded up to page multiples (units)."""
        return tuple(c * self._page_size for c in self._counts)

    def iter_nodes(self) -> Iterator[int]:
        return iter(range(len(self._starts)))

    def __repr__(self) -> str:
        return (
            f"PageMap(nodes={len(self._starts)}, page_size={self._page_size}, "
            f"total_pages={self.total_pages})"
        )
