"""Page-granular out-of-core I/O substrate.

The paper's model assumes output data can be written to disk *partially*,
and motivates this by paging: "all data are divided in same-size pages,
which can be moved from main memory to secondary storage when needed"
(Section 1).  This package makes that concrete:

* :mod:`repro.io.pages`    — page tables mapping task outputs to frames;
* :mod:`repro.io.policies` — victim-selection policies (Belady/FiF, LRU,
  FIFO, random, pessimal);
* :mod:`repro.io.pager`    — a pinned-frame paging simulator executing a
  schedule at page granularity;
* :mod:`repro.io.device`   — a seek+bandwidth disk timing model for the
  resulting access traces.

The key consistency theorem (tested): with page size 1 and the Belady
policy, the pager's write volume equals the node-level FiF simulator's
I/O volume for the same schedule — the two models are isomorphic.  With
page size ``P`` it equals FiF on the tree with weights rounded up to
multiples of ``P`` under the memory ``P * (M // P)``.
"""

from .device import HDD, SSD, DiskModel, estimate_time
from .pager import PagingResult, paged_io, page_policy_comparison
from .pages import PageMap
from .policies import POLICIES, EvictionPolicy, make_policy

__all__ = [
    "DiskModel",
    "EvictionPolicy",
    "HDD",
    "POLICIES",
    "PageMap",
    "PagingResult",
    "SSD",
    "estimate_time",
    "make_policy",
    "paged_io",
    "page_policy_comparison",
]
