"""Victim-selection policies for the page-granular simulator.

A policy answers one question: *given the set of evictable pages, which
one leaves memory?*  The pager (:mod:`repro.io.pager`) handles pinning,
fault accounting and bookkeeping; policies only rank victims.

In this workload every page of a task output is touched exactly twice —
written at production, read back when the parent executes — so the
classical policies collapse interestingly:

* **Belady / FiF** (offline optimal): the next use of a page of node *k*
  is the execution step of ``parent(k)``, so Belady's MIN rule *is* the
  paper's Furthest-in-the-Future rule at page granularity (Theorem 1).
* **LRU** degenerates to FIFO: pages are never re-touched between
  production and their single consumption, so recency order equals
  production order.  (Both are provided; tests pin the equivalence.)
* **Pessimal** (nearest parent first) is the adversarial bound — useful
  to width the empirical spread in the policy-comparison experiments.
"""

from __future__ import annotations

import heapq
from typing import Callable, Protocol, Sequence

import numpy as np

__all__ = [
    "EvictionPolicy",
    "BeladyPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "PessimalPolicy",
    "POLICIES",
    "make_policy",
]


class EvictionPolicy(Protocol):
    """The pager ↔ policy interface.

    The pager guarantees that :meth:`evict` is only called while at least
    one unpinned resident page exists, and that every page passed to
    :meth:`admit` was not resident before.
    """

    def admit(self, page: int, step: int, parent_pos: int) -> None:
        """``page`` became resident at ``step``; its one future use is at
        schedule position ``parent_pos`` (``horizon`` if never used)."""

    def forget(self, page: int) -> None:
        """``page`` left memory (evicted or consumed); drop any state."""

    def evict(self, pinned: Callable[[int], bool]) -> int:
        """Choose a resident, unpinned victim page and return its id."""


class _HeapPolicy:
    """Shared lazy-heap machinery: victims ordered by a per-page key."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int]] = []
        self._resident: set[int] = set()

    def _push(self, key: float, page: int) -> None:
        self._resident.add(page)
        heapq.heappush(self._heap, (key, page))

    def forget(self, page: int) -> None:
        self._resident.discard(page)  # lazily cleaned from the heap

    def evict(self, pinned: Callable[[int], bool]) -> int:
        # Pop invalid entries; set aside pinned ones and restore them after.
        pinned_aside: list[tuple[float, int]] = []
        try:
            while True:
                key, page = heapq.heappop(self._heap)
                if page not in self._resident:
                    continue
                if pinned(page):
                    pinned_aside.append((key, page))
                    continue
                self._resident.discard(page)
                return page
        except IndexError:
            raise RuntimeError("policy asked to evict with no unpinned victim") from None
        finally:
            for item in pinned_aside:
                heapq.heappush(self._heap, item)


class BeladyPolicy(_HeapPolicy):
    """Evict the page whose (single) next use is furthest in the future.

    Offline-optimal (Belady's MIN); identical to the paper's FiF rule
    because a page's next use is its owner's parent-execution step.
    Ties (pages of the same node) are broken toward higher page ids so
    that partial evictions nibble outputs from the tail, matching how the
    node-level simulator reports partial ``tau`` values.
    """

    def admit(self, page: int, step: int, parent_pos: int) -> None:
        self._push((-parent_pos, -page), page)  # type: ignore[arg-type]


class PessimalPolicy(_HeapPolicy):
    """Evict the page used *soonest* — the adversarial anti-Belady bound."""

    def admit(self, page: int, step: int, parent_pos: int) -> None:
        self._push((parent_pos, page), page)  # type: ignore[arg-type]


class LRUPolicy(_HeapPolicy):
    """Least-recently-used.  Degenerates to FIFO here (see module docs)."""

    def admit(self, page: int, step: int, parent_pos: int) -> None:
        self._push((step, page), page)  # type: ignore[arg-type]


class FIFOPolicy(_HeapPolicy):
    """First-in-first-out over residency start times."""

    def admit(self, page: int, step: int, parent_pos: int) -> None:
        self._push((step, page), page)  # type: ignore[arg-type]


class RandomPolicy:
    """Uniform random victim (seeded, for reproducible experiments)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._pages: list[int] = []
        self._index: dict[int, int] = {}

    def admit(self, page: int, step: int, parent_pos: int) -> None:
        self._index[page] = len(self._pages)
        self._pages.append(page)

    def forget(self, page: int) -> None:
        idx = self._index.pop(page, None)
        if idx is None:
            return
        last = self._pages.pop()
        if last != page:
            self._pages[idx] = last
            self._index[last] = idx

    def evict(self, pinned: Callable[[int], bool]) -> int:
        candidates = self._pages
        # Rejection-sample; fall back to a scan if pinning is dense.
        for _ in range(8):
            page = candidates[int(self._rng.integers(len(candidates)))]
            if not pinned(page):
                self.forget(page)
                return page
        unpinned = [p for p in candidates if not pinned(p)]
        if not unpinned:
            raise RuntimeError("policy asked to evict with no unpinned victim")
        page = unpinned[int(self._rng.integers(len(unpinned)))]
        self.forget(page)
        return page


#: name → zero-argument factory (RandomPolicy takes an optional seed)
POLICIES: dict[str, Callable[..., EvictionPolicy]] = {
    "belady": BeladyPolicy,
    "fif": BeladyPolicy,  # the paper's name for the same rule
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "pessimal": PessimalPolicy,
}


def make_policy(name: str, *, seed: int = 0) -> EvictionPolicy:
    """Instantiate a policy by name (``random`` honours ``seed``)."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {sorted(POLICIES)}"
        ) from None
    if factory is RandomPolicy:
        return RandomPolicy(seed=seed)
    return factory()
