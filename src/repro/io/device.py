"""A seek + bandwidth disk timing model for page access traces.

The paper counts I/O *volume* only; this module answers the follow-up
question a solver integrator asks next: *what does that volume cost in
wall-clock on a concrete device?*  The model is the classic two-parameter
affine one — each contiguous run of page transfers pays one positioning
latency plus size/bandwidth — which is accurate enough to rank schedules
and exactly the model used in MUMPS' out-of-core studies.

Pages are written at eviction time and read at fault time, so the event
order of :class:`~repro.io.pager.PagingResult` traces is the device's
request order; runs are detected over (op, consecutive page ids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .pager import PageEvent

__all__ = ["DiskModel", "HDD", "SSD", "TransferStats", "coalesce_runs", "estimate_time"]


@dataclass(frozen=True)
class DiskModel:
    """Affine transfer-cost model.

    Attributes
    ----------
    seek_seconds:
        positioning cost paid once per contiguous run (seek + rotational
        delay for spinning disks, command overhead for SSDs).
    bandwidth_pages:
        sustained transfer rate in pages/second.
    read_factor:
        multiplier on read bandwidth cost (1.0 = symmetric device).
    """

    seek_seconds: float = 0.008
    bandwidth_pages: float = 25_000.0
    read_factor: float = 1.0

    def run_time(self, op: str, length: int) -> float:
        """Cost of one contiguous run of ``length`` pages."""
        per_page = 1.0 / self.bandwidth_pages
        if op == "read":
            per_page *= self.read_factor
        return self.seek_seconds + length * per_page


#: preset devices for the examples and benchmarks (page = 4 KiB)
HDD = DiskModel(seek_seconds=0.008, bandwidth_pages=38_000.0)
SSD = DiskModel(seek_seconds=0.00008, bandwidth_pages=130_000.0)


@dataclass(frozen=True)
class TransferStats:
    """Aggregate of one trace under a device model."""

    seconds: float
    runs: int
    pages: int
    write_pages: int
    read_pages: int

    @property
    def mean_run_length(self) -> float:
        return self.pages / self.runs if self.runs else 0.0


def coalesce_runs(events: Iterable[PageEvent]) -> list[tuple[str, int, int]]:
    """Group a trace into maximal contiguous runs ``(op, first_page, length)``.

    A run extends while the operation stays the same and page ids are
    consecutive (ascending or descending — both are sequential for the
    device).
    """
    runs: list[tuple[str, int, int]] = []
    run_op: str | None = None
    run_start = run_prev = 0
    run_len = 0
    direction = 0
    for ev in events:
        if run_op == ev.op and run_len >= 1:
            step = ev.page - run_prev
            if step in (1, -1) and (direction in (0, step)):
                direction = step
                run_prev = ev.page
                run_len += 1
                continue
        if run_op is not None:
            runs.append((run_op, run_start, run_len))
        run_op, run_start, run_prev, run_len, direction = ev.op, ev.page, ev.page, 1, 0
    if run_op is not None:
        runs.append((run_op, run_start, run_len))
    return runs


def estimate_time(
    events: Sequence[PageEvent],
    model: DiskModel = HDD,
) -> TransferStats:
    """Total device time for a page trace under ``model``."""
    runs = coalesce_runs(events)
    seconds = sum(model.run_time(op, length) for op, _, length in runs)
    writes = sum(1 for e in events if e.op == "write")
    reads = len(events) - writes
    return TransferStats(
        seconds=seconds,
        runs=len(runs),
        pages=len(events),
        write_pages=writes,
        read_pages=reads,
    )
