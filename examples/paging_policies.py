#!/usr/bin/env python3
"""Page-level I/O study: what does an online memory manager cost?

The paper's model assumes the scheduler controls *exactly which data* is
written to disk (the offline FiF rule).  Real out-of-core runs often sit
on a paging layer instead.  This example measures that gap:

1. build a realistic multifrontal task tree (2-D grid Laplacian, nested
   dissection ordering, supernodal amalgamation),
2. schedule it with RecExpand under the paper's mid memory bound,
3. replay the schedule through the page-granular simulator under five
   eviction policies and several page sizes,
4. price the resulting traces on HDD and SSD device models.

Run:  python examples/paging_policies.py
"""

from repro.analysis.bounds import memory_bounds
from repro.core.simulator import simulate_fif
from repro.datasets.elimination import supernodal_task_tree
from repro.datasets.matrices import grid_laplacian_2d, permute_symmetric
from repro.datasets.nested_dissection import nested_dissection_ordering
from repro.experiments.registry import get_algorithm
from repro.io import HDD, SSD, estimate_time, paged_io


def main() -> None:
    matrix = grid_laplacian_2d(18, 18)
    perm = nested_dissection_ordering(matrix)
    tree = supernodal_task_tree(permute_symmetric(matrix, perm))
    bounds = memory_bounds(tree)
    memory = bounds.mid
    print(f"multifrontal tree: {tree.n} fronts, LB={bounds.lb}, "
          f"Peak={bounds.peak_incore}, M={memory}")

    traversal = get_algorithm("RecExpand")(tree, memory)
    node_model = simulate_fif(tree, traversal.schedule, memory)
    print(f"node-level FiF volume (the paper's metric): {node_model.io_volume}\n")

    print(f"{'page':>5} {'policy':<10} {'writes':>7} {'reads':>7} "
          f"{'units':>7} {'HDD':>9} {'SSD':>9}")
    for page_size in (1, 4, 16):
        for policy in ("belady", "lru", "fifo", "random", "pessimal"):
            res = paged_io(
                tree,
                traversal.schedule,
                memory,
                page_size=page_size,
                policy=policy,
                trace=True,
            )
            hdd = estimate_time(res.events, HDD)
            ssd = estimate_time(res.events, SSD)
            print(
                f"{page_size:>5} {policy:<10} {res.write_pages:>7} "
                f"{res.read_pages:>7} {res.write_units:>7} "
                f"{hdd.seconds:>8.3f}s {ssd.seconds:>8.3f}s"
            )
        print()

    best = paged_io(tree, traversal.schedule, memory, page_size=1, policy="belady")
    assert best.write_units == node_model.io_volume, "Belady == FiF must hold"
    print("check: Belady paging at page size 1 reproduces the FiF volume exactly.")
    print("note: LRU == FIFO here — every page is touched once, so recency")
    print("      order degenerates to arrival order on this workload.")


if __name__ == "__main__":
    main()
