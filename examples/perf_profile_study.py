#!/usr/bin/env python3
"""A miniature of the paper's Section 6 study, in one self-contained run.

Generates a SYNTH-style dataset, runs the strategies at all three memory
bounds (M1 = LB, M-mid, M2 = Peak-1) and renders Dolan–Moré performance
profiles as ASCII — the same plots as the paper's Figures 4, 8 and 10,
at a size that finishes in seconds.

Run:  python examples/perf_profile_study.py [num_trees] [nodes]
"""

import sys

from repro.analysis.profiles import render_ascii
from repro.datasets.synth import synth_dataset
from repro.experiments.figures import run_comparison


def main() -> None:
    num_trees = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 400

    print(f"dataset: {num_trees} uniform random binary trees, {nodes} nodes, "
          f"weights U[1,100]")
    trees = synth_dataset(num_trees, nodes, seed=1)

    algorithms = ("OptMinMem", "RecExpand", "PostOrderMinIO", "FullRecExpand")
    for bound, paper_figure in (("M1", "Fig 8"), ("Mmid", "Fig 4"), ("M2", "Fig 10")):
        result = run_comparison(f"study-{bound}", trees, bound, algorithms)
        print(f"\n--- memory bound {bound}  (the paper's {paper_figure}) ---")
        print(result.summary())
        # Zoom differently per regime: M2 differences are tiny.
        max_t = {"M1": 0.6, "Mmid": 1.0, "M2": 0.02}[bound]
        print(render_ascii(result.profile, max_threshold=max_t, height=12))


if __name__ == "__main__":
    main()
