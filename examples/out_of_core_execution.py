#!/usr/bin/env python3
"""Why minimise I/O volume: time-to-solution under a disk model.

The paper's metric is the I/O *volume*; this example converts volumes to
wall-clock time with the timed execution engine (one compute unit, one
disk, blocking or overlapped writes) and sweeps the memory budget — the
classic "time vs memory" curve of an out-of-core solver, with one line
per scheduling strategy.

Run:  python examples/out_of_core_execution.py
"""

from repro.analysis.bounds import memory_bounds
from repro.core.execution import MachineModel, execute_traversal
from repro.datasets.synth import synth_instance
from repro.experiments.registry import get_algorithm


def main() -> None:
    # A SYNTH-style tree with a wide I/O regime.
    tree = None
    for seed in range(200):
        candidate = synth_instance(800, seed=seed)
        bounds = memory_bounds(candidate)
        if bounds.peak_incore >= 1.2 * bounds.lb:
            tree, chosen = candidate, bounds
            break
    assert tree is not None
    print(
        f"tree: n={tree.n}, LB={chosen.lb}, in-core peak={chosen.peak_incore} "
        f"(regime width {chosen.m2 - chosen.m1})"
    )

    machine = MachineModel(bandwidth=50.0, latency=0.002, discipline="blocking")
    strategies = ("PostOrderMinIO", "OptMinMem", "RecExpand")

    # Memory sweep from the feasibility bound up to the in-core peak.
    points = 6
    memories = [
        chosen.lb + round(i * (chosen.peak_incore - chosen.lb) / (points - 1))
        for i in range(points)
    ]

    print(f"\n{'M':>8} | " + " | ".join(f"{s:>22}" for s in strategies))
    print(f"{'':>8} | " + " | ".join(f"{'io':>8} {'time':>9} {'util':>4}" for _ in strategies))
    for memory in memories:
        cells = []
        for name in strategies:
            traversal = get_algorithm(name)(tree, memory)
            report = execute_traversal(tree, traversal, machine)
            cells.append(
                f"{traversal.io_volume:>8} {report.makespan:>8.2f}s "
                f"{report.compute_utilisation:>4.0%}"
            )
        print(f"{memory:>8} | " + " | ".join(cells))

    # The same bottom row, with overlapped writes.
    memory = memories[0]
    print(f"\nat M = {memory} (tightest), overlapping writes with compute:")
    for name in strategies:
        traversal = get_algorithm(name)(tree, memory)
        for discipline in ("blocking", "overlapped"):
            m = MachineModel(
                bandwidth=50.0, latency=0.002, discipline=discipline
            )
            report = execute_traversal(tree, traversal, m)
            print(
                f"  {name:<16} {discipline:<10} makespan {report.makespan:8.2f}s  "
                f"(stalled {report.stall_time:6.2f}s on I/O)"
            )

    print(
        "\nAt ample memory every strategy is pure compute; as M tightens the"
        "\nbad scheduler's extra writes turn directly into stall time — the"
        "\nmotivation for the paper in seconds."
    )


if __name__ == "__main__":
    main()
