#!/usr/bin/env python3
"""Parallel out-of-core execution: the paper's future-work direction.

The sequential strategies give us good *orders*; this example feeds them
as priorities into the parallel engine (p processors, one shared memory,
FiF-style eviction) and shows the two forces that make the parallel
problem genuinely hard:

1. speedup saturates quickly — the shared memory, not the processor
   count, becomes the bottleneck;
2. tree parallelism *creates* I/O: running sibling subtrees concurrently
   holds more data simultaneously, so the same memory budget that needed
   almost no I/O sequentially suddenly pays a lot.

Run:  python examples/parallel_scheduling.py
"""

from repro.analysis.bounds import memory_bounds
from repro.datasets.synth import synth_instance
from repro.parallel import priority_from_strategy, simulate_parallel


def main() -> None:
    tree = None
    for seed in range(200):
        candidate = synth_instance(600, seed=seed)
        bounds = memory_bounds(candidate)
        if bounds.has_io_regime:
            tree, chosen = candidate, bounds
            break
    assert tree is not None
    memory = chosen.mid
    print(f"tree: n={tree.n}, LB={chosen.lb}, peak={chosen.peak_incore}, M={memory}")

    priority = priority_from_strategy(tree, memory, "RecExpand")

    print(f"\n{'p':>3} {'makespan':>10} {'speedup':>8} {'util':>6} {'I/O volume':>11} {'peak mem':>9}")
    base = None
    for p in (1, 2, 3, 4, 6, 8):
        report = simulate_parallel(tree, memory, p, priority)
        if base is None:
            base = report.makespan
        print(
            f"{p:>3} {report.makespan:>10.0f} {base / report.makespan:>8.2f} "
            f"{report.utilisation():>6.0%} {report.io_volume:>11} "
            f"{report.peak_memory:>9}"
        )

    print(
        "\nNote the I/O column: the sequential traversal (p=1) fits the"
        "\nbudget with little I/O, but every extra processor opens more"
        "\nsubtrees at once and converts parallelism into disk traffic —"
        "\nwhile the speedup stalls.  Understanding this trade-off is the"
        "\nopen problem the paper leaves for future work (its Section 7)."
    )


if __name__ == "__main__":
    main()
