#!/usr/bin/env python3
"""Render the paper's evaluation figures (and two extras) as SVG files.

Regenerates every performance-profile figure at the chosen scale and
writes browsable SVGs to ``figures/``, plus a memory-timeline chart of
the Figure 2(b) counterexample and an I/O-versus-memory sweep — the two
diagnostic plots the paper describes in prose.

Run:  python examples/figure_gallery.py [tiny|small|paper]
"""

import pathlib
import sys

from repro.core.tree import TaskTree
from repro.datasets.instances import figure_2b
from repro.experiments.figures import FIGURES
from repro.experiments.registry import get_algorithm
from repro.viz import io_sweep_chart, memory_timeline_chart, profile_chart, tree_chart


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    outdir = pathlib.Path("figures")
    outdir.mkdir(exist_ok=True)

    for fid, builder in sorted(FIGURES.items()):
        result = builder(scale)
        path = outdir / f"{fid}_{scale}.svg"
        path.write_text(profile_chart(result.profile, title=result.name))
        print(f"wrote {path}  ({result.num_instances} instances)")

    # Figure 2(b): the witness schedule vs the minimum-peak schedule.
    inst = figure_2b()
    tree: TaskTree = inst.tree
    liu = get_algorithm("OptMinMem")(inst.tree, inst.memory)
    chart = memory_timeline_chart(
        tree,
        {"paper witness": inst.witness_schedule, "OptMinMem": liu.schedule},
        memory=inst.memory,
        title="Figure 2(b): chain-after-chain beats the minimum peak",
    )
    (outdir / "fig2b_timeline.svg").write_text(chart)
    print("wrote figures/fig2b_timeline.svg")

    (outdir / "fig2b_tree.svg").write_text(
        tree_chart(tree, schedule=inst.witness_schedule, title="Figure 2(b)")
    )
    print("wrote figures/fig2b_tree.svg")

    # I/O vs memory across the whole regime of one tree.
    from repro.analysis.bounds import memory_bounds
    from repro.datasets.synth import synth_instance

    for seed in range(1, 60):
        sweep_tree = synth_instance(80, seed=seed)
        bounds = memory_bounds(sweep_tree)
        if bounds.peak_incore - bounds.lb >= 12:
            break
    memories = list(range(bounds.lb, bounds.peak_incore + 1))
    algorithms = ("OptMinMem", "PostOrderMinIO", "RecExpand")
    io = {
        name: [get_algorithm(name)(sweep_tree, m).io_volume for m in memories]
        for name in algorithms
    }
    (outdir / "io_sweep.svg").write_text(
        io_sweep_chart(
            sweep_tree,
            io,
            memories,
            title=f"I/O vs memory (random {sweep_tree.n}-node tree)",
        )
    )
    print("wrote figures/io_sweep.svg")


if __name__ == "__main__":
    main()
