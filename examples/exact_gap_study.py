#!/usr/bin/env python3
"""How far from optimal are the paper's heuristics, really?

The paper compares heuristics against each other (its Figures 4–11), but
the optimum is unknown in general — MINIO's complexity is open.  On small
trees the exact branch-and-bound solver closes that gap: this study
samples random 10–14-node trees, solves each exactly, and reports the
optimality-gap distribution of every polynomial strategy plus the
certified lower bound.

Run:  python examples/exact_gap_study.py
"""

from collections import defaultdict

from repro.algorithms.exact import exact_min_io
from repro.analysis.bounds import memory_bounds
from repro.analysis.io_bounds import io_lower_bound
from repro.datasets.synth import synth_instance
from repro.experiments.registry import PAPER_ALGORITHMS, get_algorithm


def main() -> None:
    gaps: dict[str, list[float]] = defaultdict(list)
    optimal_count: dict[str, int] = defaultdict(int)
    bound_tight = 0
    instances = 0

    seed = 0
    while instances < 40:
        seed += 1
        tree = synth_instance(12, seed=seed)
        bounds = memory_bounds(tree)
        if not bounds.has_io_regime:
            continue
        memory = bounds.mid
        exact = exact_min_io(tree, memory, max_states=500_000)
        instances += 1
        if io_lower_bound(tree, memory).value == exact.io_volume:
            bound_tight += 1
        for name in PAPER_ALGORITHMS:
            io = get_algorithm(name)(tree, memory).io_volume
            gap = (memory + io) / (memory + exact.io_volume) - 1.0
            gaps[name].append(gap)
            if io == exact.io_volume:
                optimal_count[name] += 1

    print(f"{instances} random 12-node instances at the mid memory bound\n")
    print(f"{'strategy':<16} {'optimal':>9} {'mean gap':>10} {'max gap':>10}")
    for name in PAPER_ALGORITHMS:
        g = gaps[name]
        print(
            f"{name:<16} {optimal_count[name]:>6}/{instances} "
            f"{sum(g) / len(g):>9.2%} {max(g):>10.2%}"
        )
    print(f"\ncertified lower bound tight on {bound_tight}/{instances} instances")
    print("(the peak bound is weak by design — see repro/analysis/io_bounds.py)")


if __name__ == "__main__":
    main()
