#!/usr/bin/env python3
"""Out-of-core multifrontal factorisation, end to end.

The paper's motivating application: sparse Cholesky by the multifrontal
method, where the elimination tree is the task tree and contribution
blocks are the data flowing to parents.  This example runs the whole
pipeline on a 2-D grid problem:

    matrix -> fill-reducing ordering -> elimination tree -> supernodes
           -> contribution-block weights -> out-of-core schedule

and shows how the choice of ordering (and the resulting tree shape)
changes the I/O bill at a fixed memory budget.

Run:  python examples/multifrontal.py
"""

import numpy as np

from repro.analysis.bounds import memory_bounds
from repro.core.traversal import validate
from repro.datasets.elimination import (
    elimination_tree,
    factor_column_counts,
    supernodal_task_tree,
)
from repro.datasets.matrices import ORDERINGS, grid_laplacian_2d, permute_symmetric
from repro.experiments.registry import get_algorithm


def main() -> None:
    side = 20
    matrix = grid_laplacian_2d(side, side)
    print(f"problem: {side}x{side} grid Laplacian, n={matrix.shape[0]}, "
          f"nnz={matrix.nnz}")

    rng = np.random.default_rng(42)
    print(
        f"\n{'ordering':<10} {'fill nnz(L)':>12} {'tree n':>7} {'depth':>6} "
        f"{'LB':>8} {'peak':>8} | {'PO-MinIO':>9} {'OptMinMem':>9} {'RecExpand':>9}"
    )

    for name in ("natural", "rcm", "mindeg", "random"):
        perm = ORDERINGS[name](matrix, rng)
        permuted = permute_symmetric(matrix, perm)

        # Symbolic analysis (all from scratch, see repro.datasets.elimination).
        parent = elimination_tree(permuted)
        counts = factor_column_counts(permuted, parent)
        fill = int(counts.sum())

        tree = supernodal_task_tree(permuted)
        bounds = memory_bounds(tree)
        if not bounds.has_io_regime:
            print(f"{name:<10} {fill:>12} {tree.n:>7} {tree.depth():>6} "
                  f"{bounds.lb:>8} {bounds.peak_incore:>8} |   "
                  "(chain-like tree: LB memory already suffices)")
            continue

        # The tight bound M1 = LB: the regime where strategies differ most.
        memory = bounds.m1
        io = {}
        for alg in ("PostOrderMinIO", "OptMinMem", "RecExpand"):
            traversal = get_algorithm(alg)(tree, memory)
            validate(tree, traversal, memory)
            io[alg] = traversal.io_volume
        print(
            f"{name:<10} {fill:>12} {tree.n:>7} {tree.depth():>6} "
            f"{bounds.lb:>8} {bounds.peak_incore:>8} | "
            f"{io['PostOrderMinIO']:>9} {io['OptMinMem']:>9} {io['RecExpand']:>9}"
        )

    print(
        "\nReading the table: band-preserving orderings (natural, RCM) give"
        "\nchain-shaped elimination trees — nothing to schedule, LB memory is"
        "\nenough.  Fill-reducing orderings (mindeg) give bushy trees whose"
        "\nfronts overlap in memory, and I/O appears.  On real elimination"
        "\ntrees the three strategies usually agree (the paper's Figure 5:"
        "\n>90% ties); the synthetic SYNTH study in"
        "\nexamples/perf_profile_study.py is where they separate."
    )


if __name__ == "__main__":
    main()
