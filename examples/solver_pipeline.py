#!/usr/bin/env python3
"""The full solver-integrator pipeline, end to end.

What a sparse direct solver would actually do with this library:

1. symbolic analysis — order the matrix (nested dissection), build the
   elimination tree, amalgamate small fronts;
2. planning — compare the memory bounds, pick a strategy, plan the
   out-of-core traversal for the available memory;
3. hand-off — export the execution trace the factorization runtime
   consumes (and verify it by independent replay);
4. execution estimate — replay the plan at page granularity and price
   the transfers on an HDD model;
5. archive the instance for regression testing.

Run:  python examples/solver_pipeline.py
"""

import pathlib
import tempfile

from repro.analysis.bounds import memory_bounds
from repro.core.trace import replay, to_jsonl, traversal_trace
from repro.datasets.amalgamation import amalgamate
from repro.datasets.elimination import etree_task_tree
from repro.datasets.matrices import grid_laplacian_2d, permute_symmetric
from repro.datasets.nested_dissection import nested_dissection_ordering
from repro.datasets.store import StoredTree, save_trees
from repro.experiments.registry import get_algorithm
from repro.io import HDD, estimate_time, paged_io


def main() -> None:
    # -- 1. symbolic analysis ------------------------------------------
    matrix = grid_laplacian_2d(20, 20)
    perm = nested_dissection_ordering(matrix)
    etree = etree_task_tree(permute_symmetric(matrix, perm))
    tree = amalgamate(etree, absorb_below=8).tree
    print(f"symbolic analysis: {matrix.shape[0]} columns -> "
          f"{etree.n} fronts -> {tree.n} after amalgamation")

    # -- 2. planning ---------------------------------------------------
    bounds = memory_bounds(tree)
    memory = bounds.mid
    print(f"memory bounds: LB={bounds.lb}, in-core peak={bounds.peak_incore}; "
          f"planning for M={memory}")
    candidates = {}
    for name in ("PostOrderMinIO", "OptMinMem", "RecExpand"):
        candidates[name] = get_algorithm(name)(tree, memory)
        print(f"  {name:<16} plans {candidates[name].io_volume:>6} units of I/O")
    best_name = min(candidates, key=lambda n: candidates[n].io_volume)
    plan = candidates[best_name]
    print(f"selected: {best_name}")

    # -- 3. hand-off ---------------------------------------------------
    events = traversal_trace(tree, plan)
    checked = replay(tree, events, memory)
    assert checked.io_volume == plan.io_volume
    jsonl = to_jsonl(events)
    print(f"trace: {len(events)} events, {len(jsonl)} bytes as JSONL, "
          f"independently replayed (peak {checked.peak_memory} <= {memory})")

    # -- 4. execution estimate ------------------------------------------
    for page_size in (1, 8):
        paged = paged_io(tree, plan.schedule, memory,
                         page_size=page_size, trace=True)
        stats = estimate_time(paged.events, HDD)
        print(f"page size {page_size}: {paged.write_pages} page writes, "
              f"{stats.runs} device runs, est. {stats.seconds * 1e3:.1f} ms on HDD")

    # -- 5. archive ----------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "instance.jsonl"
        save_trees(path, [StoredTree(
            "grid20-nd-amalg8", tree,
            {"memory": memory, "planned_io": plan.io_volume,
             "strategy": best_name},
        )])
        print(f"archived instance ({path.stat().st_size} bytes) for regression runs")


if __name__ == "__main__":
    main()
