#!/usr/bin/env python3
"""A guided tour of the paper's counterexamples (Figures 2, 6 and 7).

Each construction shows one strategy failing in a way that is invisible
on benign inputs:

* Figure 2(a): the best postorder pays Θ(n·M) where 1 I/O suffices.
* Figure 2(b/c): the minimum-*memory* schedule is a bad *I/O* plan, with
  a competitive ratio growing linearly in the parameter k.
* Figure 6: FullRecExpand repairs OptMinMem's plan down to the optimum.
* Figure 7: ...but can also inherit its mistakes — nobody dominates.

Run:  python examples/counterexamples.py
"""

from repro.algorithms.brute_force import min_io_brute
from repro.algorithms.liu import opt_min_mem
from repro.algorithms.postorder import postorder_min_io
from repro.algorithms.rec_expand import full_rec_expand
from repro.core.simulator import fif_io_volume
from repro.datasets.instances import (
    figure_2a,
    figure_2b,
    figure_2c,
    figure_6,
    figure_7,
)


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def fig_2a() -> None:
    banner("Figure 2(a): postorders are not competitive")
    memory = 16
    print(f"{'extensions':>10} {'n':>5} {'optimal-ish':>11} {'best postorder':>14}")
    for ext in (0, 2, 4, 6):
        inst = figure_2a(memory, extensions=ext)
        witness = fif_io_volume(inst.tree, inst.witness_schedule, inst.memory)
        postorder = postorder_min_io(inst.tree, inst.memory).predicted_io
        print(f"{ext:>10} {inst.tree.n:>5} {witness:>11} {postorder:>14}")
    print(
        "\nThe witness interleaves subtrees, pausing each at a 1-unit node;"
        "\na postorder must hold an M/2 sibling while opening each big leaf."
    )


def fig_2b_2c() -> None:
    banner("Figure 2(b): minimum peak memory != minimum I/O   (M = 6)")
    inst = figure_2b()
    schedule, peak = opt_min_mem(inst.tree)
    print(f"optimal peak memory        : {peak}")
    print(f"I/O of that schedule (FiF) : {fif_io_volume(inst.tree, schedule, inst.memory)}")
    print(f"peak-9 chain-by-chain plan : {fif_io_volume(inst.tree, inst.witness_schedule, inst.memory)} I/Os")
    print(f"true optimum (brute force) : {min_io_brute(inst.tree, inst.memory)[0]}")

    banner("Figure 2(c): ...and the gap grows without bound")
    print(f"{'k':>3} {'M=4k':>5} {'OptMinMem io':>12} {'witness io':>10} {'ratio':>6}")
    for k in (2, 4, 8):
        inst = figure_2c(k)
        schedule, _ = opt_min_mem(inst.tree)
        liu = fif_io_volume(inst.tree, schedule, inst.memory)
        wit = fif_io_volume(inst.tree, inst.witness_schedule, inst.memory)
        print(f"{k:>3} {inst.memory:>5} {liu:>12} {wit:>10} {liu / wit:>6.1f}")
    print(
        "\nOptMinMem saves k units of peak by ping-ponging between the two"
        "\nchains — and pays for the privilege on every switch."
    )


def fig_6_7() -> None:
    banner("Figures 6 & 7: the expansion heuristic, win and loss  ")
    for name, inst in (("Figure 6 (M=10)", figure_6()), ("Figure 7 (M=7)", figure_7())):
        schedule, _ = opt_min_mem(inst.tree)
        rows = {
            "OptMinMem": fif_io_volume(inst.tree, schedule, inst.memory),
            "PostOrderMinIO": postorder_min_io(inst.tree, inst.memory).predicted_io,
            "FullRecExpand": full_rec_expand(inst.tree, inst.memory).io_volume,
            "optimum": min_io_brute(inst.tree, inst.memory)[0],
        }
        print(f"\n{name}")
        for k, v in rows.items():
            print(f"  {k:<16} {v}")
    print(
        "\nFigure 6: expanding node b lets OptMinMem re-plan around the write"
        "\nand reach the optimum.  Figure 7: the optimal plan writes a node"
        "\nOptMinMem never evicts, so no sequence of expansions can find it —"
        "\nFullRecExpand is a heuristic, not an approximation algorithm."
    )


if __name__ == "__main__":
    fig_2a()
    fig_2b_2c()
    fig_6_7()
