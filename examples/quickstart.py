#!/usr/bin/env python3
"""Quickstart: schedule one task tree out-of-core and compare strategies.

This walks through the library's core objects on a tree small enough to
print: build a tree, look at its memory bounds, run the four strategies of
the paper, and inspect the winning traversal step by step.

Run:  python examples/quickstart.py
"""

from repro import (
    TaskTree,
    memory_bounds,
    simulate_fif,
    validate,
)
from repro.experiments.registry import ALGORITHMS


def main() -> None:
    # A small workflow: two branches joined under a root.  Weights are the
    # output-data sizes (think: dense contribution blocks, in MB).
    #
    #                 root(4)
    #                /       \
    #            mid(6)      right(8)
    #            /    \          \
    #       leaf(9)  leaf(5)    leaf(12)
    tree = TaskTree(
        parents=[-1, 0, 1, 1, 0, 4],
        weights=[4, 6, 9, 5, 8, 12],
    )
    print(f"tree: {tree}")
    print(f"execution footprints wbar: {tree.wbar}")

    bounds = memory_bounds(tree)
    print(f"\nfeasibility bound LB       = {bounds.lb}")
    print(f"in-core peak (no I/O need) = {bounds.peak_incore}")
    print(f"I/O regime                 = [{bounds.m1}, {bounds.m2}]")

    memory = bounds.mid
    print(f"\nscheduling with M = {memory} (the paper's mid bound)\n")

    print(f"{'strategy':<16} {'I/O volume':>10} {'performance':>12}")
    best_name, best = None, None
    for name, strategy in ALGORITHMS.items():
        traversal = strategy(tree, memory)
        validate(tree, traversal, memory)  # independent checker
        print(
            f"{name:<16} {traversal.io_volume:>10} "
            f"{traversal.performance(memory):>12.4f}"
        )
        if best is None or traversal.io_volume < best.io_volume:
            best_name, best = name, traversal

    print(f"\nbest: {best_name} — step-by-step replay:")
    result = simulate_fif(tree, best.schedule, memory, trace=True)
    for step in result.steps:
        line = f"  run task {step.node}  (needs {step.need_before:>3})"
        if step.evictions:
            ev = ", ".join(f"{amount} of task {v}" for v, amount in step.evictions)
            line += f"  -> writes {ev}"
        if step.reads:
            line += f"  <- reads back {step.reads}"
        print(line)
    print(f"\ntotal I/O: {result.io_volume} units (writes; reads are symmetric)")


if __name__ == "__main__":
    main()
