#!/usr/bin/env python3
"""Parallel out-of-core: the activation-window makespan/I/O trade-off.

The paper stops at the sequential problem; its stated next step is the
parallel one.  This study runs the activation-window scheduler (the
memory-booking idea of the authors' TOPC 2015 in-core work transplanted
out-of-core) across window sizes and processor counts:

* window 1 executes exactly the sequential RecExpand traversal — minimal
  I/O, no parallelism;
* window n is memory-oblivious list scheduling — maximal parallelism,
  worst I/O;
* the interesting regime is in between.

Run:  python examples/parallel_window_study.py
"""

from repro.analysis.bounds import memory_bounds
from repro.datasets.synth import synth_instance
from repro.experiments.registry import get_algorithm
from repro.parallel import window_sweep


def main() -> None:
    # A random 120-node tree with a real I/O regime.
    for seed in range(1, 100):
        tree = synth_instance(120, seed=seed)
        bounds = memory_bounds(tree)
        if bounds.has_io_regime:
            break
    memory = bounds.mid
    print(f"tree: {tree.n} tasks, LB={bounds.lb}, Peak={bounds.peak_incore}, "
          f"M={memory}")

    order = get_algorithm("RecExpand")(tree, memory).schedule
    windows = (1, 2, 4, 8, 16, tree.n)

    for procs in (1, 2, 4, 8):
        print(f"\np = {procs}")
        print(f"{'window':>7} {'makespan':>10} {'I/O':>7} {'peak mem':>9} "
              f"{'utilisation':>12}")
        reports = window_sweep(tree, memory, procs, order, windows)
        for w in windows:
            r = reports[w]
            print(
                f"{w:>7} {r.makespan:>10.1f} {r.io_volume:>7} "
                f"{r.peak_memory:>9} {r.utilisation():>11.1%}"
            )

    print(
        "\nreading: widening the window buys makespan (higher utilisation)"
        "\nand pays for it in I/O volume — the knob a parallel out-of-core"
        "\nsolver would actually expose."
    )


if __name__ == "__main__":
    main()
