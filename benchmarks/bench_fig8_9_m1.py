"""Figures 8 & 9 (Appendix B): profiles at the minimal memory ``M1 = LB``.

Paper's observations: the OptMinMem-vs-RecExpand gap *widens* at M1
(OptMinMem ≥10 % overhead on most instances), while PostOrderMinIO gets
relatively closer than at M-mid.
"""

from __future__ import annotations

from repro.experiments.figures import run_comparison

from .conftest import figure_report


def scale_nodes(trees) -> int:
    return max(t.n for t in trees)


def test_fig8_synth_m1_profile(benchmark, synth_trees, emit):
    result = benchmark.pedantic(
        run_comparison,
        args=(
            "figure8-synth-M1",
            synth_trees,
            "M1",
            ("OptMinMem", "RecExpand", "PostOrderMinIO", "FullRecExpand"),
        ),
        rounds=1,
        iterations=1,
    )
    emit("fig8_synth_M1", figure_report(result))

    prof = result.profile
    # RecExpand dominates OptMinMem clearly at the tight bound.  The
    # strict-win rate grows with tree size (>= 80% at the paper's 3000
    # nodes, ~50% at the small default), so gate on the scale.
    io = result.io_volumes
    wins = sum(1 for o, r in zip(io["OptMinMem"], io["RecExpand"]) if r < o)
    losses = sum(1 for o, r in zip(io["OptMinMem"], io["RecExpand"]) if r > o)
    threshold = 0.8 if scale_nodes(synth_trees) >= 3000 else 0.4
    assert wins / result.num_instances >= threshold
    assert wins > losses
    # RecExpand itself is essentially never beaten.
    assert prof.curve("RecExpand").fraction_at(0.02) > 0.9


def test_fig9_trees_m1_profile(benchmark, trees_dataset, emit):
    result = benchmark.pedantic(
        run_comparison,
        args=(
            "figure9-trees-M1",
            trees_dataset,
            "M1",
            ("OptMinMem", "RecExpand", "PostOrderMinIO"),
        ),
        rounds=1,
        iterations=1,
    )
    emit("fig9_trees_M1", figure_report(result))
    # RecExpand stays (essentially) unbeaten.
    assert result.profile.curve("RecExpand").fraction_at(0.02) > 0.85
