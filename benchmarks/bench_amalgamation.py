"""Bench: the amalgamation trade-off on real elimination trees.

Sweeps the absorb-below threshold on grid-Laplacian etrees and reports
tree size, feasibility bound LB, in-core peak and RecExpand I/O at the
original mid bound — the memory-for-granularity trade every multifrontal
solver tunes (MUMPS' node-amalgamation control).
"""

from __future__ import annotations

from repro.analysis.bounds import memory_bounds
from repro.datasets.amalgamation import amalgamate
from repro.datasets.elimination import etree_task_tree
from repro.datasets.matrices import grid_laplacian_2d, permute_symmetric
from repro.datasets.nested_dissection import nested_dissection_ordering
from repro.experiments.registry import get_algorithm


def test_amalgamation_sweep(benchmark, emit):
    matrix = grid_laplacian_2d(16, 16)
    perm = nested_dissection_ordering(matrix)
    base = etree_task_tree(permute_symmetric(matrix, perm))
    base_bounds = memory_bounds(base)
    memory = base_bounds.mid
    thresholds = (0, 4, 16, 64, 128)

    def run():
        rows = []
        for t in thresholds:
            result = amalgamate(base, absorb_below=t)
            bounds = memory_bounds(result.tree)
            io = None
            if memory >= bounds.lb:
                io = get_algorithm("RecExpand")(result.tree, memory).io_volume
            rows.append(
                (t, result.tree.n, bounds.lb, bounds.peak_incore, io)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"16x16 grid etree, nested dissection ({base.n} fronts), "
        f"M = {memory} (base mid bound)",
        f"{'absorb<':>8} {'nodes':>7} {'LB':>7} {'peak':>7} {'RecExpand io':>13}",
    ]
    for t, n, lb, peak, io in rows:
        io_s = "infeasible" if io is None else str(io)
        lines.append(f"{t:>8} {n:>7} {lb:>7} {peak:>7} {io_s:>13}")
    emit("amalgamation_sweep", "\n".join(lines))

    # Coarsening monotonically shrinks the tree and can only raise LB.
    sizes = [n for _, n, _, _, _ in rows]
    lbs = [lb for _, _, lb, _, _ in rows]
    assert sizes == sorted(sizes, reverse=True)
    assert lbs == sorted(lbs)
