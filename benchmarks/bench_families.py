"""Bench: which tree *structures* hurt which heuristics (family ablation).

SYNTH averages over random binary shapes; this ablation isolates
structural traits via the parametric families and reports each
strategy's total I/O per family.  Expected signal: heavy-leaf
caterpillars (the Figure 2(a) trait) are the postorder killer, while on
serial chains and stars everybody ties.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import memory_bounds
from repro.datasets.families import FAMILIES
from repro.experiments.registry import get_algorithm

ALGORITHMS = ("OptMinMem", "PostOrderMinIO", "RecExpand")


def _family_instances(seeds=(1, 2, 3)):
    instances = {}
    no_regime = []
    for name, builder in sorted(FAMILIES.items()):
        rows = []
        for seed in seeds:
            tree = builder(np.random.default_rng(seed))
            bounds = memory_bounds(tree)
            if bounds.has_io_regime:
                rows.append((tree, bounds.mid))
        if rows:
            instances[name] = rows
        else:
            no_regime.append(name)
    return instances, no_regime


def test_family_ablation(benchmark, emit):
    instances, no_regime = _family_instances()

    def run():
        table = {}
        for name, rows in instances.items():
            totals = dict.fromkeys(ALGORITHMS, 0)
            for tree, memory in rows:
                for alg in ALGORITHMS:
                    totals[alg] += get_algorithm(alg)(tree, memory).io_volume
            table[name] = totals
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'family':<12}" + "".join(f"{a:>16}" for a in ALGORITHMS)
             + f"{'postorder/best':>16}"]
    for name, totals in table.items():
        best = min(totals.values())
        ratio = totals["PostOrderMinIO"] / max(1, best)
        lines.append(
            f"{name:<12}"
            + "".join(f"{totals[a]:>16}" for a in ALGORITHMS)
            + f"{ratio:>15.2f}x"
        )
    if no_regime:
        lines.append(
            f"no I/O regime (LB == Peak; structure probes only): "
            f"{', '.join(no_regime)}"
        )
    emit("family_ablation", "\n".join(lines))

    # The structural claims we rely on in the docs: the Fig 2(a)-trait
    # caterpillar punishes postorders; RecExpand never loses to OptMinMem.
    assert "caterpillar" in table and "bouquet" in table
    t = table["caterpillar"]
    assert t["RecExpand"] < t["PostOrderMinIO"]
    for totals in table.values():
        assert totals["RecExpand"] <= totals["OptMinMem"] + 1e-9
