"""Benches for the page-granular I/O substrate.

* policy ablation — what an *online* memory manager (LRU/FIFO/random)
  loses over the paper's offline FiF bound, on the SYNTH workload;
* page-size ablation — how transfer granularity inflates volume but
  deflates device time (seek amortisation);
* pager throughput — pages/second of the Belady simulator, the substrate
  cost a solver integrator would pay.
"""

from __future__ import annotations

from repro.analysis.bounds import memory_bounds
from repro.core.simulator import simulate_fif
from repro.experiments.registry import get_algorithm
from repro.io import HDD, estimate_time, paged_io


def _instances(trees, limit):
    out = []
    for tree in trees[:limit]:
        bounds = memory_bounds(tree)
        if bounds.has_io_regime:
            out.append((tree, bounds.mid))
    return out


def test_policy_ablation_on_synth(benchmark, synth_trees, emit):
    instances = _instances(synth_trees, 20)
    schedules = [
        (tree, memory, get_algorithm("RecExpand")(tree, memory).schedule)
        for tree, memory in instances
    ]
    policies = ("belady", "lru", "random", "pessimal")

    def run():
        totals = dict.fromkeys(policies, 0)
        fif_total = 0
        for tree, memory, schedule in schedules:
            fif_total += simulate_fif(tree, schedule, memory).io_volume
            for policy in policies:
                totals[policy] += paged_io(
                    tree, schedule, memory, policy=policy
                ).write_units
        return fif_total, totals

    fif_total, totals = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"RecExpand schedules on {len(schedules)} SYNTH instances (M = mid):",
        f"  node-level FiF volume   : {fif_total}",
    ]
    for policy in policies:
        ratio = totals[policy] / max(1, fif_total)
        lines.append(f"  {policy:<10} paging volume: {totals[policy]:>8}  ({ratio:.2f}x)")
    emit("paging_policy_ablation", "\n".join(lines))

    # The consistency theorem and the online/offline ordering.
    assert totals["belady"] == fif_total
    assert totals["lru"] >= totals["belady"]
    assert totals["pessimal"] >= totals["lru"]


def test_page_size_ablation(benchmark, synth_trees, emit):
    instances = _instances(synth_trees, 12)
    schedules = [
        (tree, memory, get_algorithm("RecExpand")(tree, memory).schedule)
        for tree, memory in instances
    ]
    page_sizes = (1, 2, 4, 8)

    def run():
        rows = []
        for page in page_sizes:
            units = seconds = skipped = 0
            for tree, memory, schedule in schedules:
                try:
                    res = paged_io(
                        tree, schedule, memory, page_size=page, trace=True
                    )
                except Exception:
                    skipped += 1  # page rounding made the bound infeasible
                    continue
                units += res.write_units
                seconds += estimate_time(res.events, HDD).seconds
            rows.append((page, units, seconds, skipped))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'page':>5} {'write units':>12} {'HDD seconds':>12} {'skipped':>8}"]
    for page, units, seconds, skipped in rows:
        lines.append(f"{page:>5} {units:>12} {seconds:>12.3f} {skipped:>8}")
    emit("paging_page_size_ablation", "\n".join(lines))

    # Volume grows with granularity (for the instances feasible throughout).
    assert rows[0][1] <= rows[1][1] or rows[1][3] > 0


def test_pager_throughput(benchmark, synth_trees):
    tree, memory = _instances(synth_trees, 5)[0]
    schedule = get_algorithm("RecExpand")(tree, memory).schedule

    result = benchmark(lambda: paged_io(tree, schedule, memory, policy="belady"))
    assert result is None or True  # benchmark returns the callable's value
