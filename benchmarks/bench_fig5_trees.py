"""Figure 5: performance profiles on TREES (elimination trees) at M-mid.

Paper's observations: the three heuristics coincide on >90 % of the
elimination trees; on the differing subset the hierarchy matches SYNTH
(RecExpand never outperformed, OptMinMem ahead of PostOrderMinIO) but with
much smaller gaps.
"""

from __future__ import annotations

from repro.experiments.figures import run_comparison

from .conftest import figure_report


def _figure5(trees_dataset):
    return run_comparison(
        "figure5-trees-Mmid",
        trees_dataset,
        "Mmid",
        ("OptMinMem", "RecExpand", "PostOrderMinIO"),
    )


def test_fig5_trees_mid_profile(benchmark, trees_dataset, emit):
    result = benchmark.pedantic(
        _figure5, args=(trees_dataset,), rounds=1, iterations=1
    )
    emit("fig5_trees_Mmid", figure_report(result))

    io = result.io_volumes
    n = result.num_instances
    assert n >= 10

    equal = sum(
        1
        for i in range(n)
        if len({io[a][i] for a in result.algorithms}) == 1
    )
    emit("fig5_equal_fraction", f"all-equal instances: {equal}/{n}")
    # The paper reports >90%; allow dataset-substitution slack.
    assert equal / n >= 0.7

    # RecExpand never outperformed by more than a whisker.
    assert result.profile.curve("RecExpand").fraction_at(0.02) > 0.9


def test_fig5_differing_subset(benchmark, trees_dataset, emit):
    """The right plot of Figure 5: restrict to disagreeing instances."""
    result = benchmark.pedantic(
        _figure5, args=(trees_dataset,), rounds=1, iterations=1
    )
    try:
        sub = result.differing_subset()
    except ValueError:
        emit("fig5_differing", "no differing instances at this scale")
        return
    emit("fig5_differing", figure_report(sub))
    # Hierarchy on the differing subset: RecExpand best everywhere.
    assert sub.profile.curve("RecExpand").fraction_at(0.0) == 1.0
