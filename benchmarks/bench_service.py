"""Service layer: request throughput and latency, cold cache vs warm.

What must hold:

* under 16 concurrent clients the service drops **zero** well-formed
  requests (no ``queue_full`` rejections at the default queue limit);
* served results match the offline solver exactly (spot-checked per
  request set);
* a warm-cache repeat of the same request set achieves measurably
  higher throughput than the cold run — the whole point of
  content-addressed dedup is that repeated traffic never reaches a
  worker.

Levels: 1, 4 and 16 concurrent clients, each with its own disjoint
request set (so every level starts cold), then the same set replayed
warm.  ``REPRO_JOBS`` sets the worker-process count (default 2).
"""

from __future__ import annotations

import asyncio
import json
import os
import statistics
import threading
import time
from pathlib import Path

from repro.analysis.bounds import memory_bounds
from repro.datasets.store import ResultCache
from repro.datasets.synth import synth_instance
from repro.experiments.registry import get_algorithm
from repro.core.tree import TaskTree
from repro.service import (
    AsyncServiceClient,
    ServerConfig,
    ServerThread,
    ServiceClient,
)

CLIENT_LEVELS = (1, 4, 16)
REQUESTS_PER_LEVEL = 48
TREE_NODES = 240


def _request_set(level: int) -> list[dict]:
    """A disjoint, deterministic set of solve requests for one level."""
    requests: list[dict] = []
    seed = 10_000 * level
    while len(requests) < REQUESTS_PER_LEVEL:
        tree = synth_instance(TREE_NODES, seed=seed)
        seed += 1
        bounds = memory_bounds(tree)
        if not bounds.has_io_regime:
            continue
        requests.append(
            {
                "kind": "solve",
                "tree": tree.to_dict(),
                "memory": bounds.mid,
                "algorithm": "RecExpand",
            }
        )
    return requests


def _drive(port: int, clients: int, requests: list[dict], wire: str = "auto"):
    """Fan the request set over ``clients`` threads; collect latencies."""
    chunks = [requests[i::clients] for i in range(clients)]
    latencies: list[float] = []
    errors: list[Exception] = []
    lock = threading.Lock()

    def worker(chunk: list[dict]) -> None:
        client = ServiceClient(port=port, timeout=120.0, wire=wire)
        for request in chunk:
            t0 = time.perf_counter()
            try:
                client.submit(request)
            except Exception as exc:  # dropped request — the assertion catches it
                with lock:
                    errors.append(exc)
                continue
            with lock:
                latencies.append(time.perf_counter() - t0)

    threads = [threading.Thread(target=worker, args=(c,)) for c in chunks]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    return elapsed, latencies, errors


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def test_service_throughput_and_latency(tmp_path, batch_jobs, emit):
    cache = ResultCache(tmp_path / "cache")
    config = ServerConfig(port=0, workers=batch_jobs, queue_limit=64)
    lines = [
        f"workers={batch_jobs} requests/level={REQUESTS_PER_LEVEL} "
        f"tree_nodes={TREE_NODES}",
        f"{'clients':>7} {'phase':>5} {'elapsed':>9} {'req/s':>8} "
        f"{'p50 ms':>8} {'p99 ms':>8}",
    ]
    with ServerThread(config, cache=cache) as server:
        server.server.pool.warm_up()
        client = ServiceClient(port=server.port)
        assert client.wait_ready(30)

        gains = {}
        for clients in CLIENT_LEVELS:
            requests = _request_set(clients)
            results = {}
            for phase in ("cold", "warm"):
                elapsed, latencies, errors = _drive(server.port, clients, requests)
                assert not errors, (
                    f"{clients} clients ({phase}): dropped "
                    f"{len(errors)} well-formed requests: {errors[:3]}"
                )
                assert len(latencies) == len(requests)
                results[phase] = (elapsed, latencies)
                lines.append(
                    f"{clients:>7} {phase:>5} {elapsed:>8.2f}s "
                    f"{len(requests) / elapsed:>8.1f} "
                    f"{_percentile(latencies, 0.50) * 1e3:>8.1f} "
                    f"{_percentile(latencies, 0.99) * 1e3:>8.1f}"
                )
            gains[clients] = results["cold"][0] / results["warm"][0]
            lines.append(f"{'':>7} warm/cold throughput gain: {gains[clients]:.2f}x")

            # served == offline, spot check one request of the set
            probe = requests[0]
            served = client.submit(probe)["result"]
            offline = get_algorithm(probe["algorithm"])(
                TaskTree(probe["tree"]["parents"], probe["tree"]["weights"]),
                probe["memory"],
            )
            assert served["io_volume"] == offline.io_volume
            assert served["schedule"] == list(offline.schedule)

        metrics = client.metrics()
        assert metrics["requests"]["rejected"] == 0
        lines.append(
            f"totals: computed={metrics['requests']['computed']} "
            f"cache_hits={metrics['cache']['hits']} rejected=0"
        )

    # the headline claim: repeated traffic is measurably faster from cache
    assert gains[max(CLIENT_LEVELS)] > 1.1, (
        f"warm-cache replay should beat cold compute, got {gains}"
    )
    emit("service_throughput", "\n".join(lines))


# --------------------------------------------------------------------- #
# large-batch burst: 1k small trees through the shared-memory transport
# --------------------------------------------------------------------- #

BURST_TREES = 1_000
BURST_NODES = 512
BURST_CLIENTS = 32


def _burst_requests() -> list[dict]:
    """1 000 distinct small solve requests (the many-small-trees shape)."""
    requests: list[dict] = []
    seed = 500_000
    while len(requests) < BURST_TREES:
        tree = synth_instance(BURST_NODES, seed=seed)
        seed += 1
        bounds = memory_bounds(tree)
        if not bounds.has_io_regime:
            continue
        requests.append(
            {
                "kind": "solve",
                "tree": tree.to_dict(),
                "memory": bounds.mid,
                "algorithm": "PostOrderMinIO",
            }
        )
    return requests


def test_large_batch_burst_over_shared_memory(batch_jobs, emit):
    """1k-tree submit bursts: the forest transport vs pickled payloads.

    What must hold: with large micro-batches and {BURST_CLIENTS}
    concurrent clients the service drops **zero** requests on either
    transport, both transports return identical results, and the
    shared-memory path's envelopes match the offline solver exactly.
    Throughput of both transports is reported side by side.
    """
    requests = _burst_requests()
    probe = requests[0]
    offline = get_algorithm(probe["algorithm"])(
        TaskTree(probe["tree"]["parents"], probe["tree"]["weights"]),
        probe["memory"],
    )
    lines = [
        f"workers={batch_jobs} clients={BURST_CLIENTS} "
        f"requests={BURST_TREES} tree_nodes={BURST_NODES} max_batch=64",
        f"{'transport':>10} {'elapsed':>9} {'trees/s':>9} "
        f"{'p50 ms':>8} {'p99 ms':>8}",
    ]
    throughput = {}
    for transport in ("shm", "pickle"):
        config = ServerConfig(
            port=0,
            workers=batch_jobs,
            queue_limit=max(64, 4 * BURST_CLIENTS),
            max_batch=64,
            batch_window_ms=2.0,
            shm_transport=(transport == "shm"),
            shm_min_nodes=0,  # every batch rides the segment in shm mode
        )
        with ServerThread(config) as server:
            assert server.server.pool.shm_transport == (transport == "shm")
            server.server.pool.warm_up()
            client = ServiceClient(port=server.port)
            assert client.wait_ready(30)
            elapsed, latencies, errors = _drive(
                server.port, BURST_CLIENTS, requests
            )
            assert not errors, (
                f"{transport}: dropped {len(errors)} of {BURST_TREES} "
                f"burst requests: {errors[:3]}"
            )
            assert len(latencies) == BURST_TREES
            served = client.submit(probe)["result"]
            assert served["io_volume"] == offline.io_volume
            assert served["schedule"] == list(offline.schedule)
            metrics = client.metrics()
            assert metrics["requests"]["rejected"] == 0
            if transport == "shm":
                assert server.server.pool.shm_batches > 0
            throughput[transport] = BURST_TREES / elapsed
            lines.append(
                f"{transport:>10} {elapsed:>8.2f}s {BURST_TREES / elapsed:>9,.0f} "
                f"{_percentile(latencies, 0.50) * 1e3:>8.1f} "
                f"{_percentile(latencies, 0.99) * 1e3:>8.1f}"
            )
    lines.append(
        f"shm/pickle throughput ratio: "
        f"{throughput['shm'] / throughput['pickle']:.2f}x"
    )
    emit("service_large_batch", "\n".join(lines))


# --------------------------------------------------------------------- #
# binary wire + pipelined async client vs the JSON/sync path
# --------------------------------------------------------------------- #

BINARY_SPEEDUP_MIN = float(os.environ.get("BINARY_SPEEDUP_MIN", "3.0"))


def _drive_async(port: int, clients: int, requests: list[dict], wire: str):
    """The async analog of :func:`_drive`: ``clients`` logical clients
    sharing one pipelined :class:`AsyncServiceClient` pool."""
    results: list[dict | None] = [None] * len(requests)
    latencies: list[float] = []
    errors: list[Exception] = []

    async def run() -> float:
        async with AsyncServiceClient(
            port=port, timeout=120.0, wire=wire
        ) as client:

            async def worker(indices: list[int]) -> None:
                for i in indices:
                    t0 = time.perf_counter()
                    try:
                        results[i] = await client.submit(requests[i])
                    except Exception as exc:
                        errors.append(exc)
                        continue
                    latencies.append(time.perf_counter() - t0)

            chunks = [
                list(range(c, len(requests), clients)) for c in range(clients)
            ]
            t0 = time.perf_counter()
            await asyncio.gather(*(worker(c) for c in chunks))
            return time.perf_counter() - t0

    elapsed = asyncio.run(run())
    return elapsed, latencies, errors, results


def test_binary_async_burst_vs_json(tmp_path, batch_jobs, emit):
    """The tentpole claim: frames + pipelining beat JSON + thread-per-client.

    One cold pass computes the {BURST_TREES}-request burst and fills the
    result cache; the gated comparison then replays the burst warm on
    both paths — {BURST_CLIENTS} sync clients posting JSON (one
    connection per request, JSON parse on the event loop: the pre-frame
    path byte-for-byte), against {BURST_CLIENTS} logical async clients
    posting binary frames over a pipelined keep-alive pool.  Warm
    replay makes every request a cache hit, so both measurements are
    pure wire path — transport, framing, parse — which is exactly what
    the binary protocol replaces.  What must hold: zero drops on either
    path, served results identical to the offline solver, every binary
    request counted by the ``requests.wire`` metric, and the
    binary+async path at least ``BINARY_SPEEDUP_MIN``x the JSON path's
    trees/s.
    """
    requests = _burst_requests()
    probe = requests[0]
    offline = get_algorithm(probe["algorithm"])(
        TaskTree(probe["tree"]["parents"], probe["tree"]["weights"]),
        probe["memory"],
    )
    cache = ResultCache(tmp_path / "cache")
    config = ServerConfig(
        port=0,
        workers=batch_jobs,
        queue_limit=max(64, 4 * BURST_CLIENTS),
        max_batch=64,
        batch_window_ms=2.0,
        shm_min_nodes=0,
    )
    lines = [
        f"workers={batch_jobs} clients={BURST_CLIENTS} "
        f"requests={BURST_TREES} tree_nodes={BURST_NODES} "
        f"gate={BINARY_SPEEDUP_MIN:.1f}x",
        f"{'path':>12} {'elapsed':>9} {'trees/s':>9} "
        f"{'p50 ms':>8} {'p99 ms':>8}",
    ]
    stats: dict[str, dict] = {}
    with ServerThread(config, cache=cache) as server:
        server.server.pool.warm_up()
        client = ServiceClient(port=server.port)
        assert client.wait_ready(30)

        # cold pass with the default client (binary frames): compute
        # everything once and fill the cache — the service's normal
        # traffic, unmeasured for the gate since compute cost is
        # identical on both paths
        elapsed, latencies, errors = _drive(server.port, BURST_CLIENTS, requests)
        assert not errors, f"cold pass dropped {len(errors)}: {errors[:3]}"
        lines.append(
            f"{'cold':>12} {elapsed:>8.2f}s "
            f"{BURST_TREES / elapsed:>9,.0f} "
            f"{_percentile(latencies, 0.50) * 1e3:>8.1f} "
            f"{_percentile(latencies, 0.99) * 1e3:>8.1f}"
        )

        for path in ("json", "binary"):
            if path == "json":
                elapsed, latencies, errors = _drive(
                    server.port, BURST_CLIENTS, requests, wire="json"
                )
            else:
                elapsed, latencies, errors, served_all = _drive_async(
                    server.port, BURST_CLIENTS, requests, wire="binary"
                )
            assert not errors, (
                f"{path}: dropped {len(errors)} of {BURST_TREES} "
                f"burst requests: {errors[:3]}"
            )
            assert len(latencies) == BURST_TREES
            served = client.submit(probe)["result"]
            assert served["io_volume"] == offline.io_volume
            assert served["schedule"] == list(offline.schedule)
            metrics = client.metrics()
            assert metrics["requests"]["rejected"] == 0
            if path == "binary":
                # every burst request rode a frame, none fell back, and
                # every warm hit carries the same provenance JSON gets
                assert metrics["requests"]["wire"] >= BURST_TREES
                for envelope in served_all:
                    assert envelope is not None and envelope["ok"]
                    assert envelope["cached"]
            stats[path] = {
                "elapsed_s": round(elapsed, 3),
                "trees_per_s": round(BURST_TREES / elapsed, 1),
                "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 2),
                "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 2),
            }
            lines.append(
                f"{path + ' warm':>12} {elapsed:>8.2f}s "
                f"{BURST_TREES / elapsed:>9,.0f} "
                f"{stats[path]['p50_ms']:>8.1f} {stats[path]['p99_ms']:>8.1f}"
            )

    speedup = stats["binary"]["trees_per_s"] / stats["json"]["trees_per_s"]
    lines.append(f"binary/json throughput ratio: {speedup:.2f}x")
    emit("service_wire", "\n".join(lines))

    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "BENCH_wire.json").write_text(
        json.dumps(
            {
                "bench": "binary_async_burst_vs_json",
                "workers": batch_jobs,
                "clients": BURST_CLIENTS,
                "requests": BURST_TREES,
                "tree_nodes": BURST_NODES,
                "json": stats["json"],
                "binary": stats["binary"],
                "speedup": round(speedup, 2),
                "gate": BINARY_SPEEDUP_MIN,
            },
            indent=2,
        )
        + "\n"
    )

    assert speedup >= BINARY_SPEEDUP_MIN, (
        f"binary+async must be >= {BINARY_SPEEDUP_MIN}x the JSON path, "
        f"got {speedup:.2f}x ({stats})"
    )


# --------------------------------------------------------------------- #
# observability overhead: metrics on (tracing off) vs everything off
# --------------------------------------------------------------------- #

OBS_OVERHEAD_MAX = float(os.environ.get("OBS_OVERHEAD_MAX", "0.03"))
OBS_WARM_PASSES = 3


def test_observability_overhead_is_negligible(tmp_path, batch_jobs, emit):
    """The observability tax, gated: metrics on must cost <= {OBS_OVERHEAD_MAX:.0%}.

    The default server counts every request into the metrics registry
    (tracing stays per-request opt-in and is *off* here — the claimed
    near-zero path).  The baseline server runs ``observability=False``,
    which no-ops every counter.  Both replay the {BURST_TREES}-request
    warm burst over the pipelined binary path — pure wire + bookkeeping,
    no compute — best of {OBS_WARM_PASSES} passes each, so the gate
    measures exactly the per-request cost the registry adds.
    """
    requests = _burst_requests()
    stats: dict[str, dict] = {}
    lines = [
        f"workers={batch_jobs} clients={BURST_CLIENTS} "
        f"requests={BURST_TREES} warm_passes={OBS_WARM_PASSES} "
        f"gate<={OBS_OVERHEAD_MAX:.1%}",
        f"{'mode':>12} {'elapsed':>9} {'trees/s':>9} "
        f"{'p50 ms':>8} {'p99 ms':>8}",
    ]
    for mode, observability in (("baseline", False), ("metrics-on", True)):
        cache = ResultCache(tmp_path / f"cache-{mode}")
        config = ServerConfig(
            port=0,
            workers=batch_jobs,
            queue_limit=max(64, 4 * BURST_CLIENTS),
            max_batch=64,
            batch_window_ms=2.0,
            shm_min_nodes=0,
            observability=observability,
        )
        with ServerThread(config, cache=cache) as server:
            server.server.pool.warm_up()
            client = ServiceClient(port=server.port)
            assert client.wait_ready(30)
            # cold pass fills the cache (unmeasured: compute-bound)
            _, _, errors = _drive(server.port, BURST_CLIENTS, requests)
            assert not errors, f"{mode} cold pass dropped {len(errors)}"
            best = None
            for _ in range(OBS_WARM_PASSES):
                elapsed, latencies, errors, _served = _drive_async(
                    server.port, BURST_CLIENTS, requests, wire="binary"
                )
                assert not errors, f"{mode}: dropped {len(errors)}"
                assert len(latencies) == BURST_TREES
                if best is None or elapsed < best[0]:
                    best = (elapsed, latencies)
            elapsed, latencies = best
            metrics = client.metrics()
            if observability:
                assert metrics["requests"]["rejected"] == 0
                assert metrics["requests"]["received"] > 0
            else:
                # the baseline truly counts nothing
                assert metrics["requests"]["received"] == 0
        stats[mode] = {
            "elapsed_s": round(elapsed, 3),
            "trees_per_s": round(BURST_TREES / elapsed, 1),
            "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 2),
            "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 2),
        }
        lines.append(
            f"{mode:>12} {elapsed:>8.2f}s {BURST_TREES / elapsed:>9,.0f} "
            f"{stats[mode]['p50_ms']:>8.1f} {stats[mode]['p99_ms']:>8.1f}"
        )

    overhead = 1.0 - (
        stats["metrics-on"]["trees_per_s"] / stats["baseline"]["trees_per_s"]
    )
    lines.append(f"observability overhead: {overhead:+.2%} (gate {OBS_OVERHEAD_MAX:.1%})")
    emit("service_obs_overhead", "\n".join(lines))

    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "BENCH_obs.json").write_text(
        json.dumps(
            {
                "bench": "observability_overhead",
                "workers": batch_jobs,
                "clients": BURST_CLIENTS,
                "requests": BURST_TREES,
                "warm_passes": OBS_WARM_PASSES,
                "baseline": stats["baseline"],
                "metrics_on": stats["metrics-on"],
                "overhead": round(overhead, 4),
                "gate": OBS_OVERHEAD_MAX,
            },
            indent=2,
        )
        + "\n"
    )

    assert overhead <= OBS_OVERHEAD_MAX, (
        f"metrics-on warm burst must stay within {OBS_OVERHEAD_MAX:.1%} of "
        f"the observability-off baseline, lost {overhead:.2%} ({stats})"
    )
