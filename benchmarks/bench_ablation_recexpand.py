"""Ablations on Algorithm 2's two free choices.

1. The while-loop iteration cap: the paper claims RECEXPAND (cap 2) is
   nearly as good as FULLRECEXPAND (uncapped).  We sweep the cap.
2. The victim rule (Line 6: "tau > 0, parent scheduled latest"): we swap
   in alternatives and measure the penalty.
"""

from __future__ import annotations

from repro.algorithms.rec_expand import VICTIM_RULES, full_rec_expand
from repro.analysis.bounds import memory_bounds

CAPS = (0, 1, 2, 4, None)


def _instances(trees, limit):
    out = []
    for tree in trees[:limit]:
        bounds = memory_bounds(tree)
        if bounds.has_io_regime:
            out.append((tree, bounds.mid))
    return out


def test_iteration_cap_sweep(benchmark, synth_trees, emit):
    instances = _instances(synth_trees, 30)

    def run():
        totals = {}
        for cap in CAPS:
            totals[cap] = sum(
                full_rec_expand(tree, memory, iteration_cap=cap).io_volume
                for tree, memory in instances
            )
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"total I/O over {len(instances)} SYNTH instances (M = mid):"]
    for cap in CAPS:
        label = "inf" if cap is None else str(cap)
        lines.append(f"  cap={label:<4} {totals[cap]:10d}")
    emit("ablation_recexpand_caps", "\n".join(lines))

    # cap 0 degenerates to OptMinMem (worst); the paper's cap=2 captures
    # almost all of the uncapped benefit.
    assert totals[0] >= totals[2] >= totals[None]
    gain_full = totals[0] - totals[None]
    gain_cap2 = totals[0] - totals[2]
    if gain_full > 0:
        assert gain_cap2 / gain_full >= 0.8


def test_victim_rule_ablation(benchmark, synth_trees, emit):
    instances = _instances(synth_trees, 30)

    def run():
        return {
            rule: sum(
                full_rec_expand(tree, memory, victim_rule=rule).io_volume
                for tree, memory in instances
            )
            for rule in VICTIM_RULES
        }

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    base = totals["parent-latest"]
    lines = [f"total I/O over {len(instances)} SYNTH instances (M = mid):"]
    for rule, total in sorted(totals.items(), key=lambda kv: kv[1]):
        lines.append(f"  {rule:<16} {total:10d}   ({total / base:5.2f}x of paper rule)")
    emit("ablation_victim_rule", "\n".join(lines))

    # The paper's rule should be at worst marginally beaten.
    assert base <= 1.05 * min(totals.values())
