"""Figure 4: performance profiles on SYNTH at the mid memory bound.

Paper's observations (Section 6.2) that must hold in shape:

* PostOrderMinIO is far behind — ≥50 % overhead on most instances;
* RecExpand is never (materially) outperformed by OptMinMem;
* FullRecExpand is only marginally better than RecExpand.
"""

from __future__ import annotations

from repro.experiments.figures import run_comparison

from .conftest import figure_report


def _figure4(synth_trees):
    return run_comparison(
        "figure4-synth-Mmid",
        synth_trees,
        "Mmid",
        ("OptMinMem", "RecExpand", "PostOrderMinIO", "FullRecExpand"),
    )


def test_fig4_synth_mid_profile(benchmark, synth_trees, emit):
    result = benchmark.pedantic(_figure4, args=(synth_trees,), rounds=1, iterations=1)
    emit("fig4_synth_Mmid", figure_report(result))

    prof = result.profile
    n = result.num_instances
    assert n >= 10

    # PostOrderMinIO: the majority of instances are >50% above the best.
    assert prof.curve("PostOrderMinIO").fraction_at(0.50) < 0.5

    # RecExpand at threshold 0 dominates OptMinMem's curve.
    assert prof.curve("RecExpand").fraction_at(0.0) >= prof.curve(
        "OptMinMem"
    ).fraction_at(0.0)

    # RecExpand is (almost) never outperformed: within 2% of best everywhere.
    assert prof.curve("RecExpand").fraction_at(0.02) > 0.9

    # FullRecExpand ~ RecExpand: gap below 2% on ≥95% of instances.
    perfs = prof.performances
    close = sum(
        1
        for a, b in zip(perfs["RecExpand"], perfs["FullRecExpand"])
        if a <= b * 1.02
    )
    assert close / n >= 0.9


def test_fig4_recexpand_beats_optminmem_often(benchmark, synth_trees, emit):
    """The strict-win statistic the paper quotes (90% on its dataset)."""
    result = benchmark.pedantic(_figure4, args=(synth_trees,), rounds=1, iterations=1)
    io = result.io_volumes
    wins = sum(1 for o, r in zip(io["OptMinMem"], io["RecExpand"]) if r < o)
    ties = sum(1 for o, r in zip(io["OptMinMem"], io["RecExpand"]) if r == o)
    losses = result.num_instances - wins - ties
    emit(
        "fig4_strict_wins",
        f"RecExpand vs OptMinMem on SYNTH/Mmid: "
        f"wins={wins} ties={ties} losses={losses} of {result.num_instances}",
    )
    assert wins > losses
    assert (wins + ties) / result.num_instances >= 0.9
