"""Forest batch kernels vs the per-tree array engine: many-tree throughput.

The workload is the repository's many-small-trees shape: **1 000 mixed-
family trees of 64–512 nodes** (uniform binary and plane trees,
preferential attachment, nested-dissection-shaped, shallow
caterpillars), arriving as raw ``(parents, weights)`` columns — exactly
what the batch engine's shards and the service's requests carry.  Each
tree is solved for

* ``LB`` (max ``wbar``),
* the ``POSTORDERMINMEM`` peak,
* the ``POSTORDERMINIO`` schedule and its predicted I/O volume
  (``V_root``, which Theorem 4 / the FiF invariant makes the schedule's
  true I/O cost) at the mid bound between the two.

Four implementations run the identical workload, asserted
byte-identical on every tree:

* **forest** — one :class:`ArrayForest` + the vectorised forest
  kernels (the new path);
* **per-tree (auto)** — the per-tree kernel engine exactly as the
  batch shards and the service dispatched every instance before the
  forest layer: one ``TaskTree`` per tree, public APIs, the engine's
  own ``auto`` dispatch (which resolves per tree — mostly the object
  kernels at these sizes, by the ``AUTO_THRESHOLD`` policy).  This
  pair is what the ``FOREST_SPEEDUP_MIN`` gate compares: it is the
  throughput the forest path actually replaces;
* **per-tree (array-pinned)** — same dispatch with ``engine="array"``
  forced, i.e. the flat kernels paying their per-tree construction and
  conversion costs; reported, not gated;
* **per-tree (raw ArrayTree)** — the flat kernels invoked on a
  hand-built ``ArrayTree`` per tree, skipping the ``TaskTree`` hop
  entirely; the strictest baseline, reported, not gated.

A second scenario replays the same 1 000 solves through a
:class:`ResultCache` keyed by :func:`cache_key_buffers` — the cold pass
computes-and-stores, the warm pass must serve every tree from disk.

A third scenario pins the engine question directly: the same
``ArrayForest`` solved twice — once through the per-tree loop cores
(``vectorize=False``) and once through the segmented Liu hill–valley
merge + FiF event sweep — gated by ``FOREST_LIU_FIF_SPEEDUP_MIN``
(default 2x) with results asserted identical field-for-field.

Outputs: ``benchmarks/out/forest_speedup.txt`` and
``benchmarks/out/forest_liu_fif_speedup.txt`` (human-readable) and
``benchmarks/out/BENCH_forest.json`` (machine-readable; latest numbers
at the top level plus a bounded ``runs`` history per scenario — the CI
forest-perf job publishes it and gates on the speedups).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.algorithms.postorder import postorder_min_io, postorder_min_mem
from repro.core import forest_kernels as fk
from repro.core import kernels
from repro.core.arraytree import ArrayTree
from repro.core.forest import ArrayForest
from repro.core.tree import TaskTree
from repro.datasets.store import ResultCache, cache_key_buffers
from repro.datasets.synth import huge_instance, synth_instance
from repro.experiments.batch import ENGINE_VERSION

N_TREES = 1_000
NODE_RANGE = (64, 512)
FAMILIES = ("binary", "plane", "attachment", "nd", "caterpillar")
BENCH_SEED = 20170208

#: the acceptance bar: forest trees/sec over the per-tree array engine.
#: Shared CI runners time noisily, so the CI job lowers the *gate* via
#: FOREST_SPEEDUP_MIN while still publishing the measured numbers.
MIN_FOREST_SPEEDUP = float(os.environ.get("FOREST_SPEEDUP_MIN", "5.0"))

#: the Liu/FiF loop-vs-vector bar: whole-forest OptMinMem + FiF
#: throughput of the segmented/event-sweep kernels over the per-tree
#: loop cores on the *same* ArrayForest (isolates the new vectorized
#: cores from the construction savings the gate above already covers).
MIN_LIU_FIF_SPEEDUP = float(os.environ.get("FOREST_LIU_FIF_SPEEDUP_MIN", "2.0"))

OUT_DIR = Path(__file__).parent / "out"


def _write_bench_json(update: dict, run_record: dict) -> None:
    """Merge ``update`` into BENCH_forest.json and append ``run_record``.

    The top-level keys always hold the latest numbers; ``runs`` keeps a
    bounded per-scenario history so the perf trajectory stays
    machine-readable across re-runs.
    """
    path = OUT_DIR / "BENCH_forest.json"
    try:
        payload = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        payload = {}
    payload.update(update)
    runs = payload.get("runs", [])
    runs.append(dict(run_record, recorded_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())))
    payload["runs"] = runs[-20:]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _dataset() -> list[tuple[list[int], list[int]]]:
    """1 000 seeded mixed-family trees as raw columns."""
    rng = np.random.default_rng(BENCH_SEED)
    pairs = []
    for i in range(N_TREES):
        n = int(rng.integers(NODE_RANGE[0], NODE_RANGE[1] + 1))
        family = FAMILIES[i % len(FAMILIES)]
        if family in ("binary", "plane"):
            tree = synth_instance(n, seed=BENCH_SEED + i, shape=family)
            pairs.append((list(tree.parents), list(tree.weights)))
        else:
            # shallow caterpillars: the deep-spine variant is a
            # recursion regression shape, not a throughput workload
            kwargs = {"depth": n // 8} if family == "caterpillar" else {}
            at = huge_instance(family, n, seed=BENCH_SEED + i, **kwargs)
            pairs.append((at._parents.tolist(), at._weights.tolist()))
    return pairs


def _mid(lb: int, peak: int) -> int:
    return max(lb, (lb + peak - 1) // 2)


def _solve_forest(pairs):
    forest = ArrayForest.from_pairs(pairs)
    lbs = np.asarray(fk.forest_lower_bounds(forest))
    _none, storage, _vio = fk.forest_best_postorders_flat(
        forest, None, schedules=False
    )
    roots = forest._roots_local + forest.offsets[:-1]
    peaks = storage[roots]
    mems = np.maximum(lbs, (lbs + peaks - 1) // 2)
    schedule, _storage, vio = fk.forest_best_postorders_flat(forest, mems)
    return forest, lbs, peaks, mems, schedule, vio[roots]


def _solve_per_tree_public(pairs, engine):
    out = []
    for parents, weights in pairs:
        tree = TaskTree(parents, weights)
        lb = tree.min_feasible_memory()
        mm = postorder_min_mem(tree, engine=engine)
        memory = _mid(lb, mm.peak_memory)
        io = postorder_min_io(tree, memory, engine=engine)
        out.append((lb, mm.peak_memory, memory, io.schedule, io.predicted_io))
    return out


def _solve_per_tree_raw(pairs):
    out = []
    for parents, weights in pairs:
        at = ArrayTree(parents, weights)
        lb = at.min_feasible_memory()
        s0, st0, _v0 = kernels.best_postorder(at, None)
        peak = st0[s0[-1]]
        memory = _mid(lb, peak)
        s1, _st1, v1 = kernels.best_postorder(at, memory)
        out.append((lb, peak, memory, s1, v1[s1[-1]]))
    return out


def _best_of(f, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = f()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _assert_identical(pairs, forest_result, per_tree_result):
    forest, lbs, peaks, mems, schedule, vroots = forest_result
    offsets = forest.offsets.tolist()
    for k, (lb, peak, memory, sched, vio) in enumerate(per_tree_result):
        assert lb == lbs[k] and peak == peaks[k] and memory == mems[k], k
        assert vio == vroots[k], k
        a, b = offsets[k], offsets[k + 1]
        assert list(sched) == schedule[a:b].tolist(), k


def _cached_replay(pairs, tmp_root) -> tuple[float, float]:
    """Cold compute-and-store vs warm all-hits, through buffer-digest keys."""
    cache = ResultCache(tmp_root)

    def run() -> int:
        hits = 0
        for parents, weights in pairs:
            key = cache_key_buffers(
                {"kind": "bench-forest-solve", "version": ENGINE_VERSION},
                {"parents": parents, "weights": weights},
            )
            value = cache.get(key)
            if value is not None:
                hits += 1
                continue
            at = ArrayTree(parents, weights)
            lb = at.min_feasible_memory()
            s0, st0, _ = kernels.best_postorder(at, None)
            memory = _mid(lb, st0[s0[-1]])
            s1, _, v1 = kernels.best_postorder(at, memory)
            cache.put(key, {"memory": memory, "io": v1[s1[-1]]})
        return hits

    t0 = time.perf_counter()
    hits = run()
    cold = time.perf_counter() - t0
    assert hits == 0
    t0 = time.perf_counter()
    hits = run()
    warm = time.perf_counter() - t0
    assert hits == len(pairs)
    return cold, warm


def test_forest_speedup(tmp_path, emit):
    pairs = _dataset()

    t_forest, forest_result = _best_of(lambda: _solve_forest(pairs))
    t_auto, auto_result = _best_of(
        lambda: _solve_per_tree_public(pairs, None), repeats=2
    )
    t_array, array_result = _best_of(
        lambda: _solve_per_tree_public(pairs, "array"), repeats=2
    )
    t_raw, raw_result = _best_of(lambda: _solve_per_tree_raw(pairs))

    _assert_identical(pairs, forest_result, auto_result)
    _assert_identical(pairs, forest_result, array_result)
    _assert_identical(pairs, forest_result, raw_result)

    speedup = t_auto / t_forest
    array_speedup = t_array / t_forest
    raw_speedup = t_raw / t_forest
    cold, warm = _cached_replay(pairs, tmp_path / "cache")

    rows = [
        ("forest (ArrayForest + forest kernels)", t_forest),
        ("per-tree engine (auto dispatch, pre-forest path)", t_auto),
        ("per-tree engine (array-pinned public APIs)", t_array),
        ("per-tree engine (raw ArrayTree + kernels)", t_raw),
    ]
    lines = [
        f"{N_TREES} mixed-family trees, {NODE_RANGE[0]}-{NODE_RANGE[1]} "
        f"nodes (families: {', '.join(FAMILIES)})",
        "workload per tree: LB + PostOrderMinMem peak + PostOrderMinIO "
        "schedule & V_root at Mmid",
        "",
        f"{'path':<50} {'seconds':>9} {'trees/s':>9}",
    ]
    for name, t in rows:
        lines.append(f"{name:<50} {t:>8.3f}s {N_TREES / t:>9,.0f}")
    lines += [
        "",
        f"forest speedup vs per-tree engine (auto dispatch): {speedup:.2f}x "
        f"(gate: {MIN_FOREST_SPEEDUP}x)",
        f"forest speedup vs array-pinned per-tree dispatch:  "
        f"{array_speedup:.2f}x",
        f"forest speedup vs raw-ArrayTree per-tree kernels:  "
        f"{raw_speedup:.2f}x",
        f"buffer-digest cache replay: cold {N_TREES / cold:,.0f} trees/s, "
        f"warm {N_TREES / warm:,.0f} trees/s ({cold / warm:.1f}x)",
    ]
    emit("forest_speedup", "\n".join(lines))

    payload = {
        "n_trees": N_TREES,
        "node_range": list(NODE_RANGE),
        "families": list(FAMILIES),
        "trees_per_sec": {
            "forest": N_TREES / t_forest,
            "per_tree_auto_dispatch": N_TREES / t_auto,
            "per_tree_array_pinned": N_TREES / t_array,
            "per_tree_raw_arraytree": N_TREES / t_raw,
            "cache_cold": N_TREES / cold,
            "cache_warm": N_TREES / warm,
        },
        "speedup": speedup,
        "array_pinned_speedup": array_speedup,
        "raw_speedup": raw_speedup,
        "gate": MIN_FOREST_SPEEDUP,
        "byte_identical": True,
    }
    _write_bench_json(
        payload,
        {
            "scenario": "forest_vs_per_tree",
            "speedup": speedup,
            "gate": MIN_FOREST_SPEEDUP,
            "forest_trees_per_sec": N_TREES / t_forest,
        },
    )

    assert speedup >= MIN_FOREST_SPEEDUP, (
        f"forest path only {speedup:.2f}x over the per-tree engine "
        f"({N_TREES / t_forest:,.0f} vs {N_TREES / t_auto:,.0f} trees/s); "
        f"the bar is {MIN_FOREST_SPEEDUP}x"
    )
    assert warm < cold, "a warm buffer-digest cache must beat recomputing"


def _liu_fif_workload(forest, schedules, mems, vectorize):
    """One whole-forest OptMinMem + MinPeaks + FiF pass, engine pinned."""
    peaks = fk.forest_min_peaks(forest, vectorize=vectorize)
    opt = fk.forest_opt_min_mem(forest, vectorize=vectorize)
    sims = fk.forest_simulate_fif(forest, schedules, mems, vectorize=vectorize)
    return peaks, opt, sims


def test_forest_liu_fif_speedup(emit):
    """Gate the vectorized Liu (hill–valley) and FiF (event sweep) cores.

    Same 1 000-tree dataset, same ArrayForest on both sides — only the
    kernel engine differs (``vectorize=False`` per-tree loop cores vs
    the segmented/event-sweep twins), so the measured ratio is purely
    the new loop-free cores.  FiF replays each tree's best postorder at
    the mid memory bound (evictions actually happen) and results are
    asserted identical field-for-field.
    """
    pairs = _dataset()
    forest = ArrayForest.from_pairs(pairs)
    lbs = fk.forest_lower_bounds(forest)
    per_tree = fk.forest_best_postorders(forest, None)
    schedules = [s for s, _st, _v in per_tree]
    peaks = [st[s[-1]] for s, st, _v in per_tree]
    mems = [_mid(lb, pk) for lb, pk in zip(lbs, peaks)]

    t_loop, loop_result = _best_of(
        lambda: _liu_fif_workload(forest, schedules, mems, False)
    )
    t_vec, vec_result = _best_of(
        lambda: _liu_fif_workload(forest, schedules, mems, True), repeats=5
    )
    assert loop_result == vec_result, "loop and vector cores must agree"

    speedup = t_loop / t_vec
    lines = [
        f"{N_TREES} mixed-family trees, {NODE_RANGE[0]}-{NODE_RANGE[1]} "
        "nodes, one shared ArrayForest",
        "workload per pass: forest_min_peaks + forest_opt_min_mem + "
        "forest_simulate_fif(best postorder @ Mmid)",
        "",
        f"{'engine':<50} {'seconds':>9} {'trees/s':>9}",
        f"{'per-tree loop cores (vectorize=False)':<50} "
        f"{t_loop:>8.3f}s {N_TREES / t_loop:>9,.0f}",
        f"{'segmented Liu + FiF event sweep (vectorize=True)':<50} "
        f"{t_vec:>8.3f}s {N_TREES / t_vec:>9,.0f}",
        "",
        f"OptMinMem+FiF vector speedup: {speedup:.2f}x "
        f"(gate: {MIN_LIU_FIF_SPEEDUP}x)",
    ]
    emit("forest_liu_fif_speedup", "\n".join(lines))

    _write_bench_json(
        {
            "liu_fif": {
                "trees_per_sec": {
                    "loop_cores": N_TREES / t_loop,
                    "vectorized": N_TREES / t_vec,
                },
                "speedup": speedup,
                "gate": MIN_LIU_FIF_SPEEDUP,
                "byte_identical": True,
            }
        },
        {
            "scenario": "liu_fif_loop_vs_vector",
            "speedup": speedup,
            "gate": MIN_LIU_FIF_SPEEDUP,
            "vectorized_trees_per_sec": N_TREES / t_vec,
        },
    )

    assert speedup >= MIN_LIU_FIF_SPEEDUP, (
        f"vectorized Liu/FiF cores only {speedup:.2f}x over the loop "
        f"cores ({N_TREES / t_vec:,.0f} vs {N_TREES / t_loop:,.0f} "
        f"trees/s); the bar is {MIN_LIU_FIF_SPEEDUP}x"
    )
