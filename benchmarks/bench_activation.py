"""Bench: the activation-window makespan/I-O trade-off (parallel extension).

Sweeps the window size of the activation scheduler on SYNTH instances
with 4 processors, quantifying the knob a parallel out-of-core solver
exposes: wider window => shorter makespan, more I/O.
"""

from __future__ import annotations

from repro.analysis.bounds import memory_bounds
from repro.experiments.registry import get_algorithm
from repro.parallel import window_sweep


def _instances(trees, limit):
    out = []
    for tree in trees[:limit]:
        bounds = memory_bounds(tree)
        if bounds.has_io_regime:
            out.append((tree, bounds.mid))
    return out


def test_window_tradeoff(benchmark, synth_trees, emit):
    instances = _instances(synth_trees, 6)
    processors = 4
    windows = (1, 2, 4, 8, 16)

    def run():
        rows = []
        for w in windows:
            makespan = io = 0.0
            for tree, memory in instances:
                order = get_algorithm("RecExpand")(tree, memory).schedule
                report = window_sweep(
                    tree, memory, processors, order, windows=(w,)
                )[w]
                makespan += report.makespan
                io += report.io_volume
            rows.append((w, makespan, io))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{len(instances)} SYNTH instances, p={processors}, RecExpand orders",
        f"{'window':>7} {'sum makespan':>13} {'sum I/O':>9}",
    ]
    for w, makespan, io in rows:
        lines.append(f"{w:>7} {makespan:>13.1f} {io:>9.0f}")
    emit("activation_window_tradeoff", "\n".join(lines))

    # Window 1 serialises: it must have the largest makespan of the sweep.
    makespans = [m for _, m, _ in rows]
    assert makespans[0] >= max(makespans) - 1e-9
