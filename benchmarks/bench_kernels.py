"""Kernel-engine benchmark: flat-array kernels vs per-node objects.

What must hold (the kernel layer's acceptance bar):

* on a 10^5-node instance the array engine is **>= 3x** faster than the
  object engine over the full kernel suite (construction, both best
  postorders, Liu's solver, the FiF simulation) — with byte-identical
  results, asserted here on every call;
* a 10^6-node chain (depth 10^6) solves end-to-end on the array engine
  without recursion tricks, in seconds.

Writes ``benchmarks/out/kernel_speedup.txt`` with the per-kernel
trajectory so EXPERIMENTS.md can quote it.
"""

from __future__ import annotations

import os
import time

from repro.algorithms.liu import min_peak_memory, opt_min_mem
from repro.algorithms.postorder import postorder_min_io, postorder_min_mem
from repro.core.arraytree import ArrayTree
from repro.core.simulator import simulate_fif
from repro.core.tree import TaskTree
from repro.datasets.synth import huge_instance, synth_instance

N_HEADLINE = 100_000
N_SMALL = 10_000
#: the local acceptance bar.  Shared CI runners time noisily (sustained
#: neighbor load skews the two sequential engine runs differently), so
#: the CI job lowers the *gate* via KERNEL_SPEEDUP_MIN while still
#: publishing the measured trajectory as an artifact.
MIN_SUITE_SPEEDUP = float(os.environ.get("KERNEL_SPEEDUP_MIN", "3.0"))


def _best_of(f, repeats=5):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = f()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _suite(n: int, seed: int = 1):
    """Time every kernel on both engines; assert exact result equality."""
    base = synth_instance(n, seed=seed)
    parents, weights = list(base.parents), list(base.weights)
    rows = []

    t_obj, obj = _best_of(lambda: TaskTree(parents, weights))
    t_arr, arr = _best_of(lambda: ArrayTree(parents, weights))
    rows.append(("build", t_obj, t_arr))

    t_obj, mm_obj = _best_of(lambda: postorder_min_mem(obj, engine="object"))
    t_arr, mm_arr = _best_of(lambda: postorder_min_mem(arr, engine="array"))
    assert mm_obj == mm_arr
    rows.append(("postorder_min_mem", t_obj, t_arr))

    lb = obj.min_feasible_memory()
    memory = max(lb, (lb + mm_obj.peak_memory) // 2)
    t_obj, io_obj = _best_of(lambda: postorder_min_io(obj, memory, engine="object"))
    t_arr, io_arr = _best_of(lambda: postorder_min_io(arr, memory, engine="array"))
    assert io_obj == io_arr
    rows.append(("postorder_min_io", t_obj, t_arr))

    # One solve per engine (schedule + peak share one memoised solver).
    t_obj, liu_obj = _best_of(lambda: opt_min_mem(obj, engine="object"))
    t_arr, liu_arr = _best_of(lambda: opt_min_mem(arr, engine="array"))
    assert list(liu_obj[0]) == list(liu_arr[0]) and liu_obj[1] == liu_arr[1]
    rows.append(("liu_opt_min_mem", t_obj, t_arr))

    t_obj, f_obj = _best_of(
        lambda: simulate_fif(obj, io_obj.schedule, memory, engine="object")
    )
    t_arr, f_arr = _best_of(
        lambda: simulate_fif(arr, io_arr.schedule, memory, engine="array")
    )
    assert dict(f_obj.io) == dict(f_arr.io)
    assert f_obj.io_volume == f_arr.io_volume
    assert io_obj.predicted_io == f_arr.io_volume
    rows.append(("simulate_fif", t_obj, t_arr))
    return rows


def _render(n, rows):
    lines = [f"n = {n} (uniform random binary tree, weights in [1, 100])"]
    lines.append(f"{'kernel':<20} {'object':>9} {'array':>9} {'speedup':>8}")
    tot_obj = tot_arr = 0.0
    for name, t_obj, t_arr in rows:
        tot_obj += t_obj
        tot_arr += t_arr
        lines.append(f"{name:<20} {t_obj:>8.3f}s {t_arr:>8.3f}s {t_obj/t_arr:>7.2f}x")
    lines.append(
        f"{'TOTAL':<20} {tot_obj:>8.3f}s {tot_arr:>8.3f}s "
        f"{tot_obj/tot_arr:>7.2f}x"
    )
    return "\n".join(lines), tot_obj / tot_arr


def test_kernel_speedup_trajectory(emit):
    report = []
    speedup_headline = None
    for n in (N_SMALL, N_HEADLINE):
        text, speedup = _render(n, _suite(n))
        report.append(text)
        if n == N_HEADLINE:
            speedup_headline = speedup

    # Million-node chain: the shape no recursive/object pipeline survives.
    t0 = time.perf_counter()
    chain = huge_instance("chain", 1_000_000, seed=1)
    peak = min_peak_memory(chain)
    memory = max(chain.min_feasible_memory(), peak - 1)
    result = postorder_min_io(chain, memory)
    sim = simulate_fif(chain, result.schedule, memory)
    assert result.predicted_io == sim.io_volume
    chain_seconds = time.perf_counter() - t0
    report.append(
        f"million-node chain (depth 10^6): generate + min_peak + "
        f"postorder_min_io + FiF = {chain_seconds:.1f}s on the array engine"
    )

    emit("kernel_speedup", "\n\n".join(report))
    assert speedup_headline is not None and speedup_headline >= MIN_SUITE_SPEEDUP, (
        f"array engine only {speedup_headline:.2f}x over the kernel suite at "
        f"n={N_HEADLINE}; the bar is {MIN_SUITE_SPEEDUP}x"
    )
    assert chain_seconds < 120.0
