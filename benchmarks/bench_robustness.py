"""Bench: seed-robustness of the headline comparison (Figure 4's claim).

Re-runs the SYNTH/Mmid comparison across five dataset seeds and reports
win-fraction CIs plus pairwise significance — the statistical backing
for "RecExpand dominates" quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.robustness import seed_sweep


def test_seed_robustness_synth_mmid(benchmark, emit):
    sweep = benchmark.pedantic(
        lambda: seed_sweep("synth", "Mmid", scale="tiny", seeds=(1, 2, 3, 4, 5)),
        rounds=1,
        iterations=1,
    )
    emit("robustness_synth_mmid", sweep.summary())

    # The ordering must hold on *every* seed, not just on average.
    for seed_idx in range(len(sweep.seeds)):
        rec = sweep.win_fractions["RecExpand"][seed_idx]
        opt = sweep.win_fractions["OptMinMem"][seed_idx]
        post = sweep.win_fractions["PostOrderMinIO"][seed_idx]
        assert rec >= opt >= post

    # And RecExpand vs PostOrderMinIO must be statistically significant.
    rows = {(r.first, r.second): r for r in sweep.significance(seed=7)}
    row = rows.get(("PostOrderMinIO", "RecExpand")) or rows.get(
        ("RecExpand", "PostOrderMinIO")
    )
    assert row is not None and row.significant()
