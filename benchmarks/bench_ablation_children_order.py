"""Ablation: how much does PostOrderMinIO's child-ordering key matter?

Theorem 3 says sorting children by decreasing ``A - w`` is optimal among
postorders.  This bench replaces the key with plausible alternatives
(Liu's MinMem key ``S - w``, the uncapped ``A``, lightest-residue,
input order) and measures the I/O penalty.
"""

from __future__ import annotations

from repro.algorithms.postorder import CHILD_ORDER_KEYS, postorder_with_child_key
from repro.analysis.bounds import memory_bounds
from repro.core.simulator import fif_io_volume


def _run(trees):
    totals = {key: 0 for key in CHILD_ORDER_KEYS}
    checked = 0
    for tree in trees:
        bounds = memory_bounds(tree)
        if not bounds.has_io_regime:
            continue
        memory = bounds.mid
        checked += 1
        for key in CHILD_ORDER_KEYS:
            res = postorder_with_child_key(tree, memory, key)
            io = fif_io_volume(tree, res.schedule, memory)
            assert io == res.predicted_io  # V recursion holds for any order
            totals[key] += io
    return totals, checked


def test_child_order_key_ablation(benchmark, synth_trees, emit):
    trees = synth_trees[: min(len(synth_trees), 40)]
    totals, checked = benchmark.pedantic(_run, args=(trees,), rounds=1, iterations=1)

    lines = [f"total postorder I/O over {checked} SYNTH instances (M = mid):"]
    base = totals["A-w"]
    for key, total in sorted(totals.items(), key=lambda kv: kv[1]):
        lines.append(f"  {key:<12} {total:10d}   ({total / base:5.2f}x of A-w)")
    emit("ablation_children_order", "\n".join(lines))

    # Theorem 3's key must be the best of the bunch.
    assert base == min(totals.values())
    # And the ordering genuinely matters: the worst key pays noticeably more.
    assert max(totals.values()) > 1.05 * base
