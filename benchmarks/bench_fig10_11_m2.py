"""Figures 10 & 11 (Appendix B): profiles at ``M2 = Peak_incore - 1``.

Paper's observation: at the loosest I/O-forcing bound, OptMinMem,
RecExpand and FullRecExpand coincide *exactly* (M2 is one unit below what
OptMinMem needs, so a couple of units of I/O fix everything and the
expansion loop reproduces OptMinMem's plan); only PostOrderMinIO differs,
and by little.
"""

from __future__ import annotations

from repro.experiments.figures import run_comparison

from .conftest import figure_report


def test_fig10_synth_m2_profile(benchmark, synth_trees, emit):
    result = benchmark.pedantic(
        run_comparison,
        args=(
            "figure10-synth-M2",
            synth_trees,
            "M2",
            ("OptMinMem", "RecExpand", "PostOrderMinIO", "FullRecExpand"),
        ),
        rounds=1,
        iterations=1,
    )
    emit("fig10_synth_M2", figure_report(result, max_threshold=0.02))

    io = result.io_volumes
    n = result.num_instances
    same = sum(
        1
        for i in range(n)
        if io["OptMinMem"][i] == io["RecExpand"][i] == io["FullRecExpand"][i]
    )
    emit("fig10_equality", f"OptMinMem == RecExpand == FullRecExpand on {same}/{n}")
    assert same == n  # the paper's "always equal" claim

    # I/O volumes at M2 are tiny (a unit or two).
    assert max(io["OptMinMem"]) <= 10


def test_fig11_trees_m2_profile(benchmark, trees_dataset, emit):
    result = benchmark.pedantic(
        run_comparison,
        args=(
            "figure11-trees-M2",
            trees_dataset,
            "M2",
            ("OptMinMem", "RecExpand", "PostOrderMinIO"),
        ),
        rounds=1,
        iterations=1,
    )
    emit("fig11_trees_M2", figure_report(result, max_threshold=0.05))
    io = result.io_volumes
    n = result.num_instances
    same = sum(1 for i in range(n) if io["OptMinMem"][i] == io["RecExpand"][i])
    assert same == n
