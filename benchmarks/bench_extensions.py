"""Benches for the beyond-the-paper extensions.

* integrality gap — how much the NP-complete whole-node restriction
  (reference [3] of the paper) costs over paging on the SYNTH workload;
* parallel scaling — makespan/I/O of the parallel engine as the processor
  count grows, with priorities from each sequential strategy (the paper's
  future-work direction).
"""

from __future__ import annotations

from repro.algorithms.integral_io import whole_node_fif
from repro.algorithms.liu import LiuSolver
from repro.analysis.bounds import memory_bounds
from repro.core.simulator import simulate_fif
from repro.parallel import priority_from_strategy, simulate_parallel


def _instances(trees, limit):
    out = []
    for tree in trees[:limit]:
        bounds = memory_bounds(tree)
        if bounds.has_io_regime:
            out.append((tree, bounds.mid))
    return out


def test_integrality_gap_on_synth(benchmark, synth_trees, emit):
    instances = _instances(synth_trees, 30)

    def run():
        frac_total = whole_total = 0
        per_instance = []
        for tree, memory in instances:
            schedule = LiuSolver(tree).schedule()
            frac = simulate_fif(tree, schedule, memory).io_volume
            whole = whole_node_fif(tree, schedule, memory).io_volume
            frac_total += frac
            whole_total += whole
            per_instance.append((frac, whole))
        return frac_total, whole_total, per_instance

    frac_total, whole_total, per_instance = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    ratio = whole_total / max(1, frac_total)
    emit(
        "ext_integrality_gap",
        f"OptMinMem schedules on {len(instances)} SYNTH instances (M = mid):\n"
        f"  fractional (paging) I/O : {frac_total}\n"
        f"  whole-node I/O (greedy) : {whole_total}\n"
        f"  integral / fractional   : {ratio:.2f}x",
    )
    # Paging always wins, and the restriction costs something real.
    assert all(w >= f for f, w in per_instance)
    assert whole_total > frac_total


def test_parallel_scaling(benchmark, synth_trees, emit):
    instances = _instances(synth_trees, 8)
    procs = (1, 2, 4, 8)

    def run():
        rows = []
        for p in procs:
            makespan = io = 0.0
            for tree, memory in instances:
                priority = priority_from_strategy(tree, memory, "RecExpand")
                report = simulate_parallel(tree, memory, p, priority)
                makespan += report.makespan
                io += report.io_volume
            rows.append((p, makespan, io))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    base = rows[0][1]
    lines = [f"{len(instances)} SYNTH instances, RecExpand priorities (M = mid):"]
    lines.append(f"{'p':>3} {'sum makespan':>14} {'speedup':>8} {'sum io':>10}")
    for p, makespan, io in rows:
        lines.append(f"{p:>3} {makespan:>14.1f} {base / makespan:>8.2f} {io:>10.0f}")
    emit("ext_parallel_scaling", "\n".join(lines))

    # Two processors buy real speedup; beyond that the shared memory is
    # the bottleneck: speedup plateaus (small regressions allowed — more
    # concurrent subtrees mean more evictions) while the I/O volume blows
    # up monotonically.  This is the pathology that motivates the paper's
    # "parallel is future work" stance.
    makespans = [m for _, m, _ in rows]
    assert makespans[1] < makespans[0]
    assert all(b <= 1.05 * a for a, b in zip(makespans[1:], makespans[2:]))
    ios = [io for _, _, io in rows]
    assert ios == sorted(ios)


def test_parallel_priority_comparison(benchmark, synth_trees, emit):
    instances = _instances(synth_trees, 8)
    strategies = ("RecExpand", "OptMinMem", "PostOrderMinIO")

    def run():
        totals = {}
        for name in strategies:
            io = 0.0
            for tree, memory in instances:
                priority = priority_from_strategy(tree, memory, name)
                io += simulate_parallel(tree, memory, 4, priority).io_volume
            totals[name] = io
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["parallel I/O volume (p=4, M=mid) by priority source:"]
    for name, io in sorted(totals.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:<16} {io:>10.0f}")
    emit("ext_parallel_priorities", "\n".join(lines))

    # Negative finding, on purpose: under a memory-oblivious list
    # scheduler the sequential hierarchy *washes out* — all priority
    # sources land within ~10% of each other, because concurrent subtree
    # openings dominate the eviction pressure.  This is quantitative
    # support for the paper's claim that the parallel problem cannot be
    # solved by just reusing a good sequential order.
    lo, hi = min(totals.values()), max(totals.values())
    assert hi <= 1.15 * lo
    assert lo > 0
