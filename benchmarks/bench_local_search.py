"""Bench: local search as a post-optimizer for each starting strategy.

Measures, on SYNTH instances, how much of a strategy's I/O the generic
hill-climber (swap + shift + gather moves) can claw back — and the
asymmetry that validates the paper's design: RecExpand starts are
already near-locally-optimal, while PostOrderMinIO starts leave a large
recoverable gap.
"""

from __future__ import annotations

from repro.algorithms.local_search import local_search
from repro.analysis.bounds import memory_bounds
from repro.experiments.registry import get_algorithm

STARTS = ("PostOrderMinIO", "OptMinMem", "RecExpand")


def _instances(trees, limit):
    out = []
    for tree in trees[:limit]:
        bounds = memory_bounds(tree)
        if bounds.has_io_regime:
            out.append((tree, bounds.mid))
    return out


def test_local_search_recovery(benchmark, synth_trees, emit):
    instances = _instances(synth_trees, 8)
    budget = 3000

    def run():
        rows = {}
        for start in STARTS:
            before = after = evals = 0
            for tree, memory in instances:
                traversal = get_algorithm(start)(tree, memory)
                result = local_search(
                    tree,
                    memory,
                    traversal.schedule,
                    max_rounds=3,
                    max_evaluations=budget,
                )
                before += traversal.io_volume
                after += result.io_volume
                evals += result.evaluations
            rows[start] = (before, after, evals)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{len(instances)} SYNTH instances (M = mid), "
        f"budget {budget} evaluations per run",
        f"{'start':<16} {'io before':>10} {'io after':>10} {'recovered':>10}",
    ]
    for start, (before, after, _) in rows.items():
        rec = (before - after) / before if before else 0.0
        lines.append(f"{start:<16} {before:>10} {after:>10} {rec:>9.1%}")
    emit("local_search_recovery", "\n".join(lines))

    # Never regresses; the postorder start must leave room to recover.
    for before, after, _ in rows.values():
        assert after <= before
    po_before, po_after, _ = rows["PostOrderMinIO"]
    re_before, re_after, _ = rows["RecExpand"]
    assert po_before - po_after >= re_before - re_after
