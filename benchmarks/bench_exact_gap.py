"""Benches for the exact solver: optimality gaps and search cost.

The paper cannot report distances to the optimum (complexity open, no
solver); with the branch-and-bound oracle we can, on small instances.
This bench measures (a) how often each polynomial heuristic is exactly
optimal, (b) the search cost of proving it.
"""

from __future__ import annotations

from repro.algorithms.exact import exact_min_io
from repro.analysis.bounds import memory_bounds
from repro.datasets.synth import synth_instance
from repro.experiments.registry import PAPER_ALGORITHMS, get_algorithm


def _small_instances(n_nodes: int, count: int):
    out = []
    seed = 0
    while len(out) < count and seed < 500:
        seed += 1
        tree = synth_instance(n_nodes, seed=seed)
        bounds = memory_bounds(tree)
        if bounds.has_io_regime:
            out.append((tree, bounds.mid))
    return out


def test_optimality_gaps_vs_exact(benchmark, emit):
    instances = _small_instances(12, 30)

    def run():
        optimal = dict.fromkeys(PAPER_ALGORITHMS, 0)
        worst = dict.fromkeys(PAPER_ALGORITHMS, 0.0)
        states = 0
        for tree, memory in instances:
            exact = exact_min_io(tree, memory, max_states=500_000)
            states += exact.states_expanded
            for name in PAPER_ALGORITHMS:
                io = get_algorithm(name)(tree, memory).io_volume
                gap = (memory + io) / (memory + exact.io_volume) - 1.0
                if io == exact.io_volume:
                    optimal[name] += 1
                worst[name] = max(worst[name], gap)
        return optimal, worst, states

    optimal, worst, states = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{len(instances)} random 12-node instances, exact optimum as reference",
        f"({states} branch-and-bound states expanded in total)",
        f"{'strategy':<16} {'optimal':>9} {'worst gap':>10}",
    ]
    for name in PAPER_ALGORITHMS:
        lines.append(
            f"{name:<16} {optimal[name]:>5}/{len(instances)} {worst[name]:>10.2%}"
        )
    emit("exact_optimality_gaps", "\n".join(lines))

    # Sanity: nobody can beat the optimum; the tree-aware heuristics are
    # optimal on a large majority of tiny instances.
    assert all(v <= len(instances) for v in optimal.values())
    assert optimal["RecExpand"] >= optimal["PostOrderMinIO"]


def test_exact_solver_cost(benchmark):
    """Time the solver on one representative 14-node instance."""
    (tree, memory), *_ = _small_instances(14, 1)
    result = benchmark(lambda: exact_min_io(tree, memory, max_states=500_000))
    assert result.optimal
