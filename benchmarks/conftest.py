"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's figures (or an ablation)
and does three things:

1. times the headline computation with ``pytest-benchmark``;
2. writes the regenerated series (summary + ASCII profile + CSV) to
   ``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can quote them;
3. asserts the *qualitative shape* the paper reports (who wins, roughly
   by how much) — not absolute numbers, which depend on tie-breaking and
   dataset substitution.

Scale defaults to ``small`` (fast); set ``REPRO_SCALE=paper`` to rerun at
the paper's instance counts and sizes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.profiles import render_ascii, to_csv
from repro.experiments.datasets import SCALES, build_synth, build_trees

OUT_DIR = Path(__file__).parent / "out"


def pytest_configure(config):
    OUT_DIR.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def scale():
    return SCALES[os.environ.get("REPRO_SCALE", "small")]


@pytest.fixture(scope="session")
def synth_trees(scale):
    return build_synth(scale)


@pytest.fixture(scope="session")
def trees_dataset(scale):
    return build_trees(scale)


@pytest.fixture(scope="session")
def batch_jobs():
    """Worker count for batch-engine benchmarks (``REPRO_JOBS``, default 2)."""
    return int(os.environ.get("REPRO_JOBS", "2"))


@pytest.fixture
def result_cache(tmp_path):
    """A fresh on-disk result cache rooted in the test's tmp directory."""
    from repro.datasets.store import ResultCache

    return ResultCache(tmp_path / "cache")


@pytest.fixture
def emit():
    """Write a named report file under benchmarks/out/ (and echo it)."""

    def _emit(name: str, text: str) -> None:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}")

    return _emit


def figure_report(result, max_threshold=None) -> str:
    """Summary + ASCII profile + CSV for one FigureResult."""
    parts = [
        result.summary(),
        "",
        render_ascii(result.profile, max_threshold=max_threshold),
        "",
        "CSV:",
        to_csv(result.profile),
    ]
    return "\n".join(parts)
