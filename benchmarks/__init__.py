"""Benchmark suite package marker.

The benchmark modules import shared helpers with
``from .conftest import ...``; making ``benchmarks`` a proper package is
what lets that relative import resolve.  Run individual benchmarks from
the repository root, e.g.
``PYTHONPATH=src python -m pytest benchmarks/bench_batch_engine.py``.
"""
