"""Batch experiment engine: parallel sharding and warm-cache speedups.

What must hold:

* the sharded engine reproduces the serial runner's figure summaries
  bit-for-bit (timing fields aside) at any worker count;
* a warm-cache re-run computes **zero** units and finishes in a
  fraction of the cold wall-clock (the residual cost is rebuilding the
  datasets to derive the content-addressed shard keys);
* with more than one worker on a multi-core machine, cold runs scale
  towards ``1/jobs`` of the serial time (single-core CI boxes still run
  the pool path, just without the speedup, so no scaling assertion is
  made when only one CPU is available).
"""

from __future__ import annotations

import json
import os
import time

from repro.datasets.store import ResultCache
from repro.experiments.batch import run_batch_figures, run_batch_report
from repro.experiments.runner import run_figures

FIGS = ("fig4", "fig10")


def _strip_timing(figures: dict) -> dict:
    d = json.loads(json.dumps(figures))
    for f in d.values():
        f.pop("seconds", None)
        if f.get("differing"):
            f["differing"].pop("seconds", None)
    return d


def test_batch_matches_serial(benchmark, scale, emit):
    serial = run_figures(scale.name, figure_ids=list(FIGS))
    batched = benchmark.pedantic(
        run_batch_figures,
        args=(scale.name,),
        kwargs={"figure_ids": list(FIGS)},
        rounds=1,
        iterations=1,
    )
    assert _strip_timing(serial) == _strip_timing(batched)
    emit(
        "batch_engine_equivalence",
        f"scale={scale.name} figures={FIGS}: sharded == serial",
    )


def test_parallel_speedup(batch_jobs, scale, emit):
    t0 = time.perf_counter()
    serial = run_batch_report(scale.name, jobs=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_batch_report(scale.name, jobs=batch_jobs)
    t_parallel = time.perf_counter() - t0

    assert json.loads(serial.to_json())["figures"].keys() == json.loads(
        parallel.to_json()
    )["figures"].keys()
    speedup = t_serial / t_parallel
    emit(
        "batch_engine_speedup",
        f"scale={scale.name} jobs={batch_jobs}: serial {t_serial:.1f}s, "
        f"parallel {t_parallel:.1f}s, speedup {speedup:.2f}x "
        f"(cpus={os.cpu_count()})",
    )
    if (os.cpu_count() or 1) >= batch_jobs > 1:
        # Near-linear is the goal; allow generous scheduling overhead.
        assert speedup > 1.0 + 0.25 * (batch_jobs - 1)


def test_warm_cache_speedup(result_cache, scale, emit):
    t0 = time.perf_counter()
    cold = run_batch_report(scale.name, cache=result_cache)
    t_cold = time.perf_counter() - t0
    assert cold.batch["cache"]["misses"] == cold.batch["units_total"]

    warm_cache = ResultCache(result_cache.root)
    t0 = time.perf_counter()
    warm = run_batch_report(scale.name, cache=warm_cache)
    t_warm = time.perf_counter() - t0

    assert warm.batch["cache"]["hits"] == warm.batch["units_total"]
    assert warm.batch["units_computed"] == 0
    emit(
        "batch_engine_warm_cache",
        f"scale={scale.name}: cold {t_cold:.1f}s, warm {t_warm:.1f}s "
        f"({t_cold / t_warm:.1f}x)",
    )
    # Warm runs skip all compute; dataset (re)construction dominates.
    assert t_warm < t_cold * 0.75
