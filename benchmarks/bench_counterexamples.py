"""Figure 2 (and Appendix A): the paper's lower-bound constructions.

These benches regenerate the *series* behind the counterexamples:

* Fig 2(a): PostOrderMinIO's I/O grows linearly in the tree size while the
  optimal stays at one single I/O → unbounded competitive ratio.
* Fig 2(b): minimum peak memory (8) forces more I/O than a peak-9 plan.
* Fig 2(c): OptMinMem's I/O grows ~k² against the witness's 2k → ratio
  grows linearly in k.
* Figs 6/7: the FullRecExpand win/loss examples, exact values.
"""

from __future__ import annotations

from repro.algorithms.brute_force import min_io_brute
from repro.algorithms.liu import opt_min_mem
from repro.algorithms.postorder import postorder_min_io
from repro.algorithms.rec_expand import full_rec_expand
from repro.core.simulator import fif_io_volume
from repro.datasets.instances import (
    figure_2a,
    figure_2b,
    figure_2c,
    figure_6,
    figure_7,
)


def test_fig2a_postorder_ratio_series(benchmark, emit):
    memory = 32

    def series():
        rows = []
        for ext in range(0, 9, 2):
            inst = figure_2a(memory, extensions=ext)
            postorder = postorder_min_io(inst.tree, inst.memory).predicted_io
            witness = fif_io_volume(inst.tree, inst.witness_schedule, inst.memory)
            rows.append((inst.tree.n, witness, postorder))
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    text = ["  n  witness_io  postorder_io  ratio"]
    for n, w, p in rows:
        text.append(f"{n:4d}  {w:9d}  {p:11d}  {p / w:6.1f}")
    emit("fig2a_ratio_series", "\n".join(text))

    # Witness stays at 1; postorder grows by >= M/2 - 1 per extension.
    assert all(w == 1 for _, w, _ in rows)
    ratios = [p / w for _, w, p in rows]
    assert ratios == sorted(ratios)
    assert rows[-1][2] - rows[0][2] >= (len(rows) - 1) * 2 * (memory // 2 - 1)


def test_fig2b_exact(benchmark, emit):
    inst = figure_2b()

    def run():
        schedule, peak = opt_min_mem(inst.tree)
        return (
            peak,
            fif_io_volume(inst.tree, schedule, inst.memory),
            fif_io_volume(inst.tree, inst.witness_schedule, inst.memory),
            min_io_brute(inst.tree, inst.memory)[0],
        )

    peak, liu_io, witness_io, opt_io = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig2b_exact",
        f"minimum peak = {peak} (paper: 8)\n"
        f"OptMinMem+FiF io = {liu_io} (paper's exhibit: 4; tie-break dependent)\n"
        f"peak-9 witness io = {witness_io} (paper: 3)\n"
        f"true optimum = {opt_io} (paper: 3)",
    )
    assert peak == 8
    assert witness_io == opt_io == 3
    assert liu_io > opt_io


def test_fig2c_ratio_series(benchmark, emit):
    def series():
        rows = []
        for k in (2, 4, 6, 8, 12):
            inst = figure_2c(k)
            schedule, peak = opt_min_mem(inst.tree)
            liu_io = fif_io_volume(inst.tree, schedule, inst.memory)
            witness = fif_io_volume(inst.tree, inst.witness_schedule, inst.memory)
            rows.append((k, peak, witness, liu_io))
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    text = ["  k  peak(=5k)  witness(=2k)  optminmem_io  ratio"]
    for k, peak, w, lio in rows:
        text.append(f"{k:3d}  {peak:8d}  {w:11d}  {lio:12d}  {lio / w:6.2f}")
    emit("fig2c_ratio_series", "\n".join(text))

    for k, peak, w, lio in rows:
        assert peak == 5 * k
        assert w == 2 * k
        assert lio >= k * k  # paper: ~k(k+1) -> ratio >= k/2
    ratios = [lio / w for _, _, w, lio in rows]
    assert ratios == sorted(ratios)  # ratio grows with k


def test_fig6_fig7_exact(benchmark, emit):
    def run():
        out = {}
        for name, inst in (("fig6", figure_6()), ("fig7", figure_7())):
            schedule, _ = opt_min_mem(inst.tree)
            out[name] = {
                "OptMinMem": fif_io_volume(inst.tree, schedule, inst.memory),
                "PostOrderMinIO": postorder_min_io(
                    inst.tree, inst.memory
                ).predicted_io,
                "FullRecExpand": full_rec_expand(inst.tree, inst.memory).io_volume,
                "optimum": min_io_brute(inst.tree, inst.memory)[0],
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for name, row in out.items():
        lines.append(f"{name}: " + "  ".join(f"{k}={v}" for k, v in row.items()))
    emit("fig6_fig7_exact", "\n".join(lines))

    # Figure 6: FullRecExpand optimal, others pay one extra unit.
    assert out["fig6"] == {
        "OptMinMem": 4,
        "PostOrderMinIO": 4,
        "FullRecExpand": 3,
        "optimum": 3,
    }
    # Figure 7: the postorder wins, expansion strategies don't.
    assert out["fig7"] == {
        "OptMinMem": 4,
        "PostOrderMinIO": 3,
        "FullRecExpand": 4,
        "optimum": 3,
    }
