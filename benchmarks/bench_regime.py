"""Bench: whole-regime I/O curves (area, knees, monotonicity).

The paper samples three memory points; this bench sweeps entire
``[LB, Peak]`` regimes on SYNTH instances and reports the curve-level
statistics a memory-provisioning decision needs: normalised area per
strategy, where the knees sit, and whether adaptive strategies ever
regress with more memory (OptMinMem provably cannot).
"""

from __future__ import annotations

from repro.analysis.bounds import memory_bounds
from repro.analysis.regime import io_curve

ALGORITHMS = ("OptMinMem", "PostOrderMinIO", "RecExpand")


def _instances(trees, limit, min_width=10):
    out = []
    for tree in trees[:limit]:
        bounds = memory_bounds(tree)
        if bounds.peak_incore - bounds.lb >= min_width:
            out.append(tree)
    return out


def test_regime_curves(benchmark, synth_trees, emit):
    instances = _instances(synth_trees, 12)

    def run():
        areas = dict.fromkeys(ALGORITHMS, 0.0)
        violations = dict.fromkeys(ALGORITHMS, 0)
        knee_positions = []
        for tree in instances:
            bounds = memory_bounds(tree)
            for alg in ALGORITHMS:
                curve = io_curve(tree, alg, samples=10)
                areas[alg] += curve.area()
                violations[alg] += len(curve.monotone_violations())
                if alg == "RecExpand":
                    span = bounds.peak_incore - bounds.lb
                    knee_positions.append(
                        (curve.knee() - bounds.lb) / span if span else 0.0
                    )
        return areas, violations, knee_positions

    areas, violations, knees = benchmark.pedantic(run, rounds=1, iterations=1)
    n = len(instances)
    lines = [
        f"{n} wide-regime SYNTH instances, 10-point sweeps of [LB, Peak]",
        f"{'strategy':<16} {'mean area':>10} {'monotone violations':>20}",
    ]
    for alg in ALGORITHMS:
        lines.append(f"{alg:<16} {areas[alg] / n:>10.4f} {violations[alg]:>20}")
    lines.append(
        f"RecExpand knee position (fraction of regime, mean): "
        f"{sum(knees) / len(knees):.2f}"
    )
    emit("regime_curves", "\n".join(lines))

    # OptMinMem's fixed schedule makes its curve provably monotone.
    assert violations["OptMinMem"] == 0
    # Area ranking must match the paper's ordering.
    assert areas["RecExpand"] <= areas["OptMinMem"] <= areas["PostOrderMinIO"]
