"""Runtime scaling of each strategy with tree size, plus micro-benchmarks
of the two performance-critical kernels (Liu solve, FiF simulation).

These are the only benches where the *time* is the result; the figure
benches time whole-figure regeneration as a side effect.
"""

from __future__ import annotations

import pytest

from repro.algorithms.liu import LiuSolver
from repro.analysis.bounds import memory_bounds
from repro.core.expansion import ExpansionTree
from repro.core.simulator import simulate_fif
from repro.datasets.synth import synth_instance
from repro.experiments.registry import get_algorithm

SIZES = (300, 1000, 3000)


def _instance(n):
    # A fixed seed per size with a guaranteed I/O regime.
    for seed in range(100):
        tree = synth_instance(n, seed=seed)
        bounds = memory_bounds(tree)
        if bounds.has_io_regime:
            return tree, bounds.mid
    raise AssertionError("no instance with I/O regime found")


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize(
    "algorithm", ("PostOrderMinIO", "OptMinMem", "RecExpand", "FullRecExpand")
)
def test_strategy_scaling(benchmark, algorithm, n):
    tree, memory = _instance(n)
    strategy = get_algorithm(algorithm)
    benchmark.group = f"n={n}"
    traversal = benchmark(strategy, tree, memory)
    assert traversal.io_volume >= 0


@pytest.mark.parametrize("n", SIZES)
def test_liu_solver_kernel(benchmark, n):
    tree, _ = _instance(n)
    benchmark.group = "liu-solve"

    def solve():
        return LiuSolver(tree).peak()

    benchmark(solve)


@pytest.mark.parametrize("n", SIZES)
def test_fif_simulation_kernel(benchmark, n):
    tree, memory = _instance(n)
    schedule = LiuSolver(tree).schedule()
    benchmark.group = "fif-simulate"
    benchmark(simulate_fif, tree, schedule, memory)


def test_incremental_resolve_vs_fresh(benchmark):
    """The RecExpand inner loop depends on path-local re-solves being much
    cheaper than full re-solves; quantify the speedup."""
    tree, memory = _instance(3000)
    xt = ExpansionTree(tree)
    solver = LiuSolver(xt)
    solver.peak()
    # Expand a deep node once so there is something to re-solve.
    leaf = max(range(tree.n), key=lambda v: len(tree.path_to_root(v)))
    victim = tree.path_to_root(leaf)[1]
    dirty = xt.expand(victim, max(1, xt.weights[victim] // 2))

    benchmark.group = "incremental"

    def incremental():
        solver.invalidate_from(dirty)
        return solver.peak()

    peak = benchmark(incremental)
    assert peak == LiuSolver(xt).peak()
