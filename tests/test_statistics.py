"""Tests for the statistical helpers (repro.analysis.statistics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.statistics import (
    PairwiseComparison,
    bootstrap_ci,
    paired_permutation_test,
    pairwise_comparison,
    wilcoxon_signed_rank,
    win_tie_loss,
)


class TestBootstrap:
    def test_ci_brackets_the_mean_of_a_tight_sample(self):
        lo, hi = bootstrap_ci([5.0] * 50, seed=1)
        assert lo == hi == 5.0

    def test_ci_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(10.0, 2.0, size=200)
        lo, hi = bootstrap_ci(sample, seed=2)
        assert lo < 10.0 < hi

    def test_seed_determinism(self):
        sample = [1.0, 4.0, 2.0, 8.0, 5.0]
        assert bootstrap_ci(sample, seed=3) == bootstrap_ci(sample, seed=3)

    def test_single_value_degenerate(self):
        assert bootstrap_ci([7.0]) == (7.0, 7.0)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_custom_statistic(self):
        lo, hi = bootstrap_ci([1.0, 2.0, 100.0], statistic=np.median, seed=4)
        assert lo >= 1.0 and hi <= 100.0

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=30))
    @settings(max_examples=20)
    def test_ci_is_ordered(self, sample):
        lo, hi = bootstrap_ci(sample, n_boot=200, seed=5)
        assert lo <= hi


class TestPermutationTest:
    def test_identical_samples_give_p_one(self):
        a = [3.0, 1.0, 4.0]
        assert paired_permutation_test(a, a) == 1.0

    def test_obvious_difference_is_significant(self):
        rng = np.random.default_rng(1)
        b = rng.normal(0, 0.1, size=60)
        a = b + 5.0
        assert paired_permutation_test(a, b, seed=6) < 0.01

    def test_noise_is_not_significant(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, size=60)
        b = rng.normal(0, 1, size=60)
        assert paired_permutation_test(a, b, seed=7) > 0.01

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_permutation_test([1.0], [1.0, 2.0])

    def test_p_value_in_unit_interval(self):
        p = paired_permutation_test([1, 2, 3], [3, 2, 1], seed=8)
        assert 0.0 < p <= 1.0


class TestWilcoxon:
    def test_ties_give_p_one(self):
        assert wilcoxon_signed_rank([1.0, 2.0], [1.0, 2.0]) == 1.0

    def test_consistent_direction_is_significant(self):
        a = list(range(30))
        b = [x + 2 for x in a]
        assert wilcoxon_signed_rank(a, b) < 0.01

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1.0], [1.0, 2.0])


class TestWinTieLoss:
    def test_counts(self):
        a = [1, 5, 3, 3]
        b = [2, 4, 3, 3]
        assert win_tie_loss(a, b) == (1, 2, 1)

    def test_total_preserved(self):
        a = [1.0, 2.0, 3.0, 4.0, 5.0]
        b = [5.0, 4.0, 3.0, 2.0, 1.0]
        w, t, l = win_tie_loss(a, b)
        assert w + t + l == 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            win_tie_loss([1], [1, 2])


class TestPairwise:
    def test_all_pairs_present(self):
        rows = pairwise_comparison(
            {"A": [1, 2, 3], "B": [2, 2, 2], "C": [3, 3, 3]}
        )
        pairs = {(r.first, r.second) for r in rows}
        assert pairs == {("A", "B"), ("A", "C"), ("B", "C")}

    def test_row_fields_consistent(self):
        rows = pairwise_comparison({"A": [1, 1, 1, 1], "B": [2, 2, 2, 0]})
        (row,) = rows
        assert isinstance(row, PairwiseComparison)
        assert row.wins + row.ties + row.losses == 4
        assert row.mean_diff_ci[0] <= row.mean_diff <= row.mean_diff_ci[1]

    def test_dominant_algorithm_is_significant(self):
        a = list(np.arange(40, dtype=float))
        b = [x + 10 for x in a]
        rows = pairwise_comparison({"good": a, "bad": b}, seed=9)
        (row,) = rows
        assert row.significant()
        assert (row.first, row.wins, row.losses) == ("bad", 0, 40)

    def test_on_real_figure_data(self):
        """End-to-end: pairwise stats over an actual experiment run."""
        from repro.experiments.figures import run_comparison
        from repro.experiments.datasets import build_synth

        result = run_comparison(
            "stats-e2e",
            build_synth("tiny"),
            "Mmid",
            ("OptMinMem", "RecExpand"),
        )
        rows = pairwise_comparison(
            {a: list(v) for a, v in result.io_volumes.items()}
        )
        (row,) = rows
        # RecExpand never loses to OptMinMem (it starts from Liu's schedule).
        if row.first == "OptMinMem":
            assert row.wins == 0
        else:
            assert row.losses == 0
