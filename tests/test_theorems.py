"""Direct validations of the paper's four theorems.

Other test files validate the theorems *indirectly* (algorithm A agrees
with oracle B); this file checks each statement head-on, in the paper's
own terms, on hypothesis-generated instances:

* Theorem 1 — FiF's tau is optimal *among all valid tau* for a fixed
  schedule (not merely equal to another implementation);
* Theorem 2 — any feasible tau admits a valid schedule, recovered in
  polynomial time via node expansion;
* Theorem 3 — Liu's rearrangement lemma, checked against all
  permutations;
* Theorem 4 — the best postorder is globally optimal on homogeneous
  trees.
"""

from __future__ import annotations

from itertools import permutations

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.algorithms.brute_force import min_io_brute
from repro.algorithms.io_function import schedule_for_io_function
from repro.algorithms.postorder import postorder_min_io
from repro.core.simulator import fif_traversal, simulate_fif
from repro.core.traversal import InvalidTraversal, Traversal, validate
from repro.core.tree import TaskTree

from .conftest import homogeneous_trees, task_trees, trees_with_memory


def _random_topological_order(tree: TaskTree, draw_index) -> list[int]:
    """A topological order driven by hypothesis choices."""
    remaining = [len(c) for c in tree.children]
    available = sorted(v for v in range(tree.n) if remaining[v] == 0)
    order: list[int] = []
    while available:
        idx = draw_index(len(available))
        v = available.pop(idx)
        order.append(v)
        p = tree.parents[v]
        if p != -1:
            remaining[p] -= 1
            if remaining[p] == 0:
                available.append(v if False else p)
                available.sort()
    return order


class TestTheorem1:
    """FiF beats every valid alternative I/O function for the schedule."""

    @given(
        tm=trees_with_memory(max_nodes=6, max_weight=6),
        data=st.data(),
    )
    @settings(max_examples=80)
    def test_fif_tau_is_minimal_among_valid_taus(self, tm, data):
        tree, memory = tm
        schedule = _random_topological_order(
            tree, lambda k: data.draw(st.integers(0, k - 1))
        )
        fif = simulate_fif(tree, schedule, memory)

        # Draw an arbitrary alternative tau and keep it only if valid.
        tau = tuple(
            data.draw(st.integers(0, tree.weights[v])) for v in range(tree.n)
        )
        candidate = Traversal(tuple(schedule), tau)
        try:
            validate(tree, candidate, memory)
        except InvalidTraversal:
            assume(False)  # not a valid competitor; draw again
        assert fif.io_volume <= candidate.io_volume

    @given(tm=trees_with_memory(max_nodes=6, max_weight=6), data=st.data())
    @settings(max_examples=40)
    def test_fif_tau_is_itself_valid(self, tm, data):
        tree, memory = tm
        schedule = _random_topological_order(
            tree, lambda k: data.draw(st.integers(0, k - 1))
        )
        validate(tree, fif_traversal(tree, schedule, memory), memory)


class TestTheorem2:
    """Every feasible tau admits a valid schedule (recovered via expansion)."""

    @given(tm=trees_with_memory(max_nodes=7, max_weight=8), data=st.data())
    @settings(max_examples=60)
    def test_feasible_tau_is_recovered(self, tm, data):
        tree, memory = tm
        # Build a tau known to be feasible: take any schedule's FiF tau,
        # optionally inflated (writing *more* is still feasible).
        schedule = _random_topological_order(
            tree, lambda k: data.draw(st.integers(0, k - 1))
        )
        fif = simulate_fif(tree, schedule, memory)
        tau = list(fif.io_list(tree.n))
        for v in range(tree.n):
            if tree.parents[v] != -1 and data.draw(st.booleans()):
                tau[v] = min(tree.weights[v], tau[v] + 1)
        recovered = schedule_for_io_function(tree, tau, memory)
        assert recovered is not None
        validate(tree, recovered, memory)
        assert list(recovered.io) == tau

    # Small random trees only rarely have Peak > LB, so most draws are
    # rejected; that is the point (we need the rare regime-bearing ones).
    @given(tree=task_trees(min_nodes=4, max_nodes=9, max_weight=8))
    @settings(
        max_examples=30,
        suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
    )
    def test_infeasible_tau_is_rejected(self, tree):
        from repro.algorithms.liu import min_peak_memory

        peak = min_peak_memory(tree)
        lb = tree.min_feasible_memory()
        assume(peak > lb)  # an I/O regime exists
        # tau = 0 everywhere cannot fit below the in-core peak of every
        # schedule; Theorem 2's procedure must answer "no schedule".
        assert schedule_for_io_function(tree, [0] * tree.n, peak - 1) is None

    def test_infeasible_tau_rejected_on_paper_instance(self):
        from repro.datasets.instances import figure_2b

        inst = figure_2b()  # LB 6, Peak 8: memory 7 needs I/O
        assert schedule_for_io_function(inst.tree, [0] * inst.tree.n, 7) is None


class TestTheorem3:
    """The rearrangement lemma, against brute force over permutations."""

    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=80)
    def test_sorting_by_x_minus_y_is_optimal(self, pairs):
        def objective(seq):
            prefix = 0
            worst = 0
            for x, y in seq:
                worst = max(worst, x + prefix)
                prefix += y
            return worst

        sorted_value = objective(
            sorted(pairs, key=lambda xy: xy[0] - xy[1], reverse=True)
        )
        best = min(objective(p) for p in permutations(pairs))
        assert sorted_value == best


class TestTheorem4:
    """Best postorder == global optimum on homogeneous trees."""

    @given(tree=homogeneous_trees(max_nodes=8), data=st.data())
    @settings(max_examples=50)
    def test_postorder_min_io_is_globally_optimal(self, tree, data):
        lb = tree.min_feasible_memory()
        memory = data.draw(st.integers(lb, max(lb, tree.n)))
        opt, _ = min_io_brute(tree, memory)
        postorder = postorder_min_io(tree, memory)
        io = simulate_fif(tree, postorder.schedule, memory).io_volume
        assert io == opt

    @given(tm=trees_with_memory(max_nodes=7, max_weight=6))
    @settings(max_examples=40)
    def test_heterogeneous_postorders_can_lose(self, tm):
        """The contrast: on general trees the postorder is only an upper
        bound (and Figure 2(a) shows it can be arbitrarily bad)."""
        tree, memory = tm
        opt, _ = min_io_brute(tree, memory)
        postorder = postorder_min_io(tree, memory)
        io = simulate_fif(tree, postorder.schedule, memory).io_volume
        assert io >= opt
