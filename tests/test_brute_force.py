"""Tests for the exhaustive oracles themselves."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings

from repro.algorithms.brute_force import (
    SearchBudgetExceeded,
    iter_postorders,
    iter_topological_orders,
    min_io_brute,
    min_peak_brute,
)
from repro.core.traversal import is_postorder
from repro.core.tree import TaskTree, chain_tree, star_tree

from .conftest import task_trees


def linear_extension_count(tree: TaskTree) -> int:
    """The hook-length formula for rooted trees: n! / prod(subtree sizes)."""
    total = math.factorial(tree.n)
    for v in range(tree.n):
        total //= tree.subtree_size(v)
    return total


class TestTopologicalOrders:
    def test_chain_has_one_order(self):
        orders = list(iter_topological_orders(chain_tree([1, 2, 3])))
        assert orders == [[2, 1, 0]]

    def test_star_has_factorial_orders(self):
        tree = star_tree(1, [1, 1, 1])
        orders = list(iter_topological_orders(tree))
        assert len(orders) == 6
        assert len({tuple(o) for o in orders}) == 6

    def test_all_orders_topological(self):
        tree = TaskTree([-1, 0, 0, 1], [1] * 4)
        for order in iter_topological_orders(tree):
            pos = {v: i for i, v in enumerate(order)}
            for v in range(tree.n):
                if tree.parents[v] != -1:
                    assert pos[v] < pos[tree.parents[v]]

    @given(task_trees(max_nodes=7))
    @settings(max_examples=40)
    def test_count_matches_hook_length_formula(self, tree):
        count = sum(1 for _ in iter_topological_orders(tree))
        assert count == linear_extension_count(tree)


class TestPostorders:
    def test_chain_single_postorder(self):
        assert list(iter_postorders(chain_tree([1, 2]))) == [[1, 0]]

    def test_star_postorders_are_permutations(self):
        tree = star_tree(1, [1, 1, 1])
        orders = list(iter_postorders(tree))
        assert len(orders) == 6

    def test_nested_count(self):
        # root <- {a <- {x, y}, b}: 2 (x,y orders) * 2 (a/b orders) = 4.
        tree = TaskTree([-1, 0, 0, 1, 1], [1] * 5)
        assert len(list(iter_postorders(tree))) == 4

    @given(task_trees(max_nodes=6))
    @settings(max_examples=40)
    def test_every_emitted_order_is_postorder(self, tree):
        for order in iter_postorders(tree):
            assert is_postorder(tree, order)

    @given(task_trees(max_nodes=6))
    @settings(max_examples=40)
    def test_postorders_subset_of_topological(self, tree):
        topo = {tuple(o) for o in iter_topological_orders(tree)}
        posts = {tuple(o) for o in iter_postorders(tree)}
        assert posts <= topo


class TestBruteOptima:
    def test_min_peak_single(self):
        peak, sched = min_peak_brute(TaskTree([-1], [3]))
        assert peak == 3 and sched == [0]

    def test_budget_exceeded(self):
        tree = star_tree(1, [1] * 8)  # 8! = 40320 orders
        with pytest.raises(SearchBudgetExceeded):
            min_peak_brute(tree, max_orders=100)

    def test_min_io_zero_with_ample_memory(self):
        io, _ = min_io_brute(star_tree(1, [2, 3]), 100)
        assert io == 0

    def test_min_io_known_instance(self):
        # Figure 2(b): the true optimum is 3 I/Os.
        from repro.datasets.instances import figure_2b

        inst = figure_2b()
        io, schedule = min_io_brute(inst.tree, inst.memory)
        assert io == 3
        from repro.core.simulator import fif_io_volume

        assert fif_io_volume(inst.tree, schedule, inst.memory) == 3
