"""Backend-equivalence property harness for the typed solver API.

The contract of :mod:`repro.api` is that the three execution backends —
:class:`~repro.api.backends.LocalBackend` (in-process),
:class:`~repro.api.backends.PoolBackend` (embedded worker pool) and
:class:`~repro.api.backends.RemoteBackend` (HTTP service) — are
interchangeable: an identical request must produce a **byte-identical
canonical outcome** and an **identical cache key** on every one of
them, and a result cache written by any backend must serve warm hits to
all the others.

~50 seeded trees cycling through every generator family the repository
has (the same pool as the kernel cross-validation harness) are solved
through all three backends, mixing solve/paging/exact kinds and
algorithms; exact equality (never "close") is asserted throughout.
Error outcomes are part of the contract too: the same infeasible
request must fail with the same stable code everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bounds import memory_bounds
from repro.api import (
    LocalBackend,
    Outcome,
    PoolBackend,
    ProtocolError,
    RemoteBackend,
    parse_request,
)
from repro.datasets.store import ResultCache
from repro.service.server import ServerConfig, ServerThread

from tests.test_kernel_crossval import FAMILIES, _make_tree

BASE_SEED = 20170417
NUM_TREES = 48  # a multiple of the family count; "~50" per the contract

ALGORITHMS = ("RecExpand", "PostOrderMinIO", "OptMinMem", "FullRecExpand")


def _requests():
    """~50 mixed-kind requests over seeded mixed-family trees."""
    requests = []
    for i in range(NUM_TREES):
        family = FAMILIES[i % len(FAMILIES)]
        rng = np.random.default_rng(BASE_SEED + 104729 * i)
        tree = _make_tree(family, int(rng.integers(2, 64)), rng)
        bounds = memory_bounds(tree)
        memory = bounds.mid if bounds.has_io_regime else bounds.peak_incore + 1
        memory = max(1, memory)
        body = {
            "kind": "solve",
            "tree": {"parents": list(tree.parents), "weights": list(tree.weights)},
            "memory": memory,
            "algorithm": ALGORITHMS[i % len(ALGORITHMS)],
        }
        if i % 6 == 4:
            # page_size 1 keeps the mid bound feasible (larger pages can
            # round a feasible memory down below a node's frame need)
            body |= {"kind": "paging", "page_size": 1, "policies": ["belady", "lru"]}
        elif i % 6 == 5 and tree.n <= 16:
            body |= {"kind": "exact", "node_limit": 16}
        requests.append(parse_request(body))
    return requests


@pytest.fixture(scope="module")
def requests():
    return _requests()


@pytest.fixture(scope="module")
def local_outcomes(requests):
    """The reference run: LocalBackend, no cache."""
    with LocalBackend() as backend:
        return backend.run(requests)


class TestBackendEquivalence:
    def test_local_outcomes_are_sound(self, requests, local_outcomes):
        assert len(local_outcomes) == len(requests)
        assert all(isinstance(o, Outcome) for o in local_outcomes)
        assert all(o.ok for o in local_outcomes)
        assert all(o.backend == "local" for o in local_outcomes)
        # keys come from the one canonical derivation
        assert [o.key for o in local_outcomes] == [r.key() for r in requests]

    def test_pool_backend_matches_local(self, requests, local_outcomes):
        with PoolBackend(jobs=0) as backend:
            outcomes = backend.run(requests)
        assert [o.key for o in outcomes] == [o.key for o in local_outcomes]
        assert [o.canonical() for o in outcomes] == [
            o.canonical() for o in local_outcomes
        ]
        assert all(o.backend == "pool" for o in outcomes)

    def test_remote_backend_matches_local(self, requests, local_outcomes):
        config = ServerConfig(port=0, workers=0, inline_threads=2)
        with ServerThread(config) as thread:
            backend = RemoteBackend(port=thread.port)
            outcomes = backend.run(requests)
        assert [o.key for o in outcomes] == [o.key for o in local_outcomes]
        assert [o.canonical() for o in outcomes] == [
            o.canonical() for o in local_outcomes
        ]
        assert all(o.backend == "remote" for o in outcomes)


class TestWarmCacheSharing:
    """A cache written by one backend is warm for every other."""

    def test_cache_flows_local_to_pool_to_remote(
        self, tmp_path, requests, local_outcomes
    ):
        root = tmp_path / "shared-cache"
        with LocalBackend(cache=ResultCache(root)) as backend:
            cold = backend.run(requests)
        assert all(not o.cached for o in cold)
        assert [o.canonical() for o in cold] == [
            o.canonical() for o in local_outcomes
        ]

        # the pool backend never computes: every request is a warm hit
        pool_cache = ResultCache(root)
        with PoolBackend(jobs=0, cache=pool_cache) as backend:
            warm = backend.run(requests)
        assert all(o.cached for o in warm)
        assert pool_cache.misses == 0
        assert [o.canonical() for o in warm] == [o.canonical() for o in cold]

        # ... and so is a server pointed at the same directory
        config = ServerConfig(port=0, workers=0, inline_threads=2)
        with ServerThread(config, cache=ResultCache(root)) as thread:
            served = RemoteBackend(port=thread.port).run(requests)
            assert thread.server.metrics.computed == 0
        assert all(o.cached for o in served)
        assert [o.canonical() for o in served] == [o.canonical() for o in cold]

    def test_cache_flows_remote_back_to_local(self, tmp_path, requests):
        root = tmp_path / "server-cache"
        config = ServerConfig(port=0, workers=0, inline_threads=2)
        with ServerThread(config, cache=ResultCache(root)) as thread:
            served = RemoteBackend(port=thread.port).run(requests[:8])
        local_cache = ResultCache(root)
        with LocalBackend(cache=local_cache) as backend:
            warm = backend.run(requests[:8])
        assert all(o.cached for o in warm)
        assert local_cache.misses == 0
        assert [o.canonical() for o in warm] == [o.canonical() for o in served]


class TestErrorEquivalence:
    """The same invalid request fails identically on every backend."""

    def _infeasible(self):
        # memory far below the minimal feasible bound: validation passes,
        # the solver refuses — the "unsolvable" execution error
        return parse_request(
            {
                "kind": "solve",
                "tree": {"parents": [-1, 0, 0], "weights": [5, 7, 9]},
                "memory": 1,
                "algorithm": "RecExpand",
            }
        )

    def test_unsolvable_code_is_backend_independent(self):
        request = self._infeasible()
        with LocalBackend() as local, PoolBackend(jobs=0) as pool:
            outcomes = [local.submit(request), pool.submit(request)]
        config = ServerConfig(port=0, workers=0)
        with ServerThread(config) as thread:
            outcomes.append(RemoteBackend(port=thread.port).submit(request))
        assert all(not o.ok for o in outcomes)
        assert {o.error_code for o in outcomes} == {"unsolvable"}
        canonicals = {o.canonical() for o in outcomes}
        assert len(canonicals) == 1, canonicals
        # the mapped exception carries the shared exit contract
        for outcome in outcomes:
            with pytest.raises(ProtocolError) as err:
                outcome.raise_for_error()
            assert err.value.exit_code == 2

    def test_validation_rejects_before_any_backend(self):
        with pytest.raises(ProtocolError) as err:
            parse_request({"kind": "solve", "tree": None, "memory": 1})
        assert err.value.code == "bad_field"
        assert err.value.exit_code == 2

    def test_worker_defence_envelope_carries_bare_message(self):
        """The code rides in its own field; the message must not repeat it."""
        from repro.service.pool import execute_payload

        envelope = execute_payload({"kind": "solve", "tree": None, "memory": 1})
        assert envelope["error"]["code"] == "bad_field"
        assert not envelope["error"]["message"].startswith("[")


class TestBackendContractEdges:
    def _solve(self):
        return parse_request(
            {
                "kind": "solve",
                "tree": {"parents": [-1, 0, 0], "weights": [2, 3, 4]},
                "memory": 9,
                "algorithm": "RecExpand",
            }
        )

    def test_pool_backend_usable_from_inside_a_running_loop(self):
        import asyncio

        request = self._solve()
        with LocalBackend() as local, PoolBackend(jobs=0) as pool:
            want = local.submit(request).canonical()

            async def drive():
                # blocking by contract, but must not raise RuntimeError
                return pool.submit(request)

            got = asyncio.run(drive())
        assert got.canonical() == want

    def test_batch_rejection_is_independent_of_cache_state(self, tmp_path):
        from repro.api import BatchRequest
        from repro.datasets.store import ResultCache

        batch = BatchRequest(
            trees=(((-1, 0, 0), (2, 3, 4)),), algorithms=("RecExpand",)
        )
        root = tmp_path / "cache"
        with LocalBackend(cache=ResultCache(root)) as local:
            assert local.submit(batch).ok  # populates the shared cache
        with PoolBackend(jobs=0, cache=ResultCache(root)) as pool:
            with pytest.raises(ProtocolError) as err:
                pool.submit(batch)  # rejected even though the key is cached
        assert err.value.code == "unknown_kind"


class TestCrossEncodingEquivalence:
    """JSON and binary wire paths are one protocol, not two.

    The same 48-tree harness runs over both encodings (sync JSON
    client, sync binary client, async pipelined binary client) and
    everything must line up exactly: byte-identical canonical Outcome
    halves, identical cache keys, and warm hits flowing freely between
    a JSON client and a binary client in either direction.
    """

    def test_binary_path_matches_json_path(self, requests, local_outcomes):
        config = ServerConfig(port=0, workers=0, inline_threads=2)
        with ServerThread(config) as thread:
            json_run = RemoteBackend(port=thread.port, wire="json").run(requests)
            binary_run = RemoteBackend(port=thread.port, wire="binary").run(requests)
        want_keys = [r.key() for r in requests]
        assert [o.key for o in json_run] == want_keys
        assert [o.key for o in binary_run] == want_keys
        want = [o.canonical() for o in local_outcomes]
        assert [o.canonical() for o in json_run] == want
        assert [o.canonical() for o in binary_run] == want

    def test_async_pipelined_client_matches_local(self, requests, local_outcomes):
        import asyncio

        from repro.service import AsyncServiceClient

        config = ServerConfig(port=0, workers=0, inline_threads=2)
        with ServerThread(config) as thread:
            async def run():
                async with AsyncServiceClient(
                    port=thread.port, wire="binary", max_connections=4
                ) as client:
                    return await asyncio.gather(
                        *(client.submit(r.to_wire()) for r in requests)
                    )

            envelopes = asyncio.run(run())
        outcomes = [
            Outcome.from_envelope(envelope, key=request.key(), backend="remote")
            for request, envelope in zip(requests, envelopes)
        ]
        assert [o.key for o in outcomes] == [o.key for o in local_outcomes]
        assert [o.canonical() for o in outcomes] == [
            o.canonical() for o in local_outcomes
        ]

    def test_warm_hits_flow_json_to_binary(self, tmp_path, requests):
        root = tmp_path / "json-writes"
        config = ServerConfig(port=0, workers=0, inline_threads=2)
        with ServerThread(config, cache=ResultCache(root)) as thread:
            cold = RemoteBackend(port=thread.port, wire="json").run(requests)
            assert all(not o.cached for o in cold)
            computed_after_cold = thread.server.metrics.computed
            warm = RemoteBackend(port=thread.port, wire="binary").run(requests)
            assert thread.server.metrics.computed == computed_after_cold
        assert all(o.cached for o in warm)
        assert [o.canonical() for o in warm] == [o.canonical() for o in cold]

    def test_warm_hits_flow_binary_to_json(self, tmp_path, requests):
        root = tmp_path / "binary-writes"
        config = ServerConfig(port=0, workers=0, inline_threads=2)
        with ServerThread(config, cache=ResultCache(root)) as thread:
            cold = RemoteBackend(port=thread.port, wire="binary").run(requests)
            assert all(not o.cached for o in cold)
            computed_after_cold = thread.server.metrics.computed
            warm = RemoteBackend(port=thread.port, wire="json").run(requests)
            assert thread.server.metrics.computed == computed_after_cold
        assert all(o.cached for o in warm)
        assert [o.canonical() for o in warm] == [o.canonical() for o in cold]


class TestBinaryCacheProvenance:
    """Regression (PR 6): warm hits served over the binary path must
    record exactly the provenance the JSON path records — ``cached``,
    ``deduped``, ``backend`` and the wire status of error envelopes."""

    def test_warm_hit_provenance_is_encoding_independent(self, tmp_path, requests):
        subset = requests[:6]
        root = tmp_path / "prov-cache"
        config = ServerConfig(port=0, workers=0, inline_threads=2)
        with ServerThread(config, cache=ResultCache(root)) as thread:
            RemoteBackend(port=thread.port, wire="json").run(subset)
            warm_json = RemoteBackend(port=thread.port, wire="json").run(subset)
            warm_binary = RemoteBackend(port=thread.port, wire="binary").run(subset)
        for via_json, via_binary in zip(warm_json, warm_binary):
            assert via_json.cached is True
            assert via_binary.cached is True
            assert via_binary.deduped == via_json.deduped
            assert via_binary.backend == via_json.backend == "remote"
            assert via_binary.error_status == via_json.error_status
            assert via_binary.canonical() == via_json.canonical()

    def test_error_status_parity_across_encodings(self):
        infeasible = parse_request(
            {
                "kind": "solve",
                "tree": {"parents": [-1, 0, 0], "weights": [5, 7, 9]},
                "memory": 1,
                "algorithm": "RecExpand",
            }
        )
        config = ServerConfig(port=0, workers=0, inline_threads=2)
        with ServerThread(config) as thread:
            via_json = RemoteBackend(port=thread.port, wire="json").submit(infeasible)
            via_binary = RemoteBackend(
                port=thread.port, wire="binary"
            ).submit(infeasible)
        assert not via_json.ok and not via_binary.ok
        assert via_binary.error_code == via_json.error_code == "unsolvable"
        assert via_binary.error_status == via_json.error_status == 422
        assert via_binary.canonical() == via_json.canonical()
