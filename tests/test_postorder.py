"""Tests for the best-postorder algorithms (PostOrderMinMem / PostOrderMinIO)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algorithms.brute_force import (
    min_io_postorder_brute,
    min_peak_postorder_brute,
)
from repro.algorithms.liu import min_peak_memory
from repro.algorithms.postorder import postorder_min_io, postorder_min_mem
from repro.core.simulator import fif_io_volume, schedule_peak_memory
from repro.core.traversal import is_postorder
from repro.core.tree import TaskTree, chain_tree, star_tree
from repro.datasets.instances import figure_2a, figure_7

from .conftest import task_trees, trees_with_memory


class TestPostorderMinMem:
    def test_single_node(self):
        res = postorder_min_mem(TaskTree([-1], [3]))
        assert res.schedule == (0,) and res.peak_memory == 3

    def test_chain(self):
        tree = chain_tree([2, 9, 3])
        res = postorder_min_mem(tree)
        assert res.peak_memory == 9

    def test_child_order_matters(self):
        # Two subtrees: heavy-peak/light-residue first is better (S - w key).
        # A: S=10, w=1; B: S=9, w=8.  A first: max(10, 9+1)=10;
        # B first: max(9, 10+8)=18.
        a_leaf_w, a_w = 10, 1
        b_leaf_w, b_w = 9, 8
        tree = TaskTree([-1, 0, 1, 0, 3], [1, a_w, a_leaf_w, b_w, b_leaf_w])
        res = postorder_min_mem(tree)
        assert res.peak_memory == 10
        # A's subtree (nodes 1,2) must be scheduled first.
        assert res.schedule[0] == 2

    def test_predicted_peak_matches_simulation(self):
        tree = figure_7().tree
        res = postorder_min_mem(tree)
        assert schedule_peak_memory(tree, res.schedule) == res.peak_memory

    @given(task_trees(max_nodes=7))
    @settings(max_examples=50)
    def test_optimal_among_postorders(self, tree):
        res = postorder_min_mem(tree)
        brute, _ = min_peak_postorder_brute(tree)
        assert res.peak_memory == brute

    @given(task_trees(max_nodes=9))
    def test_schedule_is_postorder(self, tree):
        res = postorder_min_mem(tree)
        assert is_postorder(tree, res.schedule)

    @given(task_trees(max_nodes=8))
    def test_never_beats_liu(self, tree):
        assert postorder_min_mem(tree).peak_memory >= min_peak_memory(tree)


class TestPostorderMinIO:
    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError, match="positive"):
            postorder_min_io(TaskTree([-1], [1]), 0)

    def test_no_io_when_memory_ample(self):
        tree = star_tree(1, [2, 3])
        res = postorder_min_io(tree, 100)
        assert res.predicted_io == 0

    def test_figure_7_exact(self):
        inst = figure_7()
        res = postorder_min_io(inst.tree, inst.memory)
        assert res.predicted_io == 3
        assert fif_io_volume(inst.tree, res.schedule, inst.memory) == 3

    def test_figure_2a_lower_bound(self):
        # Every postorder pays at least (leaves-1) * (M/2 - 1).
        for ext in (0, 1, 2):
            inst = figure_2a(16, extensions=ext)
            leaves = len(inst.tree.leaves())
            res = postorder_min_io(inst.tree, inst.memory)
            assert res.predicted_io >= (leaves - 1) * (inst.memory // 2 - 1)

    def test_storage_requirement_definition(self):
        # S of a star root = sum of leaves processed in chosen order.
        tree = star_tree(1, [5, 3, 2])
        res = postorder_min_io(tree, 6)
        assert res.storage[tree.root] == 10

    @given(trees_with_memory())
    def test_prediction_matches_fif_simulation(self, tree_memory):
        """Agullo's V recursion must equal the simulator on its schedule."""
        tree, memory = tree_memory
        res = postorder_min_io(tree, memory)
        assert res.predicted_io == fif_io_volume(tree, res.schedule, memory)

    @given(trees_with_memory(max_nodes=6))
    @settings(max_examples=60)
    def test_optimal_among_postorders(self, tree_memory):
        tree, memory = tree_memory
        res = postorder_min_io(tree, memory)
        brute, _ = min_io_postorder_brute(tree, memory)
        assert res.predicted_io == brute

    @given(trees_with_memory())
    def test_schedule_is_postorder(self, tree_memory):
        tree, memory = tree_memory
        assert is_postorder(tree, postorder_min_io(tree, memory).schedule)

    @given(trees_with_memory())
    def test_io_zero_iff_postorder_peak_fits(self, tree_memory):
        tree, memory = tree_memory
        res = postorder_min_io(tree, memory)
        po_peak = postorder_min_mem(tree).peak_memory
        if memory >= po_peak:
            assert res.predicted_io == 0
        if res.predicted_io == 0:
            # some postorder fits (maybe not the MinMem one, but then its
            # own storage requirement fits)
            assert res.storage[tree.root] <= memory or po_peak <= memory


class TestTheorem3Ordering:
    """The A - w sort key is exactly Liu's rearrangement lemma."""

    @staticmethod
    def _capped_key_tree() -> TaskTree:
        """root(1) <- {x(3) <- {p(2)<-leaf(10), q(2)<-leaf(10)}, y(2)<-leaf(10)}.

        With M=10: S_x = 12 > M so A_x = 10; S_y = 10.  Uncapped keys
        S - w are 9 (x) vs 8 (y) -> MinMem runs x first; capped keys
        A - w are 7 (x) vs 8 (y) -> MinIO runs y first.  No single wbar
        exceeds M.
        """
        return TaskTree(
            [-1, 0, 1, 2, 1, 4, 0, 6],
            [1, 3, 2, 10, 2, 10, 2, 10],
        )

    def test_capped_key_differs_from_uncapped(self):
        tree = self._capped_key_tree()
        mem_res = postorder_min_mem(tree)
        io_res = postorder_min_io(tree, 10)
        # leafP (node 3) lives under x, leafY (node 7) under y.
        assert mem_res.schedule.index(3) < mem_res.schedule.index(7)
        assert io_res.schedule.index(7) < io_res.schedule.index(3)

    def test_order_reduces_io_versus_reverse(self):
        tree = self._capped_key_tree()
        memory = 10
        best = postorder_min_io(tree, memory).predicted_io
        # The x-first postorder (MinMem's choice) must not beat it.
        x_first = [3, 2, 5, 4, 1, 7, 6, 0]
        assert is_postorder(tree, x_first)
        assert fif_io_volume(tree, x_first, memory) >= best
